//! Attack lab: runs the paper's eight §4.3 attacks against both VM
//! configurations and prints the robustness matrix.
//!
//! ```sh
//! cargo run --release --example attack_lab
//! ```

use ijvm::attacks::{run_attack, AttackId};
use ijvm_core::vm::IsolationMode;

fn main() {
    println!("attack lab — §4.3 robustness evaluation");
    println!("baseline = shared statics/strings/Class objects, no accounting, no termination");
    println!("I-JVM    = per-isolate mirrors + accounting + termination\n");

    println!(
        "{:<4} {:<44} {:<13} {:<10}",
        "id", "attack", "baseline", "I-JVM"
    );
    println!("{}", "-".repeat(75));
    for id in AttackId::ALL {
        let baseline = run_attack(id, IsolationMode::Shared);
        let ijvm = run_attack(id, IsolationMode::Isolated);
        println!(
            "{:<4} {:<44} {:<13} {:<10}",
            id.label(),
            id.description(),
            if baseline.compromised {
                "COMPROMISED"
            } else {
                "survived?!"
            },
            if ijvm.compromised {
                "BREACHED?!"
            } else {
                "contained"
            },
        );
    }

    println!("\nhow I-JVM contained each attack:");
    for id in AttackId::ALL {
        let ijvm = run_attack(id, IsolationMode::Isolated);
        println!("  {}: {}", id.label(), ijvm.detail);
    }
}
