//! A "next-generation Internet home gateway" (the deployment the paper's
//! introduction motivates): trusted bundles run alongside a dynamically
//! downloaded third-party bundle that turns out to be hostile. The
//! administrator uses I-JVM's accounting to find it and termination to
//! evict it — without restarting the platform.
//!
//! Act two goes beyond the paper: the gateway's bundles are spread over
//! **two cluster units** (two share-nothing VMs on the work-stealing
//! scheduler), and a billing bundle on the second unit reads the meter
//! through the cross-unit service registry — arguments deep-copied,
//! copies charged to their senders.
//!
//! ```sh
//! cargo run --release --example home_gateway
//! ```

use ijvm::prelude::*;
use ijvm_core::ids::MethodRef;
use ijvm_core::sched::Cluster;

fn main() {
    let mut options = VmOptions::isolated();
    options.heap_limit_bytes = 16 << 20;
    let mut fw = Framework::new(options);

    // Trusted service: a metering bundle the household relies on. Its
    // service object follows the `handle(int)` convention, so the OSGi
    // registry also exports it for cross-unit callers (act two).
    let meter = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "power-meter",
                "meter",
                r#"
                class Meter {
                    static int reading = 100;
                    static int read() { reading = reading + 7; return reading; }
                }
                class MeterService {
                    int handle(int x) { return Meter.read(); }
                }
                class Activator {
                    static void start(BundleContext ctx) {
                        ctx.registerService("meter.read", new MeterService());
                        ctx.log("meter online");
                    }
                }
                "#,
                Some("Activator"),
                vec![],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    fw.start_bundle(meter).unwrap();

    // Third-party download: claims to be a weather widget, actually hoards
    // memory and burns CPU.
    let widget = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "weather-widget",
                "widget",
                r#"
                class Hoard {
                    static ArrayList stash = new ArrayList();
                    static void grow() {
                        try {
                            for (int i = 0; i < 400; i++) stash.add(new int[4096]);
                        } catch (OutOfMemoryError e) { }
                    }
                }
                class Spin implements Runnable {
                    public void run() {
                        Hoard.grow();
                        int x = 0;
                        while (true) { x = x + 1; }
                    }
                }
                class Activator {
                    static void start(BundleContext ctx) {
                        ctx.log("totally a weather widget");
                        Thread t = new Thread(new Spin());
                        t.start();
                    }
                }
                "#,
                Some("Activator"),
                vec![],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    fw.lifecycle_budget = 30_000_000; // the widget never goes idle
    fw.start_bundle(widget).unwrap();
    for line in fw.vm_mut().take_console() {
        println!("[guest] {line}");
    }

    // The gateway keeps serving; the widget keeps burning.
    let _ = fw.run(Some(20_000_000));

    // Administrator's dashboard.
    fw.vm_mut().collect_garbage(None);
    println!("\nadministrator dashboard:");
    let mut worst: Option<(IsolateId, String, u64)> = None;
    for snap in fw.snapshots() {
        println!(
            "  {:<16} cpu={:<12} live-bytes={:<10} threads={}",
            snap.name, snap.stats.cpu_sampled, snap.stats.live_bytes, snap.stats.threads_created
        );
        let score = snap.stats.cpu_sampled + snap.stats.live_bytes;
        if !snap.isolate.is_privileged()
            && worst.as_ref().map(|(_, _, s)| score > *s).unwrap_or(true)
        {
            worst = Some((snap.isolate, snap.name.clone(), score));
        }
    }
    let (offender_iso, offender_name, _) = worst.expect("bundles installed");
    println!("\noffender identified: {offender_name} ({offender_iso})");

    // Evict it (paper §3.3) and verify the meter still works.
    let widget_bundle = fw
        .bundles()
        .iter()
        .find(|b| b.isolate == offender_iso)
        .map(|b| b.id)
        .expect("offender is a bundle");
    fw.kill_bundle(widget_bundle).unwrap();
    println!("bundle {offender_name} terminated; platform still up.");

    let loader = fw.bundle(meter).unwrap().loader;
    let meter_iso = fw.bundle(meter).unwrap().isolate;
    let meter_class = fw.vm_mut().load_class(loader, "meter/Meter").unwrap();
    let index = fw
        .vm()
        .class(meter_class)
        .find_method("read", "()I")
        .unwrap();
    let tid = fw
        .vm_mut()
        .spawn_thread(
            "read",
            MethodRef {
                class: meter_class,
                index,
            },
            vec![],
            meter_iso,
        )
        .unwrap();
    let _ = fw.run(Some(5_000_000));
    println!(
        "meter reading after eviction: {:?} (service uninterrupted)",
        fw.vm().thread_result(tid)
    );

    // ------------------------------------------------------------------
    // Act two: the gateway goes multi-core. The surviving framework
    // becomes one cluster unit; a billing framework on a *second* unit
    // reads the meter through the cross-unit service registry — two
    // share-nothing VMs, arguments deep-copied, copies charged to their
    // senders.
    // ------------------------------------------------------------------
    println!("\n— act two: billing moves to its own unit —");
    let mut billing_fw = Framework::new(VmOptions::isolated());
    let billing = billing_fw
        .install_bundle(
            BundleDescriptor::from_source(
                "billing",
                "billing",
                r#"
                class Activator {
                    static void start(BundleContext ctx) {
                        int total = 0;
                        for (int i = 0; i < 3; i++) {
                            int reading = Service.call("meter.read", 0);
                            total = total + reading;
                            ctx.log("billing read " + reading);
                        }
                        ctx.log("billing total " + total);
                    }
                }
                "#,
                Some("Activator"),
                vec![],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    // Spawn (don't run) the activator: its service calls must resolve
    // through the cluster, so the cluster drives it.
    billing_fw.spawn_start(billing).unwrap();

    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Parallel(2))
        .build();
    let gateway_unit = cluster.submit(fw.into_vm());
    let billing_unit = cluster.submit(billing_fw.into_vm());
    let mut outcome = cluster.run();

    for line in outcome.unit_mut(&billing_unit).vm.take_console() {
        println!("[billing/unit1] {line}");
    }
    let exported: Vec<(u32, &str)> = outcome
        .hub_stats
        .services
        .iter()
        .map(|s| (s.unit, s.name.as_str()))
        .collect();
    println!("cross-unit services exported: {exported:?}");
    let meter_iso = outcome
        .unit(&gateway_unit)
        .vm
        .metrics()
        .isolates
        .into_iter()
        .find(|s| s.name == "power-meter")
        .expect("meter bundle");
    println!(
        "meter bundle after serving billing: cpu(exact)={} (includes its reply-copy charges)",
        meter_iso.stats.cpu_exact
    );
}
