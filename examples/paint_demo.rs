//! The Felix paint demo of the paper's §4.1: a canvas bundle and a shape
//! bundle; one drag gesture from corner to corner makes about two hundred
//! inter-bundle calls — the workload that motivates keeping those calls
//! as cheap as a method call.
//!
//! ```sh
//! cargo run --release --example paint_demo
//! ```

use ijvm::workloads::PaintDemo;
use ijvm_core::vm::IsolationMode;

fn main() {
    println!("paint demo: dragging a shape corner-to-corner (200 motion steps)\n");

    for mode in [IsolationMode::Shared, IsolationMode::Isolated] {
        let label = match mode {
            IsolationMode::Shared => "baseline (no isolation)",
            IsolationMode::Isolated => "I-JVM",
        };
        let mut demo = PaintDemo::boot(mode);
        // Warm-up drag, then the measured gesture.
        demo.drag(20);
        let report = demo.drag(200);
        println!("{label}:");
        println!("  steps:                {}", report.steps);
        println!("  calls into shape:     {}", report.calls_into_shape);
        println!("  isolate migrations:   {}", report.migrations);
        println!("  gesture wall time:    {:?}", report.wall);
        println!(
            "  per-call cost:        {:.0} ns\n",
            report.wall.as_nanos() as f64 / report.steps as f64
        );
    }

    println!("the paper's point: even with isolation on, a drag is just 200 direct");
    println!("calls with an isolate-reference update — not 200 RPCs.");
}
