//! Quickstart: boot an I-JVM, install two bundles, share a service, watch
//! the thread migrate — the whole paper in thirty lines of API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ijvm::prelude::*;

fn main() {
    // An OSGi framework on top of I-JVM. The runtime lives in Isolate0;
    // every bundle we install gets its own isolate.
    let mut fw = Framework::new(VmOptions::isolated());

    // A provider bundle: registers a greeting service.
    let provider = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "greeter",
                "greeter",
                r#"
                class GreetService {
                    int greetings;
                    String greet(String who) {
                        greetings = greetings + 1;
                        return "hello, " + who + "!";
                    }
                }
                class Activator {
                    static void start(BundleContext ctx) {
                        ctx.registerService("greet", new GreetService());
                        ctx.log("greeter ready");
                    }
                }
                "#,
                Some("Activator"),
                vec![],
                &[],
            )
            .expect("greeter compiles"),
        )
        .expect("greeter installs");
    fw.start_bundle(provider).expect("greeter starts");

    // A consumer bundle: looks the service up and calls it directly —
    // I-JVM migrates the calling thread into the greeter's isolate and
    // back; no RPC, no copying.
    let provider_classes = fw.bundle(provider).unwrap().classes.clone();
    let consumer = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "lobby",
                "lobby",
                r#"
                class Activator {
                    static void start(BundleContext ctx) {
                        GreetService s = (GreetService) ctx.getService("greet");
                        println(s.greet("world"));
                        println(s.greet("OSGi"));
                    }
                }
                "#,
                Some("Activator"),
                vec![provider],
                &provider_classes,
            )
            .expect("lobby compiles"),
        )
        .expect("lobby installs");

    let migrations_before = fw.vm().migrations();
    fw.start_bundle(consumer).expect("lobby starts");

    for line in fw.vm_mut().take_console() {
        println!("[guest] {line}");
    }
    println!(
        "inter-isolate migrations during the calls: {}",
        fw.vm().migrations() - migrations_before
    );

    // The administrator's view: per-bundle resource accounting.
    fw.vm_mut().collect_garbage(None);
    println!("\nper-isolate accounting (the administrator's dashboard):");
    for snap in fw.snapshots() {
        println!(
            "  {:<14} cpu(sampled)={:<9} allocated={:<8} live={:<8} calls-in={}",
            snap.name,
            snap.stats.cpu_sampled,
            snap.stats.allocated_bytes,
            snap.stats.live_bytes,
            snap.stats.calls_in
        );
    }
}
