//! Snapshot-fork scale-out: boot **one** unit, pay its expensive class
//! initialization once, checkpoint it to a stable byte image, then
//! stamp out four serving clones with `Cluster::submit_image_n` — none
//! of which re-run `<clinit>` — and drive each clone from its own
//! client.
//!
//! ```sh
//! cargo run --example checkpoint_fork
//! ```

use ijvm::prelude::*;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

/// Boots, warms and checkpoints the template unit: a service whose
/// backing table is computed by an observable, deliberately expensive
/// static initializer.
fn warmed_image(options: &VmOptions) -> UnitImage {
    let mut vm = ijvm::jsl::boot(options.clone());
    let iso = vm.create_isolate("lookup-service");
    let loader = vm.loader_of(iso).unwrap();
    let classes = compile_to_bytes(
        r#"
        class Table {
            static int sum = fill();
            static int fill() {
                int s = 0;
                for (int i = 0; i < 20000; i++) s = s + i % 97;
                println("table warmed (expensive <clinit> ran)");
                return s;
            }
        }
        class Lookup {
            int handle(int x) { return x + Table.sum; }
        }
        class Boot {
            static int start(int n) {
                Service.export("lookup", new Lookup());
                return Table.sum;
            }
        }
        "#,
        &CompileEnv::new(),
    )
    .unwrap();
    for (name, bytes) in classes {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, "Boot").unwrap();
    let index = vm.class(class).find_method("start", "(I)I").unwrap();
    vm.spawn_thread("boot", MethodRef { class, index }, vec![Value::Int(1)], iso)
        .unwrap();
    assert_eq!(vm.run(None), RunOutcome::Idle, "warmup finishes");
    vm.checkpoint().expect("an idle warmed unit is quiescent")
}

fn client_vm(options: &VmOptions, fork: usize) -> Vm {
    let mut vm = ijvm::jsl::boot(options.clone());
    let iso = vm.create_isolate("client");
    let loader = vm.loader_of(iso).unwrap();
    let src = format!(
        r#"
        class Client {{
            static int drive(int n) {{
                int acc = 0;
                for (int i = 0; i < n; i++) acc += Service.call("lookup#{fork}", i);
                return acc;
            }}
        }}
        "#
    );
    for (name, bytes) in compile_to_bytes(&src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, "Client").unwrap();
    let index = vm.class(class).find_method("drive", "(I)I").unwrap();
    vm.spawn_thread(
        "drive",
        MethodRef { class, index },
        vec![Value::Int(8)],
        iso,
    )
    .unwrap();
    vm
}

fn main() {
    let options = VmOptions::isolated();

    // Pay class loading and <clinit> once, for the whole fleet.
    let image = warmed_image(&options);
    println!(
        "warmed template checkpointed: {} bytes (versioned, checksummed)",
        image.len()
    );

    // Fork the image as four independent units. Each clone gets a fresh
    // UnitId and its services are renamed lookup#0..lookup#3 *before*
    // attaching to the hub, so the clones publish distinct addresses.
    let forks = 4;
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Parallel(4))
        .vm_options(options.clone())
        .build();
    cluster
        .submit_image_n(&image, forks, ijvm::jsl::install_natives)
        .expect("the warmed image forks");
    for fork in 0..forks {
        cluster.submit(client_vm(&options, fork));
    }

    let mut outcome = cluster.run();
    for (u, unit) in outcome.units.iter_mut().enumerate() {
        let console = unit.vm.take_console();
        if u < forks {
            // Each clone carries exactly one pre-fork warmup line and
            // never re-ran the initializer.
            let warm = console
                .iter()
                .filter(|l| l.contains("table warmed"))
                .count();
            println!("fork {u}: served as lookup#{u}, <clinit> runs in console: {warm}");
            assert_eq!(warm, 1, "a fork must not re-run class initialization");
        } else {
            let client = u - forks;
            let result = unit
                .vm
                .thread_outcome(ThreadId(0))
                .expect("client finished")
                .expect("drive returns a value");
            println!("client {client}: drove lookup#{client}, got {result}");
        }
    }
    println!("one boot, {forks} serving clones — no cold start in any of them");
}
