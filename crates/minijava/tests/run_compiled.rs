//! End-to-end tests: compile mini-Java source and execute it on the VM.

use ijvm_core::prelude::*;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

/// Boots a VM, compiles `source` into a fresh isolate, and returns
/// `(vm, isolate, class_id_of(main_class))`.
fn setup(source: &str, main_class: &str) -> (Vm, IsolateId, ClassId) {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let iso = vm.create_isolate("test-bundle");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(source, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, main_class).unwrap();
    (vm, iso, class)
}

fn run_int(source: &str, class: &str, method: &str, args: Vec<Value>) -> i32 {
    let (mut vm, _, cid) = setup(source, class);
    let desc = format!("({})I", "I".repeat(args.len()));
    match vm.call_static(cid, method, &desc, args) {
        Ok(Some(Value::Int(v))) => v,
        other => panic!("unexpected result: {other:?}"),
    }
}

#[test]
fn arithmetic_and_recursion() {
    let src = r#"
        class Fib {
            static int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
        }
    "#;
    assert_eq!(run_int(src, "Fib", "fib", vec![Value::Int(15)]), 610);
}

#[test]
fn loops_and_locals() {
    let src = r#"
        class Sum {
            static int sum(int n) {
                int s = 0;
                for (int i = 1; i <= n; i++) s += i;
                return s;
            }
        }
    "#;
    assert_eq!(run_int(src, "Sum", "sum", vec![Value::Int(100)]), 5050);
}

#[test]
fn while_break_continue() {
    let src = r#"
        class C {
            static int f(int n) {
                int s = 0;
                int i = 0;
                while (true) {
                    i++;
                    if (i > n) break;
                    if (i % 2 == 0) continue;
                    s += i;
                }
                return s;
            }
        }
    "#;
    // Sum of odd numbers 1..=9 = 25.
    assert_eq!(run_int(src, "C", "f", vec![Value::Int(9)]), 25);
}

#[test]
fn longs_doubles_and_casts() {
    let src = r#"
        class N {
            static int f(int x) {
                long big = 1L << 40;
                big = big + x;
                double d = big * 0.5;
                long back = (long) d;
                return (int) (back % 1000000);
            }
        }
    "#;
    let expect = ((((1i64 << 40) + 7) as f64 * 0.5) as i64 % 1_000_000) as i32;
    assert_eq!(run_int(src, "N", "f", vec![Value::Int(7)]), expect);
}

#[test]
fn arrays_and_indexing() {
    let src = r#"
        class A {
            static int f(int n) {
                int[] xs = new int[n];
                for (int i = 0; i < n; i++) xs[i] = i * i;
                int s = 0;
                for (int i = 0; i < xs.length; i++) s += xs[i];
                return s;
            }
        }
    "#;
    assert_eq!(run_int(src, "A", "f", vec![Value::Int(10)]), 285);
}

#[test]
fn objects_fields_and_virtual_dispatch() {
    let src = r#"
        class Shape {
            int area() { return 0; }
        }
        class Square extends Shape {
            int side;
            Square(int s) { this.side = s; }
            int area() { return side * side; }
        }
        class Rect extends Shape {
            int w; int h;
            Rect(int w, int h) { this.w = w; this.h = h; }
            int area() { return w * h; }
        }
        class Main {
            static int f(int a) {
                Shape[] shapes = new Shape[3];
                shapes[0] = new Square(a);
                shapes[1] = new Rect(a, 2);
                shapes[2] = new Shape();
                int total = 0;
                for (int i = 0; i < shapes.length; i++) total += shapes[i].area();
                return total;
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(5)]), 25 + 10);
}

#[test]
fn interfaces_and_invokeinterface() {
    let src = r#"
        interface Op { int apply(int x); }
        class Twice implements Op { public int apply(int x) { return x * 2; } }
        class Inc implements Op { public int apply(int x) { return x + 1; } }
        class Main {
            static int f(int x) {
                Op a = new Twice();
                Op b = new Inc();
                return a.apply(b.apply(x));
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(10)]), 22);
}

#[test]
fn static_fields_and_clinit() {
    let src = r#"
        class Conf {
            static int base = 40;
            static int bump() { base = base + 1; return base; }
        }
        class Main {
            static int f(int unused) {
                Conf.bump();
                return Conf.bump();
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(0)]), 42);
}

#[test]
fn string_operations() {
    let src = r#"
        class S {
            static int f(int n) {
                String a = "hello";
                String b = a + " world " + n;
                if (b.equals("hello world 7")) return b.length();
                return -1;
            }
        }
    "#;
    assert_eq!(run_int(src, "S", "f", vec![Value::Int(7)]), 13);
}

#[test]
fn string_identity_within_isolate() {
    // Within one isolate, literals are interned: `==` holds.
    let src = r#"
        class S {
            static int f(int unused) {
                String a = "x";
                String b = "x";
                if (a == b) return 1;
                return 0;
            }
        }
    "#;
    assert_eq!(run_int(src, "S", "f", vec![Value::Int(0)]), 1);
}

#[test]
fn exceptions_try_catch() {
    let src = r#"
        class E {
            static int f(int n) {
                int caught = 0;
                try {
                    int x = 10 / n;
                    return x;
                } catch (ArithmeticException e) {
                    caught = 1;
                }
                try {
                    int[] xs = new int[2];
                    return xs[5];
                } catch (ArrayIndexOutOfBoundsException e) {
                    caught = caught + 2;
                }
                try {
                    String s = null;
                    return s.length();
                } catch (NullPointerException e) {
                    caught = caught + 4;
                }
                return caught;
            }
        }
    "#;
    assert_eq!(run_int(src, "E", "f", vec![Value::Int(0)]), 7);
}

#[test]
fn user_exceptions_and_rethrow() {
    let src = r#"
        class AppError extends Exception {
            int code;
            AppError(int c) { this.code = c; }
        }
        class E {
            static int boom(int c) { return 0; }
            static int f(int c) {
                try {
                    throw new AppError(c);
                } catch (AppError e) {
                    return e.code + 100;
                }
            }
        }
    "#;
    assert_eq!(run_int(src, "E", "f", vec![Value::Int(5)]), 105);
}

#[test]
fn uncaught_exception_reported_to_host() {
    let src = r#"
        class E {
            static int f(int n) { return 10 / n; }
        }
    "#;
    let (mut vm, _, cid) = setup(src, "E");
    let err = vm
        .call_static(cid, "f", "(I)I", vec![Value::Int(0)])
        .unwrap_err();
    match err {
        VmError::UncaughtException { class_name, .. } => {
            assert_eq!(class_name, "java/lang/ArithmeticException");
        }
        other => panic!("expected uncaught exception, got {other}"),
    }
}

#[test]
fn instanceof_and_checkcast() {
    let src = r#"
        class Main {
            static int f(int n) {
                Object o = "text";
                int r = 0;
                if (o instanceof String) r += 1;
                String s = (String) o;
                r += s.length();
                try {
                    Object x = new Object();
                    String bad = (String) x;
                    r = -100;
                } catch (ClassCastException e) {
                    r += 10;
                }
                return r;
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(0)]), 15);
}

#[test]
fn collections_arraylist_hashmap() {
    let src = r#"
        class Main {
            static int f(int n) {
                ArrayList list = new ArrayList();
                for (int i = 0; i < n; i++) list.add("item" + i);
                HashMap map = new HashMap();
                map.put("k1", "v1");
                map.put("k2", "v2");
                map.put("k1", "v1b");
                int r = list.size() * 100 + map.size() * 10;
                String v = (String) map.get("k1");
                if (v.equals("v1b")) r += 1;
                return r;
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(5)]), 521);
}

#[test]
fn stringbuilder_direct() {
    let src = r#"
        class Main {
            static int f(int n) {
                StringBuilder sb = new StringBuilder();
                for (int i = 0; i < n; i++) sb.append(i).append(',');
                return sb.toString().length();
            }
        }
    "#;
    // "0,1,2,3,4," = 10 chars
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(5)]), 10);
}

#[test]
fn threads_run_and_join() {
    let src = r#"
        class Worker implements Runnable {
            static int done = 0;
            public void run() { done = done + 1; }
        }
        class Main {
            static int f(int n) {
                Thread[] ts = new Thread[n];
                for (int i = 0; i < n; i++) {
                    ts[i] = new Thread(new Worker());
                    ts[i].start();
                }
                for (int i = 0; i < n; i++) ts[i].join();
                return Worker.done;
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(4)]), 4);
}

#[test]
fn synchronized_blocks_protect_counter() {
    let src = r#"
        class Counter {
            static int value = 0;
            static Object lock = new Object();
            static void bump() {
                synchronized (lock) {
                    int v = value;
                    value = v + 1;
                }
            }
        }
        class Worker implements Runnable {
            public void run() {
                for (int i = 0; i < 50; i++) Counter.bump();
            }
        }
        class Main {
            static int f(int n) {
                Thread[] ts = new Thread[n];
                for (int i = 0; i < n; i++) { ts[i] = new Thread(new Worker()); ts[i].start(); }
                for (int i = 0; i < n; i++) ts[i].join();
                return Counter.value;
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(3)]), 150);
}

#[test]
fn println_reaches_console() {
    let src = r#"
        class Main {
            static int f(int n) {
                println("n is " + n);
                println(n * 2);
                println(true);
                return 0;
            }
        }
    "#;
    let (mut vm, _, cid) = setup(src, "Main");
    vm.call_static(cid, "f", "(I)I", vec![Value::Int(21)])
        .unwrap();
    let lines = vm.take_console();
    assert_eq!(
        lines,
        vec!["n is 21".to_owned(), "42".to_owned(), "true".to_owned()]
    );
}

#[test]
fn math_natives() {
    let src = r#"
        class Main {
            static int f(int n) {
                double r = Math.sqrt(n * 1.0);
                return (int) (r * 1000.0) + Math.max(1, 2) + Math.abs(-10);
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(4)]), 2012);
}

#[test]
fn switch_like_chain_and_bitops() {
    let src = r#"
        class Main {
            static int f(int n) {
                int x = n & 255;
                x = x | 4096;
                x = x ^ 15;
                x = x << 2;
                x = x >>> 1;
                long y = (long) x;
                y = y << 33;
                y = y >> 30;
                return (int) (y & 0x7fffffff) + x;
            }
        }
    "#;
    let n = 77i32;
    let mut x = n & 255;
    x |= 4096;
    x ^= 15;
    x <<= 2;
    x = ((x as u32) >> 1) as i32;
    let mut y = x as i64;
    y <<= 33;
    y >>= 30;
    let expect = ((y & 0x7fffffff) as i32).wrapping_add(x);
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(n)]), expect);
}

#[test]
fn instance_field_initializers_run_in_ctor() {
    let src = r#"
        class Box {
            int capacity = 64;
            String tag = "box";
            int describe() { return capacity + tag.length(); }
        }
        class Main {
            static int f(int unused) { return new Box().describe(); }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(0)]), 67);
}

#[test]
fn gc_survives_allocation_churn() {
    let src = r#"
        class Node {
            Node next;
            int v;
            Node(int v) { this.v = v; }
        }
        class Main {
            static int f(int n) {
                Node head = null;
                // Lots of garbage plus a live list.
                for (int i = 0; i < n; i++) {
                    Node garbage = new Node(i * 2);
                    Node keep = new Node(i);
                    keep.next = head;
                    head = keep;
                }
                System.gc();
                int s = 0;
                while (head != null) { s += head.v; head = head.next; }
                return s;
            }
        }
    "#;
    assert_eq!(run_int(src, "Main", "f", vec![Value::Int(100)]), 4950);
}
