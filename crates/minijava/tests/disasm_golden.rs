//! Golden test: the disassembly of a known compilation stays stable.
//! Guards the compiler's code shape (and the disassembler) against
//! accidental regressions; update deliberately when codegen changes.

use ijvm_minijava::{compile, CompileEnv};

#[test]
fn max_method_disassembles_to_the_expected_shape() {
    let classes = compile(
        r#"
        class M {
            static int max(int a, int b) {
                if (a > b) return a;
                return b;
            }
        }
        "#,
        &CompileEnv::new(),
    )
    .unwrap();
    let text = ijvm_classfile::disasm::disassemble(&classes[0]).unwrap();
    // Structure, not exact offsets: a comparison branch, two ireturns and
    // the unreachable terminator.
    assert!(text.contains("public class M"), "{text}");
    assert!(text.contains("method max(II)I"), "{text}");
    assert!(text.contains("if_icmpgt"), "{text}");
    assert_eq!(text.matches("ireturn").count(), 2, "{text}");
    assert!(
        text.contains("athrow"),
        "non-void terminator present: {text}"
    );
}

#[test]
fn string_concat_lowers_to_stringbuilder() {
    let classes = compile(
        r#"class S { static String f(int n) { return "n=" + n + "!"; } }"#,
        &CompileEnv::new(),
    )
    .unwrap();
    let text = ijvm_classfile::disasm::disassemble(&classes[0]).unwrap();
    assert!(text.contains("new java/lang/StringBuilder"), "{text}");
    assert!(
        text.contains("invokevirtual java/lang/StringBuilder.append:(Ljava/lang/String;)Ljava/lang/StringBuilder;"),
        "{text}"
    );
    assert!(
        text.contains("invokevirtual java/lang/StringBuilder.append:(I)Ljava/lang/StringBuilder;"),
        "{text}"
    );
    assert!(
        text.contains("invokevirtual java/lang/StringBuilder.toString:()Ljava/lang/String;"),
        "{text}"
    );
}

#[test]
fn synchronized_blocks_emit_balanced_monitor_ops() {
    let classes = compile(
        r#"
        class L {
            static Object lock = new Object();
            static void f() { synchronized (lock) { int x = 1; } }
        }
        "#,
        &CompileEnv::new(),
    )
    .unwrap();
    let text = ijvm_classfile::disasm::disassemble(&classes[0]).unwrap();
    assert_eq!(text.matches("monitorenter").count(), 1, "{text}");
    // Normal path + exceptional path both release.
    assert_eq!(text.matches("monitorexit").count(), 2, "{text}");
    assert!(
        text.contains("catch any"),
        "catch-all for the unlock: {text}"
    );
}

#[test]
fn try_catch_emits_typed_handler_ranges() {
    let classes = compile(
        r#"
        class T {
            static int f(int n) {
                try { return 10 / n; } catch (ArithmeticException e) { return -1; }
            }
        }
        "#,
        &CompileEnv::new(),
    )
    .unwrap();
    let text = ijvm_classfile::disasm::disassemble(&classes[0]).unwrap();
    assert!(
        text.contains("catch java/lang/ArithmeticException"),
        "{text}"
    );
    assert!(text.contains("idiv"), "{text}");
}

#[test]
fn interfaces_compile_to_abstract_methods() {
    let classes = compile(
        "interface Op { int apply(int x); } class Id implements Op { public int apply(int x) { return x; } }",
        &CompileEnv::new(),
    )
    .unwrap();
    let op = ijvm_classfile::disasm::disassemble(&classes[0]).unwrap();
    assert!(op.contains("interface"), "{op}");
    assert!(op.contains("abstract method apply(I)I"), "{op}");
    let id = ijvm_classfile::disasm::disassemble(&classes[1]).unwrap();
    assert!(id.contains("implements Op"), "{id}");
}
