//! Differential property test: random arithmetic expressions compiled by
//! mini-java and interpreted by the VM must agree with a Rust reference
//! evaluator (Java wrapping semantics).

use ijvm_core::prelude::*;
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use proptest::prelude::*;

/// An expression tree over ints.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Var, // the method parameter
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    Neg(Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![(-1000i32..1000).prop_map(E::Lit), Just(E::Var)];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| E::Shl(Box::new(a), s)),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| E::Shr(Box::new(a), s)),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

fn to_source(e: &E) -> String {
    match e {
        E::Lit(v) => {
            if *v < 0 {
                format!("(0 - {})", -(*v as i64))
            } else {
                v.to_string()
            }
        }
        E::Var => "x".to_owned(),
        E::Add(a, b) => format!("({} + {})", to_source(a), to_source(b)),
        E::Sub(a, b) => format!("({} - {})", to_source(a), to_source(b)),
        E::Mul(a, b) => format!("({} * {})", to_source(a), to_source(b)),
        E::And(a, b) => format!("({} & {})", to_source(a), to_source(b)),
        E::Or(a, b) => format!("({} | {})", to_source(a), to_source(b)),
        E::Xor(a, b) => format!("({} ^ {})", to_source(a), to_source(b)),
        E::Shl(a, s) => format!("({} << {s})", to_source(a)),
        E::Shr(a, s) => format!("({} >> {s})", to_source(a)),
        E::Neg(a) => format!("(-{})", to_source(a)),
    }
}

fn eval(e: &E, x: i32) -> i32 {
    match e {
        E::Lit(v) => *v,
        E::Var => x,
        E::Add(a, b) => eval(a, x).wrapping_add(eval(b, x)),
        E::Sub(a, b) => eval(a, x).wrapping_sub(eval(b, x)),
        E::Mul(a, b) => eval(a, x).wrapping_mul(eval(b, x)),
        E::And(a, b) => eval(a, x) & eval(b, x),
        E::Or(a, b) => eval(a, x) | eval(b, x),
        E::Xor(a, b) => eval(a, x) ^ eval(b, x),
        E::Shl(a, s) => eval(a, x).wrapping_shl(*s as u32),
        E::Shr(a, s) => eval(a, x).wrapping_shr(*s as u32),
        E::Neg(a) => eval(a, x).wrapping_neg(),
    }
}

fn run_compiled(expr_src: &str, x: i32) -> i32 {
    let src = format!("class P {{ static int f(int x) {{ return {expr_src}; }} }}");
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let iso = vm.create_isolate("prop");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(&src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, "P").unwrap();
    match vm.call_static(class, "f", "(I)I", vec![Value::Int(x)]) {
        Ok(Some(Value::Int(v))) => v,
        other => panic!("expression run failed: {other:?} for {src}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_expressions_match_reference_eval(e in arb_expr(), x in -10_000i32..10_000) {
        let src = to_source(&e);
        let expect = eval(&e, x);
        let got = run_compiled(&src, x);
        prop_assert_eq!(got, expect, "expr {} at x={}", src, x);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Division/remainder against the reference, with Java semantics
    /// (truncated division, wrapping overflow, exception on zero handled
    /// by guarding the generator).
    #[test]
    fn division_matches_reference(a in any::<i32>(), b in any::<i32>().prop_filter("nonzero", |v| *v != 0)) {
        let src = format!("(x / {b1}) + (x % {b1})", b1 = if b < 0 { format!("(0 - {})", -(b as i64)) } else { b.to_string() });
        let expect = a.wrapping_div(b).wrapping_add(a.wrapping_rem(b));
        let got = run_compiled(&src, a);
        prop_assert_eq!(got, expect);
    }
}
