//! Second wave of language tests: compound assignment targets, char
//! arithmetic, exception hierarchies, interface arrays, clinit ordering,
//! string methods, nested control flow.

use ijvm_core::prelude::*;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

fn run_int(source: &str, class: &str, method: &str, args: Vec<Value>) -> i32 {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let iso = vm.create_isolate("lang");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(source, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let cid = vm.load_class(loader, class).unwrap();
    let desc = format!("({})I", "I".repeat(args.len()));
    match vm.call_static(cid, method, &desc, args) {
        Ok(Some(Value::Int(v))) => v,
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn compound_assignment_on_fields_and_arrays() {
    let src = r#"
        class Acc {
            static int total;
            int local;
            static int f(int n) {
                total = 5;
                total += n;       // static compound
                total *= 2;
                Acc a = new Acc();
                a.local = 3;
                a.local += total; // instance compound
                int[] xs = new int[4];
                xs[1] = 10;
                xs[1] += a.local; // array compound
                xs[1] <<= 1;
                return xs[1];
            }
        }
    "#;
    // total = (5+7)*2 = 24; a.local = 3+24 = 27; xs[1] = (10+27)<<1 = 74
    assert_eq!(run_int(src, "Acc", "f", vec![Value::Int(7)]), 74);
}

#[test]
fn increment_decrement_on_every_lvalue_kind() {
    let src = r#"
        class Inc {
            static int counter;
            static int f(int n) {
                int i = n;
                i++;
                i++;
                i--;
                counter = 10;
                counter++;
                int[] xs = new int[2];
                xs[0] = 100;
                xs[0]++;
                xs[0]++;
                return i + counter + xs[0];
            }
        }
    "#;
    assert_eq!(run_int(src, "Inc", "f", vec![Value::Int(1)]), 2 + 11 + 102);
}

#[test]
fn char_arithmetic_and_comparisons() {
    let src = r#"
        class Chars {
            static int f(int n) {
                char c = 'a';
                char upper = (char) (c - 32);
                int count = 0;
                String s = "Hello World";
                for (int i = 0; i < s.length(); i++) {
                    char x = s.charAt(i);
                    if (x >= 'A' && x <= 'Z') count++;
                }
                return upper * 1000 + count;
            }
        }
    "#;
    assert_eq!(
        run_int(src, "Chars", "f", vec![Value::Int(0)]),
        ('A' as i32) * 1000 + 2
    );
}

#[test]
fn exception_subtyping_catches_subclasses() {
    let src = r#"
        class Sub {
            static int f(int kind) {
                try {
                    if (kind == 0) throw new NullPointerException("npe");
                    if (kind == 1) throw new ArithmeticException("ae");
                    throw new IllegalStateException("ise");
                } catch (RuntimeException e) {
                    String m = e.getMessage();
                    return m.length();
                }
            }
        }
    "#;
    assert_eq!(run_int(src, "Sub", "f", vec![Value::Int(0)]), 3);
    assert_eq!(run_int(src, "Sub", "f", vec![Value::Int(1)]), 2);
    assert_eq!(run_int(src, "Sub", "f", vec![Value::Int(2)]), 3);
}

#[test]
fn catch_clauses_are_tried_in_order() {
    let src = r#"
        class Order {
            static int f(int kind) {
                try {
                    if (kind == 0) throw new NullPointerException();
                    throw new RuntimeException();
                } catch (NullPointerException e) {
                    return 1;
                } catch (RuntimeException e) {
                    return 2;
                }
            }
        }
    "#;
    assert_eq!(run_int(src, "Order", "f", vec![Value::Int(0)]), 1);
    assert_eq!(run_int(src, "Order", "f", vec![Value::Int(1)]), 2);
}

#[test]
fn nested_try_rethrow_crosses_frames() {
    let src = r#"
        class Frames {
            static int inner() {
                try {
                    int[] xs = new int[1];
                    return xs[9];
                } catch (NullPointerException e) {
                    return -1; // wrong handler: must not catch AIOOBE
                }
            }
            static int f(int n) {
                try {
                    return inner();
                } catch (ArrayIndexOutOfBoundsException e) {
                    return 55;
                }
            }
        }
    "#;
    assert_eq!(run_int(src, "Frames", "f", vec![Value::Int(0)]), 55);
}

#[test]
fn interface_arrays_and_polymorphic_sum() {
    let src = r#"
        interface Pricer { int price(int qty); }
        class Flat implements Pricer {
            int rate;
            Flat(int r) { rate = r; }
            public int price(int qty) { return rate * qty; }
        }
        class Tiered implements Pricer {
            public int price(int qty) {
                if (qty > 10) return qty * 2;
                return qty * 3;
            }
        }
        class Shop {
            static int f(int qty) {
                Pricer[] ps = new Pricer[3];
                ps[0] = new Flat(5);
                ps[1] = new Tiered();
                ps[2] = new Flat(1);
                int sum = 0;
                for (int i = 0; i < ps.length; i++) sum += ps[i].price(qty);
                return sum;
            }
        }
    "#;
    // qty=12: 60 + 24 + 12 = 96
    assert_eq!(run_int(src, "Shop", "f", vec![Value::Int(12)]), 96);
}

#[test]
fn clinit_dependency_chain_runs_in_order() {
    let src = r#"
        class A {
            static int base = 7;
        }
        class B {
            static int derived = A.base * 3;
        }
        class C {
            static int f(int n) { return B.derived + A.base; }
        }
    "#;
    assert_eq!(run_int(src, "C", "f", vec![Value::Int(0)]), 28);
}

#[test]
fn string_methods_compose() {
    let src = r#"
        class Text {
            static int f(int n) {
                String s = "component isolation";
                String head = s.substring(0, 9);
                int space = s.indexOf(' ');
                String inDoc = head + "/" + s.substring(space + 1, s.length());
                if (!inDoc.equals("component/isolation")) return -1;
                return inDoc.length() * 100 + space;
            }
        }
    "#;
    assert_eq!(run_int(src, "Text", "f", vec![Value::Int(0)]), 19 * 100 + 9);
}

#[test]
fn boolean_bit_operators_do_not_short_circuit() {
    let src = r#"
        class Bools {
            static int calls;
            static boolean touch() { calls++; return false; }
            static int f(int n) {
                calls = 0;
                boolean a = touch() & touch();  // both evaluate
                boolean b = touch() && touch(); // short-circuits after first
                if (a | b) return -1;
                return calls;
            }
        }
    "#;
    assert_eq!(run_int(src, "Bools", "f", vec![Value::Int(0)]), 3);
}

#[test]
fn nested_loops_with_labelless_break_continue() {
    let src = r#"
        class Grid {
            static int f(int n) {
                int hits = 0;
                for (int y = 0; y < n; y++) {
                    for (int x = 0; x < n; x++) {
                        if (x == y) continue;
                        if (x + y > n) break;
                        hits++;
                    }
                }
                return hits;
            }
        }
    "#;
    let reference = |n: i32| {
        let mut hits = 0;
        for y in 0..n {
            for x in 0..n {
                if x == y {
                    continue;
                }
                if x + y > n {
                    break;
                }
                hits += 1;
            }
        }
        hits
    };
    assert_eq!(run_int(src, "Grid", "f", vec![Value::Int(8)]), reference(8));
}

#[test]
fn long_and_double_locals_round_trip_through_calls() {
    let src = r#"
        class Mix {
            static long lmul(long a, long b) { return a * b; }
            static double half(double d) { return d / 2.0; }
            static int f(int n) {
                long big = lmul(1L << 20, n);
                double d = half(big);
                return (int) ((long) d >> 10);
            }
        }
    "#;
    let expect = ((((1i64 << 20) * 6) as f64 / 2.0) as i64 >> 10) as i32;
    assert_eq!(run_int(src, "Mix", "f", vec![Value::Int(6)]), expect);
}

#[test]
fn three_level_inheritance_with_overrides() {
    let src = r#"
        class Base {
            int tag() { return 1; }
            int describe() { return tag() * 10; }
        }
        class Mid extends Base {
            int tag() { return 2; }
        }
        class Leaf extends Mid {
            int tag() { return 3; }
            int describe() { return tag() * 100; }
        }
        class Drive {
            static int f(int n) {
                Base[] xs = new Base[3];
                xs[0] = new Base();
                xs[1] = new Mid();
                xs[2] = new Leaf();
                int sum = 0;
                for (int i = 0; i < xs.length; i++) sum += xs[i].describe();
                return sum;
            }
        }
    "#;
    // 10 + 20 + 300 = 330 (describe inherited by Mid calls overridden tag)
    assert_eq!(run_int(src, "Drive", "f", vec![Value::Int(0)]), 330);
}

#[test]
fn object_equals_and_hashcode_defaults() {
    let src = r#"
        class Id {
            static int f(int n) {
                Object a = new Object();
                Object b = new Object();
                int r = 0;
                if (a.equals(a)) r += 1;
                if (!a.equals(b)) r += 2;
                if (a.hashCode() == a.hashCode()) r += 4;
                if (a.hashCode() != b.hashCode()) r += 8;
                return r;
            }
        }
    "#;
    assert_eq!(run_int(src, "Id", "f", vec![Value::Int(0)]), 15);
}

#[test]
fn compile_errors_carry_useful_messages() {
    for (src, needle) in [
        (
            "class C { static int f() { return g(); } }",
            "no applicable overload",
        ),
        ("class C { static int f() { return x; } }", "unknown name"),
        (
            "class C { static void f() { Unknown u = null; } }",
            "unknown type",
        ),
        (
            "class C { static int f() { boolean b = true; return b + 1; } }",
            "bad operands",
        ),
        (
            "class C { static void f() { break; } }",
            "break outside loop",
        ),
        (
            "class C { static int f(int x) { int x = 2; return x; } }",
            "duplicate variable",
        ),
        (
            "class C { void f() { this.g(); } } class D {}",
            "no applicable overload",
        ),
    ] {
        let err = compile_to_bytes(src, &CompileEnv::new()).unwrap_err();
        assert!(
            err.message.contains(needle),
            "source {src:?} should fail with {needle:?}, got: {err}"
        );
    }
}
