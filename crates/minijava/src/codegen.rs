//! Typed bytecode generation: AST → `ijvm-classfile` class files.

use crate::ast::*;
use crate::env::{ClassInfo, Env, FieldSig, MethodSig, Ty};
use crate::error::{CompileError, Result};
use ijvm_classfile::{
    AccessFlags, BaseType, ClassBuilder, ClassFile, Label, MethodBuilder, Opcode,
};
use std::collections::HashMap;

/// Compiles a parsed unit against `env`. `package` (may be empty) prefixes
/// the internal names of the unit's classes, e.g. `"bundlea"` turns class
/// `Impl` into `bundlea/Impl`.
pub fn compile_unit(unit: &Unit, env: &Env, package: &str) -> Result<Vec<ClassFile>> {
    // Phase 1: register unit classes in a local environment so they can
    // reference each other (and themselves).
    let mut local = env.clone();
    let internal_of = |simple: &str| -> String {
        if package.is_empty() {
            simple.to_owned()
        } else {
            format!("{package}/{simple}")
        }
    };
    let mut infos = Vec::new();
    for c in &unit.classes {
        let info = signature_of(c, unit, env, package)?;
        local.add_class(info.clone());
        infos.push(info);
    }
    // Phase 2: generate code.
    let mut out = Vec::new();
    for (c, info) in unit.classes.iter().zip(&infos) {
        out.push(gen_class(c, info, &local, &internal_of(&c.name))?);
    }
    Ok(out)
}

/// Resolves a surface type name against the unit + environment.
fn resolve_type(tn: &TypeName, unit: &Unit, env: &Env, package: &str, line: u32) -> Result<Ty> {
    Ok(match tn {
        TypeName::Int => Ty::Int,
        TypeName::Long => Ty::Long,
        TypeName::Float => Ty::Float,
        TypeName::Double => Ty::Double,
        TypeName::Boolean => Ty::Boolean,
        TypeName::Char => Ty::Char,
        TypeName::Void => Ty::Void,
        TypeName::Array(e) => Ty::Array(Box::new(resolve_type(e, unit, env, package, line)?)),
        TypeName::Named(n) => {
            if unit.classes.iter().any(|c| &c.name == n) {
                let internal = if package.is_empty() {
                    n.clone()
                } else {
                    format!("{package}/{n}")
                };
                Ty::Object(internal)
            } else if let Some(internal) = env.resolve(n) {
                Ty::Object(internal.to_owned())
            } else {
                return Err(CompileError::check(line, format!("unknown type `{n}`")));
            }
        }
    })
}

fn resolve_class_name(
    name: &str,
    unit: &Unit,
    env: &Env,
    package: &str,
    line: u32,
) -> Result<String> {
    match resolve_type(&TypeName::Named(name.to_owned()), unit, env, package, line)? {
        Ty::Object(internal) => Ok(internal),
        _ => Err(CompileError::check(
            line,
            format!("`{name}` is not a class"),
        )),
    }
}

fn signature_of(c: &ClassDecl, unit: &Unit, env: &Env, package: &str) -> Result<ClassInfo> {
    let internal = if package.is_empty() {
        c.name.clone()
    } else {
        format!("{package}/{}", c.name)
    };
    let superclass = match &c.superclass {
        Some(s) => Some(resolve_class_name(s, unit, env, package, c.line)?),
        None => Some("java/lang/Object".to_owned()),
    };
    let interfaces = c
        .interfaces
        .iter()
        .map(|i| resolve_class_name(i, unit, env, package, c.line))
        .collect::<Result<Vec<_>>>()?;
    let mut fields = Vec::new();
    for f in &c.fields {
        fields.push(FieldSig {
            name: f.name.clone(),
            ty: resolve_type(&f.ty, unit, env, package, f.line)?,
            is_static: f.is_static,
        });
    }
    let mut methods = Vec::new();
    let mut has_ctor = false;
    for mdecl in &c.methods {
        has_ctor |= mdecl.is_ctor;
        let params = mdecl
            .params
            .iter()
            .map(|(_, t)| resolve_type(t, unit, env, package, mdecl.line))
            .collect::<Result<Vec<_>>>()?;
        let ret = resolve_type(&mdecl.ret, unit, env, package, mdecl.line)?;
        methods.push(MethodSig {
            name: mdecl.name.clone(),
            params,
            ret,
            is_static: mdecl.is_static,
        });
    }
    if !has_ctor && !c.is_interface {
        methods.push(MethodSig {
            name: "<init>".to_owned(),
            params: vec![],
            ret: Ty::Void,
            is_static: false,
        });
    }
    Ok(ClassInfo {
        internal,
        is_interface: c.is_interface,
        superclass,
        interfaces,
        fields,
        methods,
    })
}

fn gen_class(c: &ClassDecl, info: &ClassInfo, env: &Env, internal: &str) -> Result<ClassFile> {
    let mut flags = AccessFlags::PUBLIC;
    if c.is_interface {
        flags |= AccessFlags::INTERFACE | AccessFlags::ABSTRACT;
    }
    let superclass = info
        .superclass
        .clone()
        .unwrap_or_else(|| "java/lang/Object".to_owned());
    let mut cb = ClassBuilder::new(internal, &superclass, flags);
    for i in &info.interfaces {
        cb.implements(i);
    }
    for (f, sig) in c.fields.iter().zip(&info.fields) {
        let mut fflags = AccessFlags::PUBLIC;
        if sig.is_static {
            fflags |= AccessFlags::STATIC;
        }
        cb.field(&f.name, &sig.ty.descriptor(), fflags);
    }

    if c.is_interface {
        for m in &c.methods {
            let sig = info
                .methods
                .iter()
                .find(|s| s.name == m.name)
                .expect("signature registered in phase 1");
            cb.abstract_method(&m.name, &sig.descriptor(), AccessFlags::PUBLIC);
        }
        return cb
            .build()
            .map_err(|e| CompileError::emit(c.line, e.to_string()));
    }

    // <clinit> for static field initializers.
    let static_inits: Vec<(&FieldDecl, &FieldSig)> = c
        .fields
        .iter()
        .zip(&info.fields)
        .filter(|(f, _)| f.is_static && f.init.is_some())
        .collect();
    if !static_inits.is_empty() {
        let mb = cb.method("<clinit>", "()V", AccessFlags::STATIC);
        let mut g = Gen::new(mb, env, info, internal, Ty::Void, true);
        for (f, sig) in &static_inits {
            let t = g.expr(f.init.as_ref().expect("filtered on init"))?;
            g.convert(&t, &sig.ty, f.line)?;
            g.mb.putstatic(internal, &f.name, &sig.ty.descriptor());
        }
        g.mb.op(Opcode::Return);
        g.mb.done()
            .map_err(|e| CompileError::emit(c.line, e.to_string()))?;
    }

    let instance_inits: Vec<(&FieldDecl, &FieldSig)> = c
        .fields
        .iter()
        .zip(&info.fields)
        .filter(|(f, _)| !f.is_static && f.init.is_some())
        .collect();

    let mut has_ctor = false;
    for m in &c.methods {
        if m.is_ctor {
            has_ctor = true;
        }
        gen_method(
            &mut cb,
            m,
            c,
            info,
            env,
            internal,
            &superclass,
            &instance_inits,
        )?;
    }
    if !has_ctor {
        // Default constructor.
        let mb = cb.method("<init>", "()V", AccessFlags::PUBLIC);
        let mut g = Gen::new(mb, env, info, internal, Ty::Void, false);
        g.mb.aload(0);
        g.mb.invokespecial(&superclass, "<init>", "()V");
        gen_field_inits(&mut g, internal, &instance_inits)?;
        g.mb.op(Opcode::Return);
        g.mb.done()
            .map_err(|e| CompileError::emit(c.line, e.to_string()))?;
    }

    cb.build()
        .map_err(|e| CompileError::emit(c.line, e.to_string()))
}

fn gen_field_inits(
    g: &mut Gen<'_>,
    internal: &str,
    inits: &[(&FieldDecl, &FieldSig)],
) -> Result<()> {
    for (f, sig) in inits {
        g.mb.aload(0);
        let t = g.expr(f.init.as_ref().expect("filtered on init"))?;
        g.convert(&t, &sig.ty, f.line)?;
        g.mb.putfield(internal, &f.name, &sig.ty.descriptor());
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn gen_method(
    cb: &mut ClassBuilder,
    m: &MethodDecl,
    c: &ClassDecl,
    info: &ClassInfo,
    env: &Env,
    internal: &str,
    superclass: &str,
    instance_inits: &[(&FieldDecl, &FieldSig)],
) -> Result<()> {
    let sig = env
        .class(internal)
        .and_then(|ci| {
            ci.methods
                .iter()
                .find(|s| s.name == m.name && s.params.len() == m.params.len())
        })
        .cloned()
        .expect("signature registered in phase 1");
    let mut flags = AccessFlags::PUBLIC;
    if m.is_static {
        flags |= AccessFlags::STATIC;
    }
    if m.is_synchronized {
        flags |= AccessFlags::SYNCHRONIZED;
    }
    let mb = cb.method(&m.name, &sig.descriptor(), flags);
    let mut g = Gen::new(mb, env, info, internal, sig.ret.clone(), m.is_static);
    // Parameters.
    let first_slot = if m.is_static { 0 } else { 1 };
    for (slot, ((pname, _), pty)) in (first_slot..).zip(m.params.iter().zip(&sig.params)) {
        g.declare(pname, slot, pty.clone(), m.line)?;
    }
    if m.is_ctor {
        g.mb.aload(0);
        g.mb.invokespecial(superclass, "<init>", "()V");
        gen_field_inits(&mut g, internal, instance_inits)?;
    }
    let body = m.body.as_ref().expect("non-interface methods have bodies");
    for s in body {
        g.stmt(s)?;
    }
    // Terminator: void methods get an implicit `return`; value-returning
    // methods get an unreachable `aconst_null; athrow` so loop-exit labels
    // bound at the end of the body always target a real instruction. A
    // body that genuinely falls through without returning fails at run
    // time instead of assembly time (no full reachability analysis here).
    if sig.ret == Ty::Void {
        g.mb.op(Opcode::Return);
    } else {
        g.mb.const_null();
        g.mb.op(Opcode::Athrow);
    }
    g.mb.done()
        .map_err(|e| CompileError::emit(m.line, format!("in {}.{}: {e}", c.name, m.name)))
}

/// Per-method code generator.
struct Gen<'cb> {
    mb: MethodBuilder<'cb>,
    env: &'cb Env,
    #[allow(dead_code)] // kept for diagnostics / future `super.` support
    class: &'cb ClassInfo,
    internal: &'cb str,
    ret: Ty,
    is_static: bool,
    scopes: Vec<HashMap<String, (u16, Ty)>>,
    loops: Vec<(Label, Label)>, // (continue, break)
}

impl<'cb> Gen<'cb> {
    fn new(
        mb: MethodBuilder<'cb>,
        env: &'cb Env,
        class: &'cb ClassInfo,
        internal: &'cb str,
        ret: Ty,
        is_static: bool,
    ) -> Gen<'cb> {
        Gen {
            mb,
            env,
            class,
            internal,
            ret,
            is_static,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
        }
    }

    fn declare(&mut self, name: &str, slot: u16, ty: Ty, line: u32) -> Result<()> {
        self.mb.ensure_locals(slot + 1);
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_owned(), (slot, ty)).is_some() {
            return Err(CompileError::check(
                line,
                format!("duplicate variable `{name}`"),
            ));
        }
        Ok(())
    }

    fn lookup_local(&self, name: &str) -> Option<(u16, Ty)> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn is_class_name(&self, name: &str) -> bool {
        self.lookup_local(name).is_none()
            && self.env.lookup_field(self.internal, name).is_none()
            && self.env.resolve(name).is_some()
    }

    // ---- statements ---------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::VarDecl {
                ty,
                name,
                init,
                line,
            } => {
                let ty = self.resolve(ty, *line)?;
                let slot = self.mb.alloc_local();
                if let Some(e) = init {
                    let t = self.expr(e)?;
                    self.convert(&t, &ty, *line)?;
                    self.store_local(slot, &ty);
                } else {
                    self.default_value(&ty);
                    self.store_local(slot, &ty);
                }
                self.declare(name, slot, ty, *line)
            }
            Stmt::Expr(e) => self.expr_stmt(e),
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                let t = self.expr(cond)?;
                self.expect_boolean(&t, cond.line())?;
                let lfalse = self.mb.new_label();
                self.mb.branch(Opcode::Ifeq, lfalse);
                self.stmt(then)?;
                match otherwise {
                    Some(e) => {
                        let lend = self.mb.new_label();
                        self.mb.goto(lend);
                        self.mb.bind(lfalse);
                        self.stmt(e)?;
                        self.mb.bind(lend);
                    }
                    None => self.mb.bind(lfalse),
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.mb.here();
                let exit = self.mb.new_label();
                // `while (true)` is a plain jump; no exit test emitted.
                if !matches!(cond, Expr::Bool(true, _)) {
                    let t = self.expr(cond)?;
                    self.expect_boolean(&t, cond.line())?;
                    self.mb.branch(Opcode::Ifeq, exit);
                }
                self.loops.push((head, exit));
                self.stmt(body)?;
                self.loops.pop();
                self.mb.goto(head);
                self.mb.bind(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.mb.here();
                let exit = self.mb.new_label();
                let cont = self.mb.new_label();
                if let Some(c) = cond {
                    let t = self.expr(c)?;
                    self.expect_boolean(&t, c.line())?;
                    self.mb.branch(Opcode::Ifeq, exit);
                }
                self.loops.push((cont, exit));
                self.stmt(body)?;
                self.loops.pop();
                self.mb.bind(cont);
                if let Some(u) = update {
                    self.expr_stmt(u)?;
                }
                self.mb.goto(head);
                self.mb.bind(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(value, line) => {
                match (value, self.ret.clone()) {
                    (None, Ty::Void) => {
                        self.mb.op(Opcode::Return);
                    }
                    (Some(_), Ty::Void) => {
                        return Err(CompileError::check(*line, "void method returns a value"));
                    }
                    (None, _) => {
                        return Err(CompileError::check(*line, "missing return value"));
                    }
                    (Some(e), ret) => {
                        let t = self.expr(e)?;
                        self.convert(&t, &ret, *line)?;
                        self.mb.op(return_op(&ret));
                    }
                }
                Ok(())
            }
            Stmt::Throw(e, line) => {
                let t = self.expr(e)?;
                if !matches!(t, Ty::Object(_) | Ty::Null) {
                    return Err(CompileError::check(*line, "can only throw objects"));
                }
                self.mb.op(Opcode::Athrow);
                Ok(())
            }
            Stmt::Break(line) => {
                let (_, brk) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::check(*line, "break outside loop"))?;
                self.mb.goto(brk);
                Ok(())
            }
            Stmt::Continue(line) => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::check(*line, "continue outside loop"))?;
                self.mb.goto(cont);
                Ok(())
            }
            Stmt::Try { body, catches } => self.gen_try(body, catches),
            Stmt::Synchronized { lock, body, line } => self.gen_sync(lock, body, *line),
        }
    }

    fn gen_try(&mut self, body: &[Stmt], catches: &[CatchClause]) -> Result<()> {
        let start = self.mb.here();
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        let after = self.mb.new_label();
        self.mb.goto(after);
        // The protected range includes the goto so exceptions delivered at
        // the resume point of a trailing call still match.
        let end = self.mb.here();
        let mut handler_specs = Vec::new();
        for c in catches {
            let handler = self.mb.here();
            let ty_internal = self
                .env
                .resolve(&c.ty)
                .ok_or_else(|| {
                    CompileError::check(c.line, format!("unknown exception type `{}`", c.ty))
                })?
                .to_owned();
            self.scopes.push(HashMap::new());
            let slot = self.mb.alloc_local();
            self.mb.astore(slot);
            self.declare(&c.name, slot, Ty::Object(ty_internal.clone()), c.line)?;
            for s in &c.body {
                self.stmt(s)?;
            }
            self.scopes.pop();
            self.mb.goto(after);
            handler_specs.push((handler, ty_internal));
        }
        for (handler, ty) in handler_specs {
            self.mb.exception_handler(start, end, handler, Some(&ty));
        }
        self.mb.bind(after);
        Ok(())
    }

    fn gen_sync(&mut self, lock: &Expr, body: &[Stmt], line: u32) -> Result<()> {
        let t = self.expr(lock)?;
        if !t.is_reference() {
            return Err(CompileError::check(line, "synchronized needs an object"));
        }
        let slot = self.mb.alloc_local();
        self.mb.astore(slot);
        self.mb.aload(slot);
        self.mb.op(Opcode::Monitorenter);
        let start = self.mb.here();
        self.scopes.push(HashMap::new());
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        self.mb.aload(slot);
        self.mb.op(Opcode::Monitorexit);
        let after = self.mb.new_label();
        self.mb.goto(after);
        let end = self.mb.here();
        // Catch-all: release the monitor and rethrow.
        let handler = self.mb.here();
        let ex = self.mb.alloc_local();
        self.mb.astore(ex);
        self.mb.aload(slot);
        self.mb.op(Opcode::Monitorexit);
        self.mb.aload(ex);
        self.mb.op(Opcode::Athrow);
        self.mb.exception_handler(start, end, handler, None);
        self.mb.bind(after);
        Ok(())
    }

    /// An expression in statement position: assignments, increments and
    /// calls; any leftover value is popped.
    fn expr_stmt(&mut self, e: &Expr) -> Result<()> {
        match e {
            Expr::Assign { .. } | Expr::Incr { .. } => {
                let t = self.expr(e)?;
                debug_assert_eq!(t, Ty::Void);
                Ok(())
            }
            Expr::Call { .. } | Expr::New { .. } => {
                let t = self.expr(e)?;
                if t != Ty::Void {
                    self.mb.op(Opcode::Pop);
                }
                Ok(())
            }
            other => Err(CompileError::check(
                other.line(),
                "only assignments, increments, calls and `new` can be statements",
            )),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn resolve(&self, tn: &TypeName, line: u32) -> Result<Ty> {
        // The unit's classes are already in env (phase 1), so a dummy unit
        // suffices here.
        let empty = Unit { classes: vec![] };
        match tn {
            TypeName::Named(n) => {
                let internal = self
                    .env
                    .resolve(n)
                    .ok_or_else(|| CompileError::check(line, format!("unknown type `{n}`")))?;
                Ok(Ty::Object(internal.to_owned()))
            }
            TypeName::Array(e) => Ok(Ty::Array(Box::new(self.resolve(e, line)?))),
            other => resolve_type(other, &empty, self.env, "", line),
        }
    }

    fn default_value(&mut self, ty: &Ty) {
        match ty {
            Ty::Long => {
                self.mb.const_long(0);
            }
            Ty::Float => {
                self.mb.const_float(0.0);
            }
            Ty::Double => {
                self.mb.const_double(0.0);
            }
            Ty::Object(_) | Ty::Array(_) | Ty::Null => {
                self.mb.const_null();
            }
            _ => {
                self.mb.const_int(0);
            }
        }
    }

    fn store_local(&mut self, slot: u16, ty: &Ty) {
        match ty {
            Ty::Long => self.mb.lstore(slot),
            Ty::Float => self.mb.fstore(slot),
            Ty::Double => self.mb.dstore(slot),
            Ty::Object(_) | Ty::Array(_) | Ty::Null => self.mb.astore(slot),
            _ => self.mb.istore(slot),
        };
    }

    fn load_local(&mut self, slot: u16, ty: &Ty) {
        match ty {
            Ty::Long => self.mb.lload(slot),
            Ty::Float => self.mb.fload(slot),
            Ty::Double => self.mb.dload(slot),
            Ty::Object(_) | Ty::Array(_) | Ty::Null => self.mb.aload(slot),
            _ => self.mb.iload(slot),
        };
    }

    fn expect_boolean(&self, t: &Ty, line: u32) -> Result<()> {
        if *t == Ty::Boolean {
            Ok(())
        } else {
            Err(CompileError::check(
                line,
                format!("expected boolean, found {t}"),
            ))
        }
    }

    /// Emits a conversion of the stack top from `from` to `to`.
    fn convert(&mut self, from: &Ty, to: &Ty, line: u32) -> Result<()> {
        if from == to {
            return Ok(());
        }
        use Opcode as O;
        match (from, to) {
            (Ty::Char, Ty::Int) | (Ty::Int, Ty::Char) if false => {}
            (Ty::Char, Ty::Int) => {}
            (Ty::Int, Ty::Long) | (Ty::Char, Ty::Long) => {
                self.mb.op(O::I2l);
            }
            (Ty::Int, Ty::Float) | (Ty::Char, Ty::Float) => {
                self.mb.op(O::I2f);
            }
            (Ty::Int, Ty::Double) | (Ty::Char, Ty::Double) => {
                self.mb.op(O::I2d);
            }
            (Ty::Long, Ty::Float) => {
                self.mb.op(O::L2f);
            }
            (Ty::Long, Ty::Double) => {
                self.mb.op(O::L2d);
            }
            (Ty::Float, Ty::Double) => {
                self.mb.op(O::F2d);
            }
            (Ty::Null, Ty::Object(_)) | (Ty::Null, Ty::Array(_)) => {}
            (Ty::Object(a), Ty::Object(b)) if self.env.is_subtype(a, b) => {}
            (Ty::Array(_), Ty::Object(b)) if b == "java/lang/Object" => {}
            (Ty::Array(a), Ty::Array(b)) if a == b => {}
            _ => {
                return Err(CompileError::check(
                    line,
                    format!("cannot implicitly convert {from} to {to}"),
                ));
            }
        }
        Ok(())
    }

    /// Explicit cast conversions (numeric narrowing, checkcast).
    fn cast(&mut self, from: &Ty, to: &Ty, line: u32) -> Result<()> {
        use Opcode as O;
        if from == to {
            return Ok(());
        }
        match (from, to) {
            // Numeric casts.
            (f, t) if f.is_numeric() && t.is_numeric() => {
                let ops: &[Opcode] = match (norm(f), norm(t)) {
                    (Ty::Int, Ty::Long) => &[O::I2l],
                    (Ty::Int, Ty::Float) => &[O::I2f],
                    (Ty::Int, Ty::Double) => &[O::I2d],
                    (Ty::Long, Ty::Int) => &[O::L2i],
                    (Ty::Long, Ty::Float) => &[O::L2f],
                    (Ty::Long, Ty::Double) => &[O::L2d],
                    (Ty::Float, Ty::Int) => &[O::F2i],
                    (Ty::Float, Ty::Long) => &[O::F2l],
                    (Ty::Float, Ty::Double) => &[O::F2d],
                    (Ty::Double, Ty::Int) => &[O::D2i],
                    (Ty::Double, Ty::Long) => &[O::D2l],
                    (Ty::Double, Ty::Float) => &[O::D2f],
                    _ => &[],
                };
                for op in ops {
                    self.mb.op(*op);
                }
                if *to == Ty::Char {
                    self.mb.op(O::I2c);
                }
                Ok(())
            }
            (Ty::Object(_) | Ty::Null | Ty::Array(_), Ty::Object(target)) => {
                self.mb.checkcast(target);
                Ok(())
            }
            (Ty::Object(_) | Ty::Null | Ty::Array(_), Ty::Array(elem)) => {
                // checkcast against the array descriptor.
                let desc = Ty::Array(elem.clone()).descriptor();
                self.mb.checkcast(&desc);
                Ok(())
            }
            _ => Err(CompileError::check(
                line,
                format!("cannot cast {from} to {to}"),
            )),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Ty> {
        match e {
            Expr::Int(v, _) => {
                self.mb.const_int(*v);
                Ok(Ty::Int)
            }
            Expr::Long(v, _) => {
                self.mb.const_long(*v);
                Ok(Ty::Long)
            }
            Expr::Float(v, _) => {
                self.mb.const_float(*v);
                Ok(Ty::Float)
            }
            Expr::Double(v, _) => {
                self.mb.const_double(*v);
                Ok(Ty::Double)
            }
            Expr::Char(v, _) => {
                self.mb.const_int(*v as i32);
                Ok(Ty::Char)
            }
            Expr::Bool(v, _) => {
                self.mb.const_int(*v as i32);
                Ok(Ty::Boolean)
            }
            Expr::Str(s, _) => {
                self.mb.const_string(s);
                Ok(Ty::string())
            }
            Expr::Null(_) => {
                self.mb.const_null();
                Ok(Ty::Null)
            }
            Expr::This(line) => {
                if self.is_static {
                    return Err(CompileError::check(*line, "`this` in static context"));
                }
                self.mb.aload(0);
                Ok(Ty::Object(self.internal.to_owned()))
            }
            Expr::Name(n, line) => self.gen_name(n, *line),
            Expr::Field { target, name, line } => self.gen_field_read(target, name, *line),
            Expr::Index { array, index, line } => {
                let at = self.expr(array)?;
                let Ty::Array(elem) = at else {
                    return Err(CompileError::check(
                        *line,
                        format!("indexing non-array {at}"),
                    ));
                };
                let it = self.expr(index)?;
                self.convert(&it, &Ty::Int, *line)?;
                self.mb.op(array_load_op(&elem));
                Ok(*elem)
            }
            Expr::Call {
                target,
                method,
                args,
                line,
            } => self.gen_call(target.as_deref(), method, args, *line),
            Expr::New { class, args, line } => self.gen_new(class, args, *line),
            Expr::NewArray { elem, len, line } => {
                let elem_ty = self.resolve(elem, *line)?;
                let lt = self.expr(len)?;
                self.convert(&lt, &Ty::Int, *line)?;
                match &elem_ty {
                    Ty::Int => self.mb.newarray(BaseType::Int),
                    Ty::Long => self.mb.newarray(BaseType::Long),
                    Ty::Float => self.mb.newarray(BaseType::Float),
                    Ty::Double => self.mb.newarray(BaseType::Double),
                    Ty::Boolean => self.mb.newarray(BaseType::Boolean),
                    Ty::Char => self.mb.newarray(BaseType::Char),
                    Ty::Object(name) => self.mb.anewarray(name),
                    Ty::Array(inner) => self.mb.anewarray(&Ty::Array(inner.clone()).descriptor()),
                    other => {
                        return Err(CompileError::check(*line, format!("cannot make {other}[]")));
                    }
                };
                Ok(Ty::Array(Box::new(elem_ty)))
            }
            Expr::Bin { op, lhs, rhs, line } => self.gen_bin(*op, lhs, rhs, *line),
            Expr::Not(inner, line) => {
                let t = self.expr(inner)?;
                self.expect_boolean(&t, *line)?;
                self.mb.const_int(1);
                self.mb.op(Opcode::Ixor);
                Ok(Ty::Boolean)
            }
            Expr::Neg(inner, line) => {
                let t = self.expr(inner)?;
                match norm(&t) {
                    Ty::Int => self.mb.op(Opcode::Ineg),
                    Ty::Long => self.mb.op(Opcode::Lneg),
                    Ty::Float => self.mb.op(Opcode::Fneg),
                    Ty::Double => self.mb.op(Opcode::Dneg),
                    other => {
                        return Err(CompileError::check(*line, format!("cannot negate {other}")));
                    }
                };
                Ok(norm(&t))
            }
            Expr::Cast { ty, expr, line } => {
                let to = self.resolve(ty, *line)?;
                let from = self.expr(expr)?;
                self.cast(&from, &to, *line)?;
                Ok(to)
            }
            Expr::InstanceOf { expr, ty, line } => {
                let t = self.expr(expr)?;
                if !t.is_reference() {
                    return Err(CompileError::check(*line, "instanceof needs a reference"));
                }
                let internal = self
                    .env
                    .resolve(ty)
                    .ok_or_else(|| CompileError::check(*line, format!("unknown type `{ty}`")))?
                    .to_owned();
                self.mb.instanceof(&internal);
                Ok(Ty::Boolean)
            }
            Expr::Assign {
                target,
                op,
                value,
                line,
            } => {
                self.gen_assign(target, *op, value, *line)?;
                Ok(Ty::Void)
            }
            Expr::Incr {
                target,
                delta,
                line,
            } => {
                self.gen_incr(target, *delta, *line)?;
                Ok(Ty::Void)
            }
        }
    }

    fn gen_name(&mut self, n: &str, line: u32) -> Result<Ty> {
        if let Some((slot, ty)) = self.lookup_local(n) {
            self.load_local(slot, &ty);
            return Ok(ty);
        }
        if let Some((decl, sig)) = self.env.lookup_field(self.internal, n) {
            let decl = decl.to_owned();
            let sig = sig.clone();
            if sig.is_static {
                self.mb.getstatic(&decl, n, &sig.ty.descriptor());
            } else {
                if self.is_static {
                    return Err(CompileError::check(
                        line,
                        format!("instance field `{n}` in static context"),
                    ));
                }
                self.mb.aload(0);
                self.mb.getfield(&decl, n, &sig.ty.descriptor());
            }
            return Ok(sig.ty);
        }
        Err(CompileError::check(line, format!("unknown name `{n}`")))
    }

    fn gen_field_read(&mut self, target: &Expr, name: &str, line: u32) -> Result<Ty> {
        // `ClassName.field` → static access.
        if let Expr::Name(base, _) = target {
            if self.is_class_name(base) {
                let internal = self.env.resolve(base).expect("checked").to_owned();
                let (decl, sig) = self.env.lookup_field(&internal, name).ok_or_else(|| {
                    CompileError::check(line, format!("no field `{name}` on {base}"))
                })?;
                let (decl, sig) = (decl.to_owned(), sig.clone());
                if !sig.is_static {
                    return Err(CompileError::check(
                        line,
                        format!("`{base}.{name}` is not static"),
                    ));
                }
                self.mb.getstatic(&decl, name, &sig.ty.descriptor());
                return Ok(sig.ty);
            }
        }
        let t = self.expr(target)?;
        match &t {
            Ty::Array(_) if name == "length" => {
                self.mb.op(Opcode::Arraylength);
                Ok(Ty::Int)
            }
            Ty::Object(internal) => {
                let (decl, sig) = self.env.lookup_field(internal, name).ok_or_else(|| {
                    CompileError::check(line, format!("no field `{name}` on {t}"))
                })?;
                let (decl, sig) = (decl.to_owned(), sig.clone());
                if sig.is_static {
                    // Reading a static through an instance: drop the
                    // receiver and read the static.
                    self.mb.op(Opcode::Pop);
                    self.mb.getstatic(&decl, name, &sig.ty.descriptor());
                } else {
                    self.mb.getfield(&decl, name, &sig.ty.descriptor());
                }
                Ok(sig.ty)
            }
            other => Err(CompileError::check(
                line,
                format!("no field `{name}` on {other}"),
            )),
        }
    }

    fn select_overload<'e>(
        &self,
        candidates: &[(&'e str, &'e MethodSig)],
        arg_types: &[Ty],
        line: u32,
        what: &str,
    ) -> Result<(&'e str, MethodSig)> {
        let mut best: Option<(&str, &MethodSig, u32)> = None;
        for (decl, sig) in candidates {
            if sig.params.len() != arg_types.len() {
                continue;
            }
            let mut score = 0;
            let mut ok = true;
            for (a, p) in arg_types.iter().zip(&sig.params) {
                if a == p {
                    score += 2;
                } else if self.env.assignable(a, p) {
                    score += 1;
                } else {
                    ok = false;
                    break;
                }
            }
            if ok && best.map(|(_, _, s)| score > s).unwrap_or(true) {
                best = Some((decl, sig, score));
            }
        }
        match best {
            Some((decl, sig, _)) => Ok((decl, sig.clone())),
            None => Err(CompileError::check(
                line,
                format!(
                    "no applicable overload of {what} for ({})",
                    arg_types
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )),
        }
    }

    /// Pre-pass type inference used where argument types must be known
    /// before emitting (overload selection, string concatenation).
    fn infer(&self, e: &Expr) -> Result<Ty> {
        Ok(match e {
            Expr::Int(..) => Ty::Int,
            Expr::Long(..) => Ty::Long,
            Expr::Float(..) => Ty::Float,
            Expr::Double(..) => Ty::Double,
            Expr::Char(..) => Ty::Char,
            Expr::Bool(..) => Ty::Boolean,
            Expr::Str(..) => Ty::string(),
            Expr::Null(_) => Ty::Null,
            Expr::This(line) => {
                if self.is_static {
                    return Err(CompileError::check(*line, "`this` in static context"));
                }
                Ty::Object(self.internal.to_owned())
            }
            Expr::Name(n, line) => {
                if let Some((_, ty)) = self.lookup_local(n) {
                    ty
                } else if let Some((_, sig)) = self.env.lookup_field(self.internal, n) {
                    sig.ty.clone()
                } else {
                    return Err(CompileError::check(*line, format!("unknown name `{n}`")));
                }
            }
            Expr::Field { target, name, line } => {
                if let Expr::Name(base, _) = &**target {
                    if self.is_class_name(base) {
                        let internal = self.env.resolve(base).expect("checked").to_owned();
                        return self
                            .env
                            .lookup_field(&internal, name)
                            .map(|(_, sig)| sig.ty.clone())
                            .ok_or_else(|| {
                                CompileError::check(*line, format!("no field `{name}` on {base}"))
                            });
                    }
                }
                let t = self.infer(target)?;
                match &t {
                    Ty::Array(_) if name == "length" => Ty::Int,
                    Ty::Object(internal) => self
                        .env
                        .lookup_field(internal, name)
                        .map(|(_, sig)| sig.ty.clone())
                        .ok_or_else(|| {
                            CompileError::check(*line, format!("no field `{name}` on {t}"))
                        })?,
                    other => {
                        return Err(CompileError::check(
                            *line,
                            format!("no field `{name}` on {other}"),
                        ));
                    }
                }
            }
            Expr::Index { array, line, .. } => match self.infer(array)? {
                Ty::Array(e) => *e,
                other => {
                    return Err(CompileError::check(
                        *line,
                        format!("indexing non-array {other}"),
                    ));
                }
            },
            Expr::Call {
                target,
                method,
                args,
                line,
            } => {
                let (owner, candidates_owner) = match target.as_deref() {
                    None => (self.internal.to_owned(), None),
                    Some(Expr::Name(base, _)) if self.is_class_name(base) => {
                        (self.env.resolve(base).expect("checked").to_owned(), None)
                    }
                    Some(t) => match self.infer(t)? {
                        Ty::Object(o) => (o.clone(), Some(o)),
                        other => {
                            return Err(CompileError::check(
                                *line,
                                format!("cannot call method on {other}"),
                            ));
                        }
                    },
                };
                let _ = candidates_owner;
                let arg_types = args
                    .iter()
                    .map(|a| self.infer(a))
                    .collect::<Result<Vec<_>>>()?;
                let cands = self.env.lookup_methods(&owner, method);
                if cands.is_empty() && target.is_none() {
                    // Builtin `println` / `print` shorthand.
                    if method == "println" {
                        return Ok(Ty::Void);
                    }
                }
                let (_, sig) = self.select_overload(&cands, &arg_types, *line, method)?;
                sig.ret
            }
            Expr::New { class, line, .. } => {
                let internal = self.env.resolve(class).ok_or_else(|| {
                    CompileError::check(*line, format!("unknown class `{class}`"))
                })?;
                Ty::Object(internal.to_owned())
            }
            Expr::NewArray { elem, line, .. } => Ty::Array(Box::new(self.resolve(elem, *line)?)),
            Expr::Bin { op, lhs, rhs, line } => {
                let l = self.infer(lhs)?;
                let r = self.infer(rhs)?;
                match op {
                    BinOp::LAnd
                    | BinOp::LOr
                    | BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge => Ty::Boolean,
                    BinOp::Add if l == Ty::string() || r == Ty::string() => Ty::string(),
                    BinOp::Shl | BinOp::Shr | BinOp::Ushr => norm(&l),
                    BinOp::And | BinOp::Or | BinOp::Xor if l == Ty::Boolean && r == Ty::Boolean => {
                        Ty::Boolean
                    }
                    _ => promote(&l, &r).ok_or_else(|| {
                        CompileError::check(*line, format!("bad operands {l} and {r}"))
                    })?,
                }
            }
            Expr::Not(..) => Ty::Boolean,
            Expr::Neg(inner, _) => norm(&self.infer(inner)?),
            Expr::Cast { ty, line, .. } => self.resolve(ty, *line)?,
            Expr::InstanceOf { .. } => Ty::Boolean,
            Expr::Assign { .. } | Expr::Incr { .. } => Ty::Void,
        })
    }

    fn gen_call(
        &mut self,
        target: Option<&Expr>,
        method: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Ty> {
        let arg_types = args
            .iter()
            .map(|a| self.infer(a))
            .collect::<Result<Vec<_>>>()?;

        // Unqualified call.
        let (owner, receiver): (String, Option<&Expr>) = match target {
            None => {
                let cands = self.env.lookup_methods(self.internal, method);
                if cands.is_empty() && method == "println" {
                    // Builtin shorthand for System.println.
                    let sys_cands = self.env.lookup_methods("java/lang/System", "println");
                    let (decl, sig) = self.select_overload(&sys_cands, &arg_types, line, method)?;
                    let decl = decl.to_owned();
                    for (a, p) in args.iter().zip(&sig.params) {
                        let t = self.expr(a)?;
                        self.convert(&t, p, line)?;
                    }
                    self.mb.invokestatic(&decl, "println", &sig.descriptor());
                    return Ok(Ty::Void);
                }
                (self.internal.to_owned(), None)
            }
            Some(Expr::Name(base, _)) if self.is_class_name(base) => {
                (self.env.resolve(base).expect("checked").to_owned(), None)
            }
            Some(recv) => {
                let t = self.infer(recv)?;
                match t {
                    Ty::Object(o) => (o, Some(recv)),
                    other => {
                        return Err(CompileError::check(
                            line,
                            format!("cannot call `{method}` on {other}"),
                        ));
                    }
                }
            }
        };

        let cands = self.env.lookup_methods(&owner, method);
        let (decl, sig) = self.select_overload(&cands, &arg_types, line, method)?;
        let decl = decl.to_owned();
        let decl_is_interface = self
            .env
            .class(&decl)
            .map(|c| c.is_interface)
            .unwrap_or(false);

        if sig.is_static {
            for (a, p) in args.iter().zip(&sig.params) {
                let t = self.expr(a)?;
                self.convert(&t, p, line)?;
            }
            self.mb.invokestatic(&decl, method, &sig.descriptor());
        } else {
            match receiver {
                Some(r) => {
                    self.expr(r)?;
                }
                None => {
                    if self.is_static {
                        return Err(CompileError::check(
                            line,
                            format!("instance method `{method}` called from static context"),
                        ));
                    }
                    self.mb.aload(0);
                }
            }
            for (a, p) in args.iter().zip(&sig.params) {
                let t = self.expr(a)?;
                self.convert(&t, p, line)?;
            }
            // The receiver's *static* type decides interface vs virtual
            // dispatch; the owner may be a class implementing the
            // interface method, in which case virtual is correct.
            let owner_is_interface = self
                .env
                .class(&owner)
                .map(|c| c.is_interface)
                .unwrap_or(false);
            if owner_is_interface || (decl_is_interface && owner == decl) {
                self.mb.invokeinterface(&owner, method, &sig.descriptor());
            } else {
                self.mb.invokevirtual(&decl, method, &sig.descriptor());
            }
        }
        Ok(sig.ret)
    }

    fn gen_new(&mut self, class: &str, args: &[Expr], line: u32) -> Result<Ty> {
        let internal = self
            .env
            .resolve(class)
            .ok_or_else(|| CompileError::check(line, format!("unknown class `{class}`")))?
            .to_owned();
        if self
            .env
            .class(&internal)
            .map(|c| c.is_interface)
            .unwrap_or(false)
        {
            return Err(CompileError::check(
                line,
                format!("cannot instantiate interface {class}"),
            ));
        }
        let arg_types = args
            .iter()
            .map(|a| self.infer(a))
            .collect::<Result<Vec<_>>>()?;
        let cands = self.env.lookup_methods(&internal, "<init>");
        // Constructors do not inherit: only the class's own.
        let own: Vec<_> = cands.into_iter().filter(|(d, _)| *d == internal).collect();
        let (_, sig) =
            self.select_overload(&own, &arg_types, line, &format!("{class} constructor"))?;
        self.mb.new_object(&internal);
        self.mb.op(Opcode::Dup);
        for (a, p) in args.iter().zip(&sig.params) {
            let t = self.expr(a)?;
            self.convert(&t, p, line)?;
        }
        self.mb
            .invokespecial(&internal, "<init>", &sig.descriptor());
        Ok(Ty::Object(internal))
    }

    fn gen_bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: u32) -> Result<Ty> {
        use Opcode as O;
        match op {
            BinOp::LAnd => {
                let t = self.expr(lhs)?;
                self.expect_boolean(&t, line)?;
                let lfalse = self.mb.new_label();
                let lend = self.mb.new_label();
                self.mb.branch(O::Ifeq, lfalse);
                let t = self.expr(rhs)?;
                self.expect_boolean(&t, line)?;
                self.mb.goto(lend);
                self.mb.bind(lfalse);
                self.mb.const_int(0);
                self.mb.bind(lend);
                return Ok(Ty::Boolean);
            }
            BinOp::LOr => {
                let t = self.expr(lhs)?;
                self.expect_boolean(&t, line)?;
                let ltrue = self.mb.new_label();
                let lend = self.mb.new_label();
                self.mb.branch(O::Ifne, ltrue);
                let t = self.expr(rhs)?;
                self.expect_boolean(&t, line)?;
                self.mb.goto(lend);
                self.mb.bind(ltrue);
                self.mb.const_int(1);
                self.mb.bind(lend);
                return Ok(Ty::Boolean);
            }
            _ => {}
        }

        let lt = self.infer(lhs)?;
        let rt = self.infer(rhs)?;

        // String concatenation.
        if op == BinOp::Add && (lt == Ty::string() || rt == Ty::string()) {
            return self.gen_string_concat(lhs, rhs, line);
        }

        // Reference equality (including String: paper §3.5 — `==` does
        // not hold across bundles; use equals()).
        if matches!(op, BinOp::Eq | BinOp::Ne) && lt.is_reference() && rt.is_reference() {
            self.expr(lhs)?;
            self.expr(rhs)?;
            let branch = if op == BinOp::Eq {
                O::IfAcmpeq
            } else {
                O::IfAcmpne
            };
            return self.bool_from_branch(branch);
        }

        // Boolean bit ops.
        if matches!(op, BinOp::And | BinOp::Or | BinOp::Xor)
            && lt == Ty::Boolean
            && rt == Ty::Boolean
        {
            self.expr(lhs)?;
            self.expr(rhs)?;
            self.mb.op(match op {
                BinOp::And => O::Iand,
                BinOp::Or => O::Ior,
                _ => O::Ixor,
            });
            return Ok(Ty::Boolean);
        }

        // Shifts: left operand keeps its (int/long) type, right is int.
        if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::Ushr) {
            let t = norm(&lt);
            if !matches!(t, Ty::Int | Ty::Long) {
                return Err(CompileError::check(line, format!("cannot shift {lt}")));
            }
            let actual = self.expr(lhs)?;
            self.convert(&actual, &t, line)?;
            let rtv = self.expr(rhs)?;
            self.convert(&norm(&rtv), &Ty::Int, line)?;
            let opcode = match (op, &t) {
                (BinOp::Shl, Ty::Int) => O::Ishl,
                (BinOp::Shr, Ty::Int) => O::Ishr,
                (BinOp::Ushr, Ty::Int) => O::Iushr,
                (BinOp::Shl, _) => O::Lshl,
                (BinOp::Shr, _) => O::Lshr,
                (BinOp::Ushr, _) => O::Lushr,
                _ => unreachable!(),
            };
            self.mb.op(opcode);
            return Ok(t);
        }

        // Numeric (and char) operations with promotion.
        let t = promote(&lt, &rt)
            .ok_or_else(|| CompileError::check(line, format!("bad operands {lt} and {rt}")))?;
        let actual = self.expr(lhs)?;
        self.convert(&norm(&actual), &t, line)?;
        let actual = self.expr(rhs)?;
        self.convert(&norm(&actual), &t, line)?;

        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let opcode = arith_op(op, &t);
                self.mb.op(opcode);
                Ok(t)
            }
            BinOp::And | BinOp::Or | BinOp::Xor => {
                let opcode = match (op, &t) {
                    (BinOp::And, Ty::Int) => O::Iand,
                    (BinOp::Or, Ty::Int) => O::Ior,
                    (BinOp::Xor, Ty::Int) => O::Ixor,
                    (BinOp::And, Ty::Long) => O::Land,
                    (BinOp::Or, Ty::Long) => O::Lor,
                    (BinOp::Xor, Ty::Long) => O::Lxor,
                    _ => {
                        return Err(CompileError::check(
                            line,
                            format!("bad bit-op operands {t}"),
                        ));
                    }
                };
                self.mb.op(opcode);
                Ok(t)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match &t {
                Ty::Int => {
                    let branch = match op {
                        BinOp::Eq => O::IfIcmpeq,
                        BinOp::Ne => O::IfIcmpne,
                        BinOp::Lt => O::IfIcmplt,
                        BinOp::Le => O::IfIcmple,
                        BinOp::Gt => O::IfIcmpgt,
                        _ => O::IfIcmpge,
                    };
                    self.bool_from_branch(branch)
                }
                Ty::Long | Ty::Float | Ty::Double => {
                    self.mb.op(match &t {
                        Ty::Long => O::Lcmp,
                        Ty::Float => O::Fcmpl,
                        _ => O::Dcmpl,
                    });
                    let branch = match op {
                        BinOp::Eq => O::Ifeq,
                        BinOp::Ne => O::Ifne,
                        BinOp::Lt => O::Iflt,
                        BinOp::Le => O::Ifle,
                        BinOp::Gt => O::Ifgt,
                        _ => O::Ifge,
                    };
                    self.bool_from_branch(branch)
                }
                other => Err(CompileError::check(line, format!("cannot compare {other}"))),
            },
            BinOp::LAnd | BinOp::LOr | BinOp::Shl | BinOp::Shr | BinOp::Ushr => unreachable!(),
        }
    }

    /// Turns a comparison branch into a 0/1 boolean on the stack.
    fn bool_from_branch(&mut self, branch: Opcode) -> Result<Ty> {
        let ltrue = self.mb.new_label();
        let lend = self.mb.new_label();
        self.mb.branch(branch, ltrue);
        self.mb.const_int(0);
        self.mb.goto(lend);
        self.mb.bind(ltrue);
        self.mb.const_int(1);
        self.mb.bind(lend);
        Ok(Ty::Boolean)
    }

    fn gen_string_concat(&mut self, lhs: &Expr, rhs: &Expr, line: u32) -> Result<Ty> {
        // Flatten nested `+` that are part of the same string chain.
        let mut parts = Vec::new();
        collect_concat(lhs, &mut parts);
        collect_concat(rhs, &mut parts);
        let sb = "java/lang/StringBuilder";
        self.mb.new_object(sb);
        self.mb.op(Opcode::Dup);
        self.mb.invokespecial(sb, "<init>", "()V");
        for p in parts {
            let t = self.expr(p)?;
            let desc = match norm(&t) {
                Ty::Int => "(I)Ljava/lang/StringBuilder;",
                Ty::Long => "(J)Ljava/lang/StringBuilder;",
                Ty::Float => {
                    self.mb.op(Opcode::F2d);
                    "(D)Ljava/lang/StringBuilder;"
                }
                Ty::Double => "(D)Ljava/lang/StringBuilder;",
                Ty::Boolean => "(Z)Ljava/lang/StringBuilder;",
                Ty::Char => "(C)Ljava/lang/StringBuilder;",
                Ty::Object(ref o) if o == "java/lang/String" => {
                    "(Ljava/lang/String;)Ljava/lang/StringBuilder;"
                }
                Ty::Object(_) | Ty::Array(_) | Ty::Null => {
                    "(Ljava/lang/Object;)Ljava/lang/StringBuilder;"
                }
                other => {
                    return Err(CompileError::check(
                        line,
                        format!("cannot concatenate {other}"),
                    ));
                }
            };
            self.mb.invokevirtual(sb, "append", desc);
        }
        self.mb
            .invokevirtual(sb, "toString", "()Ljava/lang/String;");
        Ok(Ty::string())
    }

    fn gen_assign(
        &mut self,
        target: &Expr,
        op: Option<BinOp>,
        value: &Expr,
        line: u32,
    ) -> Result<()> {
        // Rewrite compound assignment `t op= v` as `t = t op v` while
        // keeping single evaluation of the target's subexpressions.
        match target {
            Expr::Name(n, _) => {
                if let Some((slot, ty)) = self.lookup_local(n) {
                    if let Some(op) = op {
                        self.load_local(slot, &ty);
                        self.gen_compound_value(op, &ty, value, line)?;
                    } else {
                        let t = self.expr(value)?;
                        self.convert(&t, &ty, line)?;
                    }
                    self.store_local(slot, &ty);
                    return Ok(());
                }
                // Field of this / static of current class.
                let (decl, sig) = self
                    .env
                    .lookup_field(self.internal, n)
                    .ok_or_else(|| CompileError::check(line, format!("unknown name `{n}`")))?;
                let (decl, sig) = (decl.to_owned(), sig.clone());
                if sig.is_static {
                    if let Some(op) = op {
                        self.mb.getstatic(&decl, n, &sig.ty.descriptor());
                        self.gen_compound_value(op, &sig.ty, value, line)?;
                    } else {
                        let t = self.expr(value)?;
                        self.convert(&t, &sig.ty, line)?;
                    }
                    self.mb.putstatic(&decl, n, &sig.ty.descriptor());
                } else {
                    if self.is_static {
                        return Err(CompileError::check(
                            line,
                            format!("instance field `{n}` in static context"),
                        ));
                    }
                    self.mb.aload(0);
                    if let Some(op) = op {
                        self.mb.op(Opcode::Dup);
                        self.mb.getfield(&decl, n, &sig.ty.descriptor());
                        self.gen_compound_value(op, &sig.ty, value, line)?;
                    } else {
                        let t = self.expr(value)?;
                        self.convert(&t, &sig.ty, line)?;
                    }
                    self.mb.putfield(&decl, n, &sig.ty.descriptor());
                }
                Ok(())
            }
            Expr::Field {
                target: base,
                name,
                line: fline,
            } => {
                // Static via class name?
                if let Expr::Name(b, _) = &**base {
                    if self.is_class_name(b) {
                        let internal = self.env.resolve(b).expect("checked").to_owned();
                        let (decl, sig) =
                            self.env.lookup_field(&internal, name).ok_or_else(|| {
                                CompileError::check(*fline, format!("no field `{name}` on {b}"))
                            })?;
                        let (decl, sig) = (decl.to_owned(), sig.clone());
                        if !sig.is_static {
                            return Err(CompileError::check(
                                *fline,
                                format!("`{b}.{name}` is not static"),
                            ));
                        }
                        if let Some(op) = op {
                            self.mb.getstatic(&decl, name, &sig.ty.descriptor());
                            self.gen_compound_value(op, &sig.ty, value, line)?;
                        } else {
                            let t = self.expr(value)?;
                            self.convert(&t, &sig.ty, line)?;
                        }
                        self.mb.putstatic(&decl, name, &sig.ty.descriptor());
                        return Ok(());
                    }
                }
                let bt = self.expr(base)?;
                let Ty::Object(internal) = &bt else {
                    return Err(CompileError::check(
                        *fline,
                        format!("no field `{name}` on {bt}"),
                    ));
                };
                let (decl, sig) = self.env.lookup_field(internal, name).ok_or_else(|| {
                    CompileError::check(*fline, format!("no field `{name}` on {bt}"))
                })?;
                let (decl, sig) = (decl.to_owned(), sig.clone());
                if let Some(op) = op {
                    self.mb.op(Opcode::Dup);
                    self.mb.getfield(&decl, name, &sig.ty.descriptor());
                    self.gen_compound_value(op, &sig.ty, value, line)?;
                } else {
                    let t = self.expr(value)?;
                    self.convert(&t, &sig.ty, line)?;
                }
                self.mb.putfield(&decl, name, &sig.ty.descriptor());
                Ok(())
            }
            Expr::Index {
                array,
                index,
                line: iline,
            } => {
                let at = self.expr(array)?;
                let Ty::Array(elem) = at else {
                    return Err(CompileError::check(*iline, "indexing non-array"));
                };
                let it = self.expr(index)?;
                self.convert(&it, &Ty::Int, *iline)?;
                if let Some(op) = op {
                    self.mb.op(Opcode::Dup2);
                    self.mb.op(array_load_op(&elem));
                    self.gen_compound_value(op, &elem, value, line)?;
                } else {
                    let t = self.expr(value)?;
                    self.convert(&t, &elem, line)?;
                }
                self.mb.op(array_store_op(&elem));
                Ok(())
            }
            other => Err(CompileError::check(
                other.line(),
                "invalid assignment target",
            )),
        }
    }

    /// With the current value of type `ty` on the stack, applies
    /// `op value` and leaves the result (converted back to `ty`).
    fn gen_compound_value(&mut self, op: BinOp, ty: &Ty, value: &Expr, line: u32) -> Result<()> {
        // String += is concatenation.
        if *ty == Ty::string() && op == BinOp::Add {
            let t = self.expr(value)?;
            if t == Ty::string() {
                self.mb.invokevirtual(
                    "java/lang/String",
                    "concat",
                    "(Ljava/lang/String;)Ljava/lang/String;",
                );
                return Ok(());
            }
            return Err(CompileError::check(
                line,
                "can only += a String to a String",
            ));
        }
        let vt = self.expr(value)?;
        let work = promote(&norm(ty), &norm(&vt))
            .ok_or_else(|| CompileError::check(line, format!("bad operands {ty} and {vt}")))?;
        // The current value was pushed before `value`; if it needs
        // widening the work type must equal ty (no narrowing back).
        if work != norm(ty) {
            return Err(CompileError::check(
                line,
                format!("compound assignment would narrow {work} to {ty}"),
            ));
        }
        self.convert(&norm(&vt), &work, line)?;
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let opcode = arith_op(op, &work);
                self.mb.op(opcode);
            }
            BinOp::And | BinOp::Or | BinOp::Xor => {
                let opcode = match (&work, op) {
                    (Ty::Int, BinOp::And) => Opcode::Iand,
                    (Ty::Int, BinOp::Or) => Opcode::Ior,
                    (Ty::Int, BinOp::Xor) => Opcode::Ixor,
                    (Ty::Long, BinOp::And) => Opcode::Land,
                    (Ty::Long, BinOp::Or) => Opcode::Lor,
                    (Ty::Long, BinOp::Xor) => Opcode::Lxor,
                    _ => return Err(CompileError::check(line, "bad compound bit-op")),
                };
                self.mb.op(opcode);
            }
            BinOp::Shl | BinOp::Shr | BinOp::Ushr => {
                let opcode = match (&work, op) {
                    (Ty::Int, BinOp::Shl) => Opcode::Ishl,
                    (Ty::Int, BinOp::Shr) => Opcode::Ishr,
                    (Ty::Int, BinOp::Ushr) => Opcode::Iushr,
                    (Ty::Long, BinOp::Shl) => Opcode::Lshl,
                    (Ty::Long, BinOp::Shr) => Opcode::Lshr,
                    (Ty::Long, BinOp::Ushr) => Opcode::Lushr,
                    _ => return Err(CompileError::check(line, "bad compound shift")),
                };
                self.mb.op(opcode);
            }
            _ => return Err(CompileError::check(line, "bad compound operator")),
        }
        if *ty == Ty::Char {
            self.mb.op(Opcode::I2c);
        }
        Ok(())
    }

    fn gen_incr(&mut self, target: &Expr, delta: i32, line: u32) -> Result<()> {
        if let Expr::Name(n, _) = target {
            if let Some((slot, ty)) = self.lookup_local(n) {
                if ty == Ty::Int {
                    self.mb.iinc(slot, delta as i16);
                    return Ok(());
                }
            }
        }
        // General case: t = t + delta.
        let value = Expr::Int(delta, line);
        self.gen_assign(target, Some(BinOp::Add), &value, line)
    }
}

/// Normalizes char to int for arithmetic purposes.
fn norm(t: &Ty) -> Ty {
    match t {
        Ty::Char => Ty::Int,
        other => other.clone(),
    }
}

/// Binary numeric promotion.
fn promote(l: &Ty, r: &Ty) -> Option<Ty> {
    let l = norm(l);
    let r = norm(r);
    if !matches!(l, Ty::Int | Ty::Long | Ty::Float | Ty::Double)
        || !matches!(r, Ty::Int | Ty::Long | Ty::Float | Ty::Double)
    {
        return None;
    }
    Some(match (l, r) {
        (Ty::Double, _) | (_, Ty::Double) => Ty::Double,
        (Ty::Float, _) | (_, Ty::Float) => Ty::Float,
        (Ty::Long, _) | (_, Ty::Long) => Ty::Long,
        _ => Ty::Int,
    })
}

fn arith_op(op: BinOp, t: &Ty) -> Opcode {
    use Opcode as O;
    match (op, t) {
        (BinOp::Add, Ty::Int) => O::Iadd,
        (BinOp::Sub, Ty::Int) => O::Isub,
        (BinOp::Mul, Ty::Int) => O::Imul,
        (BinOp::Div, Ty::Int) => O::Idiv,
        (BinOp::Rem, Ty::Int) => O::Irem,
        (BinOp::Add, Ty::Long) => O::Ladd,
        (BinOp::Sub, Ty::Long) => O::Lsub,
        (BinOp::Mul, Ty::Long) => O::Lmul,
        (BinOp::Div, Ty::Long) => O::Ldiv,
        (BinOp::Rem, Ty::Long) => O::Lrem,
        (BinOp::Add, Ty::Float) => O::Fadd,
        (BinOp::Sub, Ty::Float) => O::Fsub,
        (BinOp::Mul, Ty::Float) => O::Fmul,
        (BinOp::Div, Ty::Float) => O::Fdiv,
        (BinOp::Rem, Ty::Float) => O::Frem,
        (BinOp::Add, Ty::Double) => O::Dadd,
        (BinOp::Sub, Ty::Double) => O::Dsub,
        (BinOp::Mul, Ty::Double) => O::Dmul,
        (BinOp::Div, Ty::Double) => O::Ddiv,
        (BinOp::Rem, Ty::Double) => O::Drem,
        _ => unreachable!("arith_op on non-numeric type"),
    }
}

fn array_load_op(elem: &Ty) -> Opcode {
    match elem {
        Ty::Int => Opcode::Iaload,
        Ty::Long => Opcode::Laload,
        Ty::Float => Opcode::Faload,
        Ty::Double => Opcode::Daload,
        Ty::Boolean => Opcode::Baload,
        Ty::Char => Opcode::Caload,
        _ => Opcode::Aaload,
    }
}

fn array_store_op(elem: &Ty) -> Opcode {
    match elem {
        Ty::Int => Opcode::Iastore,
        Ty::Long => Opcode::Lastore,
        Ty::Float => Opcode::Fastore,
        Ty::Double => Opcode::Dastore,
        Ty::Boolean => Opcode::Bastore,
        Ty::Char => Opcode::Castore,
        _ => Opcode::Aastore,
    }
}

/// Flattens a `+` tree into concatenation parts.
fn collect_concat<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Bin {
        op: BinOp::Add,
        lhs,
        rhs,
        ..
    } = e
    {
        // Only flatten if this subtree is itself stringy-ambiguous; to
        // keep arithmetic like `1 + 2 + "s"` left-folded correctly we
        // flatten conservatively: nested `+` flattens only when one side
        // is a string literal chain. Simplest correct choice: do not
        // flatten nested arithmetic — flatten only direct string `+`.
        if contains_string_literal(e) {
            collect_concat(lhs, out);
            collect_concat(rhs, out);
            return;
        }
    }
    out.push(e);
}

fn contains_string_literal(e: &Expr) -> bool {
    match e {
        Expr::Str(..) => true,
        Expr::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
            ..
        } => contains_string_literal(lhs) || contains_string_literal(rhs),
        _ => false,
    }
}

fn return_op(ret: &Ty) -> Opcode {
    match ret {
        Ty::Long => Opcode::Lreturn,
        Ty::Float => Opcode::Freturn,
        Ty::Double => Opcode::Dreturn,
        Ty::Object(_) | Ty::Array(_) | Ty::Null => Opcode::Areturn,
        Ty::Void => Opcode::Return,
        _ => Opcode::Ireturn,
    }
}
