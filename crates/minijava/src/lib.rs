//! # ijvm-minijava — a small Java-like compiler for the ijvm VM
//!
//! Compiles a Java-like source language to `ijvm-classfile` class files.
//! This is the authoring front-end for everything that runs *inside* the
//! VM in this workspace: the OSGi bundles, the eight attacks of the
//! paper's §4.3, and the SPEC JVM98 analogue workloads.
//!
//! The language is a practical subset of Java: classes and interfaces,
//! fields (static and instance, with initializers), constructors,
//! methods (`static`/`synchronized`), `int`/`long`/`float`/`double`/
//! `boolean`/`char`/`String`/class/array types, full expression syntax
//! with numeric promotion and string concatenation, `if`/`while`/`for`/
//! `break`/`continue`, `try`/`catch`, `throw`, `synchronized` blocks,
//! `instanceof`, casts, `new` arrays and objects. Not supported: generics,
//! `finally`, nested classes, varargs, `super.` calls, field shadowing.
//!
//! ```
//! use ijvm_minijava::{compile, CompileEnv};
//!
//! let classes = compile(
//!     r#"
//!     class Fib {
//!         static int fib(int n) {
//!             if (n < 2) return n;
//!             return fib(n - 1) + fib(n - 2);
//!         }
//!     }
//!     "#,
//!     &CompileEnv::new(),
//! )
//! .unwrap();
//! assert_eq!(classes[0].name().unwrap(), "Fib");
//! ```

pub mod ast;
pub mod builtins;
pub mod codegen;
pub mod env;
pub mod error;
pub mod lexer;
pub mod parser;

pub use env::{ClassInfo, Env, FieldSig, MethodSig, Ty};
pub use error::{CompileError, Result};

use ijvm_classfile::ClassFile;

/// Compilation context: the package prefix for generated classes and the
/// set of external classes the unit may reference.
#[derive(Debug, Clone)]
pub struct CompileEnv {
    /// Package prefix (internal-name style, e.g. `"bundlea"`); empty for
    /// the default package.
    pub package: String,
    /// External class signatures (system library + imported bundles).
    pub env: Env,
}

impl CompileEnv {
    /// A fresh environment with the system-library builtins.
    pub fn new() -> CompileEnv {
        CompileEnv {
            package: String::new(),
            env: Env::with_builtins(),
        }
    }

    /// Like [`CompileEnv::new`] with a package prefix.
    pub fn in_package(package: &str) -> CompileEnv {
        CompileEnv {
            package: package.to_owned(),
            env: Env::with_builtins(),
        }
    }

    /// Makes previously compiled classes referenceable (bundle imports).
    pub fn import_class_file(&mut self, cf: &ClassFile) -> Result<()> {
        self.env.add_class_file(cf)
    }

    /// Registers an extra signature directly.
    pub fn import_signature(&mut self, info: ClassInfo) {
        self.env.add_class(info);
    }
}

impl Default for CompileEnv {
    fn default() -> CompileEnv {
        CompileEnv::new()
    }
}

/// Compiles one source unit into class files.
pub fn compile(source: &str, cenv: &CompileEnv) -> Result<Vec<ClassFile>> {
    let unit = parser::parse(source)?;
    codegen::compile_unit(&unit, &cenv.env, &cenv.package)
}

/// Compiles and serializes, returning `(internal_name, bytes)` pairs ready
/// for `Vm::add_class_bytes`.
pub fn compile_to_bytes(source: &str, cenv: &CompileEnv) -> Result<Vec<(String, Vec<u8>)>> {
    let classes = compile(source, cenv)?;
    classes
        .into_iter()
        .map(|cf| {
            let name = cf
                .name()
                .map_err(|e| CompileError::emit(0, e.to_string()))?
                .to_owned();
            let bytes = ijvm_classfile::writer::write_class(&cf)
                .map_err(|e| CompileError::emit(0, e.to_string()))?;
            Ok((name, bytes))
        })
        .collect()
}
