//! Tokenizer for the mini-Java language.

use crate::error::{CompileError, Result};
use std::fmt;

/// A token with its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// `int` literal.
    Int(i32),
    /// `long` literal (`123L`).
    Long(i64),
    /// `float` literal (`1.5f`).
    Float(f32),
    /// `double` literal (`1.5`).
    Double(f64),
    /// `char` literal.
    Char(u16),
    /// String literal.
    Str(String),
    /// Punctuation / operator, e.g. `"+="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Long(v) => write!(f, "{v}L"),
            Tok::Float(v) => write!(f, "{v}f"),
            Tok::Double(v) => write!(f, "{v}"),
            Tok::Char(c) => write!(f, "'{}'", char::from_u32(*c as u32).unwrap_or('?')),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    ">>>=", "<<=", ">>=", ">>>", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "<<", ">>", "&=", "|=", "^=", "+", "-", "*", "/", "%", "=", "<", ">", "!", "&",
    "|", "^", "~", "?", ":", ";", ",", ".", "(", ")", "{", "}", "[", "]",
];

/// Tokenizes `source`.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(CompileError::lex(line, "unterminated block comment"));
                }
                i += 2;
                continue;
            }
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'$')
            {
                i += 1;
            }
            out.push(Token {
                kind: Tok::Ident(source[start..i].to_owned()),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let text = &source[start + 2..i];
                let v = i64::from_str_radix(text, 16)
                    .map_err(|_| CompileError::lex(line, "bad hex literal"))?;
                if i < bytes.len() && (bytes[i] == b'L' || bytes[i] == b'l') {
                    i += 1;
                    out.push(Token {
                        kind: Tok::Long(v),
                        line,
                    });
                } else {
                    out.push(Token {
                        kind: Tok::Int(v as i32),
                        line,
                    });
                }
                continue;
            }
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len()
                && bytes[i] == b'.'
                && i + 1 < bytes.len()
                && (bytes[i + 1] as char).is_ascii_digit()
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                is_float = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &source[start..i];
            let suffix = if i < bytes.len() {
                bytes[i] as char
            } else {
                ' '
            };
            let kind = match (is_float, suffix) {
                (_, 'f') | (_, 'F') => {
                    i += 1;
                    Tok::Float(
                        text.parse()
                            .map_err(|_| CompileError::lex(line, "bad float"))?,
                    )
                }
                (false, 'L') | (false, 'l') => {
                    i += 1;
                    Tok::Long(
                        text.parse()
                            .map_err(|_| CompileError::lex(line, "bad long"))?,
                    )
                }
                (false, 'd') | (false, 'D') | (true, 'd') | (true, 'D') => {
                    i += 1;
                    Tok::Double(
                        text.parse()
                            .map_err(|_| CompileError::lex(line, "bad double"))?,
                    )
                }
                (true, _) => Tok::Double(
                    text.parse()
                        .map_err(|_| CompileError::lex(line, "bad double"))?,
                ),
                (false, _) => Tok::Int(
                    text.parse()
                        .map_err(|_| CompileError::lex(line, "integer literal out of range"))?,
                ),
            };
            out.push(Token { kind, line });
            continue;
        }
        // Char literal.
        if c == '\'' {
            i += 1;
            let ch = if bytes[i] == b'\\' {
                i += 1;
                let e = unescape(bytes[i] as char)
                    .ok_or_else(|| CompileError::lex(line, "bad escape in char literal"))?;
                i += 1;
                e
            } else {
                let ch = source[i..].chars().next().unwrap();
                i += ch.len_utf8();
                ch as u16
            };
            if i >= bytes.len() || bytes[i] != b'\'' {
                return Err(CompileError::lex(line, "unterminated char literal"));
            }
            i += 1;
            out.push(Token {
                kind: Tok::Char(ch),
                line,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(CompileError::lex(line, "unterminated string literal"));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        let e = unescape(bytes[i] as char)
                            .ok_or_else(|| CompileError::lex(line, "bad escape"))?;
                        s.push(char::from_u32(e as u32).unwrap_or('?'));
                        i += 1;
                    }
                    b'\n' => return Err(CompileError::lex(line, "newline in string literal")),
                    _ => {
                        let ch = source[i..].chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            out.push(Token {
                kind: Tok::Str(s),
                line,
            });
            continue;
        }
        // Punctuation.
        let rest = &source[i..];
        let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
            return Err(CompileError::lex(
                line,
                format!("unexpected character {c:?}"),
            ));
        };
        out.push(Token {
            kind: Tok::Punct(p),
            line,
        });
        i += p.len();
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

fn unescape(c: char) -> Option<u16> {
    Some(match c {
        'n' => '\n' as u16,
        't' => '\t' as u16,
        'r' => '\r' as u16,
        '0' => 0,
        '\\' => '\\' as u16,
        '\'' => '\'' as u16,
        '"' => '"' as u16,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 42L 1.5 1.5f 2e3 0x10 0xffL"),
            vec![
                Tok::Int(42),
                Tok::Long(42),
                Tok::Double(1.5),
                Tok::Float(1.5),
                Tok::Double(2000.0),
                Tok::Int(16),
                Tok::Long(255),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a >>> b >= c >> d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct(">>>"),
                Tok::Ident("b".into()),
                Tok::Punct(">="),
                Tok::Ident("c".into()),
                Tok::Punct(">>"),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            kinds(r#""hi\n" 'x' '\t'"#),
            vec![
                Tok::Str("hi\n".into()),
                Tok::Char('x' as u16),
                Tok::Char('\t' as u16),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let toks = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, Tok::Ident("b".into()));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("#").is_err());
        assert!(lex("99999999999999999999").is_err());
    }
}
