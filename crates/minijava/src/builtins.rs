//! Signatures of the system-library classes installed by `ijvm-jsl`.
//!
//! Kept in sync with `ijvm_core::bootstrap` and `ijvm_jsl::classes` by the
//! cross-crate integration tests in the workspace root.

use crate::env::{ClassInfo, Env, FieldSig, MethodSig, Ty};

fn m(name: &str, params: &[Ty], ret: Ty, is_static: bool) -> MethodSig {
    MethodSig {
        name: name.to_owned(),
        params: params.to_vec(),
        ret,
        is_static,
    }
}

fn class(
    internal: &str,
    superclass: Option<&str>,
    interfaces: &[&str],
    fields: Vec<FieldSig>,
    methods: Vec<MethodSig>,
) -> ClassInfo {
    ClassInfo {
        internal: internal.to_owned(),
        is_interface: false,
        superclass: superclass.map(str::to_owned),
        interfaces: interfaces.iter().map(|s| s.to_string()).collect(),
        fields,
        methods,
    }
}

fn exception(env: &mut Env, internal: &str, superclass: &str) {
    env.add_class(class(
        internal,
        Some(superclass),
        &[],
        vec![],
        vec![
            m("<init>", &[], Ty::Void, false),
            m("<init>", &[Ty::string()], Ty::Void, false),
        ],
    ));
}

/// Registers every builtin signature into `env`.
pub fn register(env: &mut Env) {
    let obj = Ty::object;
    let s = Ty::string;

    env.add_class(class(
        "java/lang/Object",
        None,
        &[],
        vec![],
        vec![
            m("<init>", &[], Ty::Void, false),
            m("hashCode", &[], Ty::Int, false),
            m("equals", &[obj()], Ty::Boolean, false),
            m("toString", &[], s(), false),
            m("getClass", &[], Ty::Object("java/lang/Class".into()), false),
        ],
    ));

    env.add_class(class(
        "java/lang/Class",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![m("getName", &[], s(), false)],
    ));

    env.add_class(class(
        "java/lang/String",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("length", &[], Ty::Int, false),
            m("charAt", &[Ty::Int], Ty::Char, false),
            m("equals", &[obj()], Ty::Boolean, false),
            m("hashCode", &[], Ty::Int, false),
            m("concat", &[s()], s(), false),
            m("substring", &[Ty::Int, Ty::Int], s(), false),
            m("indexOf", &[Ty::Int], Ty::Int, false),
            m("intern", &[], s(), false),
            m("toString", &[], s(), false),
        ],
    ));

    env.add_class(class(
        "java/lang/System",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("println", &[s()], Ty::Void, true),
            m("println", &[Ty::Int], Ty::Void, true),
            m("println", &[Ty::Long], Ty::Void, true),
            m("println", &[Ty::Double], Ty::Void, true),
            m("println", &[Ty::Boolean], Ty::Void, true),
            m("println", &[Ty::Char], Ty::Void, true),
            m("println", &[obj()], Ty::Void, true),
            m("currentTimeMillis", &[], Ty::Long, true),
            m("nanoTime", &[], Ty::Long, true),
            m("gc", &[], Ty::Void, true),
            m("exit", &[Ty::Int], Ty::Void, true),
            m("identityHashCode", &[obj()], Ty::Int, true),
            m(
                "arraycopy",
                &[obj(), Ty::Int, obj(), Ty::Int, Ty::Int],
                Ty::Void,
                true,
            ),
        ],
    ));

    env.add_class(class(
        "java/lang/Math",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("abs", &[Ty::Int], Ty::Int, true),
            m("abs", &[Ty::Long], Ty::Long, true),
            m("abs", &[Ty::Double], Ty::Double, true),
            m("min", &[Ty::Int, Ty::Int], Ty::Int, true),
            m("max", &[Ty::Int, Ty::Int], Ty::Int, true),
            m("min", &[Ty::Long, Ty::Long], Ty::Long, true),
            m("max", &[Ty::Long, Ty::Long], Ty::Long, true),
            m("min", &[Ty::Double, Ty::Double], Ty::Double, true),
            m("max", &[Ty::Double, Ty::Double], Ty::Double, true),
            m("sqrt", &[Ty::Double], Ty::Double, true),
            m("floor", &[Ty::Double], Ty::Double, true),
            m("ceil", &[Ty::Double], Ty::Double, true),
            m("pow", &[Ty::Double, Ty::Double], Ty::Double, true),
            m("sin", &[Ty::Double], Ty::Double, true),
            m("cos", &[Ty::Double], Ty::Double, true),
            m("random", &[], Ty::Double, true),
        ],
    ));

    let runnable = ClassInfo {
        internal: "java/lang/Runnable".to_owned(),
        is_interface: true,
        superclass: Some("java/lang/Object".to_owned()),
        interfaces: vec![],
        fields: vec![],
        methods: vec![m("run", &[], Ty::Void, false)],
    };
    env.add_class(runnable);

    env.add_class(class(
        "java/lang/Thread",
        Some("java/lang/Object"),
        &["java/lang/Runnable"],
        vec![],
        vec![
            m("<init>", &[], Ty::Void, false),
            m(
                "<init>",
                &[Ty::Object("java/lang/Runnable".into())],
                Ty::Void,
                false,
            ),
            m("run", &[], Ty::Void, false),
            m("start", &[], Ty::Void, false),
            m("join", &[], Ty::Void, false),
            m("interrupt", &[], Ty::Void, false),
            m("isAlive", &[], Ty::Boolean, false),
            m("sleep", &[Ty::Long], Ty::Void, true),
            m("yield", &[], Ty::Void, true),
            m("interrupted", &[], Ty::Boolean, true),
        ],
    ));

    let sb = Ty::Object("java/lang/StringBuilder".into());
    env.add_class(class(
        "java/lang/StringBuilder",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("<init>", &[], Ty::Void, false),
            m("append", &[s()], sb.clone(), false),
            m("append", &[Ty::Int], sb.clone(), false),
            m("append", &[Ty::Long], sb.clone(), false),
            m("append", &[Ty::Double], sb.clone(), false),
            m("append", &[Ty::Boolean], sb.clone(), false),
            m("append", &[Ty::Char], sb.clone(), false),
            m("append", &[obj()], sb.clone(), false),
            m("toString", &[], s(), false),
            m("length", &[], Ty::Int, false),
        ],
    ));

    env.add_class(class(
        "java/util/ArrayList",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("<init>", &[], Ty::Void, false),
            m("add", &[obj()], Ty::Boolean, false),
            m("get", &[Ty::Int], obj(), false),
            m("set", &[Ty::Int, obj()], obj(), false),
            m("remove", &[Ty::Int], obj(), false),
            m("clear", &[], Ty::Void, false),
            m("size", &[], Ty::Int, false),
            m("contains", &[obj()], Ty::Boolean, false),
        ],
    ));

    env.add_class(class(
        "java/util/HashMap",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("<init>", &[], Ty::Void, false),
            m("put", &[obj(), obj()], obj(), false),
            m("get", &[obj()], obj(), false),
            m("remove", &[obj()], obj(), false),
            m("containsKey", &[obj()], Ty::Boolean, false),
            m("size", &[], Ty::Int, false),
        ],
    ));

    env.add_class(class(
        "org/ijvm/VConnection",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m(
                "connect",
                &[],
                Ty::Object("org/ijvm/VConnection".into()),
                true,
            ),
            m("read", &[Ty::Int], Ty::Int, false),
            m("write", &[Ty::Int], Ty::Int, false),
            m("close", &[], Ty::Void, false),
        ],
    ));

    // The cross-unit service/message surface (ijvm_core::port): typed
    // calls between cluster units with deep-copied arguments.
    env.add_class(class(
        "ijvm/Service",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("export", &[s(), obj()], Ty::Void, true),
            m("call", &[s(), Ty::Int], Ty::Int, true),
            m("call", &[s(), obj()], obj(), true),
            m("callAt", &[Ty::Int, s(), Ty::Int], Ty::Int, true),
            m(
                "post",
                &[s(), Ty::Int],
                Ty::Object("ijvm/Future".into()),
                true,
            ),
            m(
                "post",
                &[s(), obj()],
                Ty::Object("ijvm/Future".into()),
                true,
            ),
            m(
                "postAt",
                &[Ty::Int, s(), Ty::Int],
                Ty::Object("ijvm/Future".into()),
                true,
            ),
            m("unit", &[], Ty::Int, true),
        ],
    ));
    // The pipelined half of the service surface: `Service.post` returns
    // one of these immediately; `get` parks until the reply routes back
    // by request id.
    env.add_class(class(
        "ijvm/Future",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("get", &[], Ty::Int, false),
            m("getObject", &[], obj(), false),
            m("isDone", &[], Ty::Boolean, false),
            m("cancel", &[], Ty::Boolean, false),
        ],
    ));
    env.add_class(class(
        "ijvm/Port",
        Some("java/lang/Object"),
        &[],
        vec![],
        vec![
            m("send", &[s(), Ty::Int], Ty::Void, true),
            m("send", &[s(), obj()], Ty::Void, true),
        ],
    ));

    env.add_class(class(
        "java/lang/Throwable",
        Some("java/lang/Object"),
        &[],
        vec![FieldSig {
            name: "message".to_owned(),
            ty: s(),
            is_static: false,
        }],
        vec![
            m("<init>", &[], Ty::Void, false),
            m("<init>", &[s()], Ty::Void, false),
            m("getMessage", &[], s(), false),
        ],
    ));

    for (name, sup) in ijvm_exception_hierarchy() {
        exception(env, name, sup);
    }

    // StoppedIsolateException carries the terminated isolate id.
    env.add_class(class(
        "org/ijvm/StoppedIsolateException",
        Some("java/lang/Error"),
        &[],
        vec![FieldSig {
            name: "isolateId".to_owned(),
            ty: Ty::Int,
            is_static: false,
        }],
        vec![
            m("<init>", &[], Ty::Void, false),
            m("getIsolateId", &[], Ty::Int, false),
        ],
    ));
}

/// The `(class, super)` pairs of the bootstrap exception hierarchy —
/// mirrors `ijvm_core::bootstrap::EXCEPTION_HIERARCHY`.
fn ijvm_exception_hierarchy() -> &'static [(&'static str, &'static str)] {
    &[
        ("java/lang/Exception", "java/lang/Throwable"),
        ("java/lang/RuntimeException", "java/lang/Exception"),
        ("java/lang/Error", "java/lang/Throwable"),
        (
            "java/lang/NullPointerException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/ArithmeticException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/ArrayIndexOutOfBoundsException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/NegativeArraySizeException",
            "java/lang/RuntimeException",
        ),
        ("java/lang/ClassCastException", "java/lang/RuntimeException"),
        (
            "java/lang/IllegalMonitorStateException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/IllegalArgumentException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/IllegalStateException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/UnsupportedOperationException",
            "java/lang/RuntimeException",
        ),
        ("java/lang/SecurityException", "java/lang/RuntimeException"),
        ("java/lang/InterruptedException", "java/lang/Exception"),
        ("java/io/IOException", "java/lang/Exception"),
        ("java/lang/OutOfMemoryError", "java/lang/Error"),
        ("java/lang/StackOverflowError", "java/lang/Error"),
        ("java/lang/VerifyError", "java/lang/Error"),
        ("java/lang/InternalError", "java/lang/Error"),
        ("java/lang/NoClassDefFoundError", "java/lang/Error"),
        ("java/lang/NoSuchFieldError", "java/lang/Error"),
        ("java/lang/NoSuchMethodError", "java/lang/Error"),
        ("java/lang/AbstractMethodError", "java/lang/Error"),
        ("java/lang/UnsatisfiedLinkError", "java/lang/Error"),
        ("java/lang/ExceptionInInitializerError", "java/lang/Error"),
        (
            "org/ijvm/ServiceRevokedException",
            "java/lang/RuntimeException",
        ),
    ]
}
