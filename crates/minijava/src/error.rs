//! Compiler diagnostics.

use std::fmt;

/// Result alias for compilation.
pub type Result<T> = std::result::Result<T, CompileError>;

/// A compile-time diagnostic with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which compiler phase rejected the program.
    pub phase: Phase,
    /// 1-based source line (0 when unknown).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// Compiler phases, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenizer.
    Lex,
    /// Parser.
    Parse,
    /// Type checking / name resolution.
    Check,
    /// Bytecode emission.
    Emit,
}

impl CompileError {
    /// Lexer error at `line`.
    pub fn lex(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            phase: Phase::Lex,
            line,
            message: message.into(),
        }
    }

    /// Parser error at `line`.
    pub fn parse(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            phase: Phase::Parse,
            line,
            message: message.into(),
        }
    }

    /// Semantic error at `line`.
    pub fn check(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            phase: Phase::Check,
            line,
            message: message.into(),
        }
    }

    /// Code-generation error at `line`.
    pub fn emit(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            phase: Phase::Emit,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Emit => "emit",
        };
        write!(f, "{phase} error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}
