//! The compilation environment: type signatures of every class a program
//! may reference — the built-in system library, previously compiled
//! units (so OSGi bundles can import each other's classes), and the unit
//! being compiled.

use crate::error::{CompileError, Result};
use std::collections::HashMap;
use std::fmt;

/// A semantic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// `int` (also the stack type of `short`/`byte`).
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `boolean`
    Boolean,
    /// `char`
    Char,
    /// `void`
    Void,
    /// The type of `null`.
    Null,
    /// A class/interface type by internal name.
    Object(String),
    /// An array type.
    Array(Box<Ty>),
}

impl Ty {
    /// Shorthand for `java/lang/String`.
    pub fn string() -> Ty {
        Ty::Object("java/lang/String".to_owned())
    }

    /// Shorthand for `java/lang/Object`.
    pub fn object() -> Ty {
        Ty::Object("java/lang/Object".to_owned())
    }

    /// `true` for int-like stack types (int, boolean, char).
    pub fn is_int_like(&self) -> bool {
        matches!(self, Ty::Int | Ty::Boolean | Ty::Char)
    }

    /// `true` for any numeric type.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::Int | Ty::Long | Ty::Float | Ty::Double | Ty::Char)
    }

    /// `true` for reference types (objects, arrays, null).
    pub fn is_reference(&self) -> bool {
        matches!(self, Ty::Object(_) | Ty::Array(_) | Ty::Null)
    }

    /// The field descriptor of this type.
    pub fn descriptor(&self) -> String {
        match self {
            Ty::Int => "I".to_owned(),
            Ty::Long => "J".to_owned(),
            Ty::Float => "F".to_owned(),
            Ty::Double => "D".to_owned(),
            Ty::Boolean => "Z".to_owned(),
            Ty::Char => "C".to_owned(),
            Ty::Void => "V".to_owned(),
            Ty::Null => "Ljava/lang/Object;".to_owned(),
            Ty::Object(name) => format!("L{name};"),
            Ty::Array(elem) => format!("[{}", elem.descriptor()),
        }
    }

    /// Parses a field descriptor into a `Ty`.
    pub fn from_descriptor(desc: &str) -> Result<Ty> {
        let mut chars = desc.chars();
        let t = Self::parse_one(&mut chars, desc)?;
        if chars.next().is_some() {
            return Err(CompileError::check(0, format!("bad descriptor {desc}")));
        }
        Ok(t)
    }

    fn parse_one(chars: &mut std::str::Chars<'_>, whole: &str) -> Result<Ty> {
        let bad = || CompileError::check(0, format!("bad descriptor {whole}"));
        Ok(match chars.next().ok_or_else(bad)? {
            'I' => Ty::Int,
            'J' => Ty::Long,
            'F' => Ty::Float,
            'D' => Ty::Double,
            'Z' => Ty::Boolean,
            'C' => Ty::Char,
            'V' => Ty::Void,
            'B' | 'S' => Ty::Int,
            'L' => {
                let name: String = chars.take_while(|c| *c != ';').collect();
                // `take_while` consumed the ';'.
                Ty::Object(name)
            }
            '[' => Ty::Array(Box::new(Self::parse_one(chars, whole)?)),
            _ => return Err(bad()),
        })
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Long => write!(f, "long"),
            Ty::Float => write!(f, "float"),
            Ty::Double => write!(f, "double"),
            Ty::Boolean => write!(f, "boolean"),
            Ty::Char => write!(f, "char"),
            Ty::Void => write!(f, "void"),
            Ty::Null => write!(f, "null"),
            Ty::Object(n) => write!(f, "{}", n.rsplit('/').next().unwrap_or(n)),
            Ty::Array(e) => write!(f, "{e}[]"),
        }
    }
}

/// A field signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSig {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// `static`?
    pub is_static: bool,
}

/// A method signature.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSig {
    /// Method name (`<init>` for constructors).
    pub name: String,
    /// Parameter types (excluding the receiver).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// `static`?
    pub is_static: bool,
}

impl MethodSig {
    /// The JVM method descriptor.
    pub fn descriptor(&self) -> String {
        let mut s = String::from("(");
        for p in &self.params {
            s.push_str(&p.descriptor());
        }
        s.push(')');
        s.push_str(&self.ret.descriptor());
        s
    }
}

/// Signature information for one class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassInfo {
    /// Internal name (`com/example/Foo`).
    pub internal: String,
    /// `true` for interfaces.
    pub is_interface: bool,
    /// Superclass internal name (`None` only for `java/lang/Object`).
    pub superclass: Option<String>,
    /// Implemented interface internal names.
    pub interfaces: Vec<String>,
    /// Declared fields.
    pub fields: Vec<FieldSig>,
    /// Declared methods and constructors.
    pub methods: Vec<MethodSig>,
}

/// The environment mapping names to signatures.
#[derive(Debug, Clone, Default)]
pub struct Env {
    classes: HashMap<String, ClassInfo>,
    by_simple: HashMap<String, String>,
}

impl Env {
    /// An empty environment (no builtins).
    pub fn empty() -> Env {
        Env::default()
    }

    /// The environment with all system-library builtins registered.
    pub fn with_builtins() -> Env {
        let mut env = Env::empty();
        crate::builtins::register(&mut env);
        env
    }

    /// Registers a class, indexing it by its simple name too. A later
    /// registration takes the simple-name slot from an earlier one, so
    /// user and imported classes shadow same-named builtins (a bundle
    /// may define its own `Service` without colliding with
    /// `ijvm/Service`); exact internal names always resolve regardless.
    pub fn add_class(&mut self, info: ClassInfo) {
        let simple = info
            .internal
            .rsplit('/')
            .next()
            .unwrap_or(&info.internal)
            .to_owned();
        self.by_simple.insert(simple, info.internal.clone());
        self.classes.insert(info.internal.clone(), info);
    }

    /// Registers signatures extracted from a compiled class file, so later
    /// compilation units can reference it (bundle imports).
    pub fn add_class_file(&mut self, cf: &ijvm_classfile::ClassFile) -> Result<()> {
        let to_check = |e: ijvm_classfile::ClassFileError| CompileError::check(0, e.to_string());
        let internal = cf.name().map_err(to_check)?.to_owned();
        let superclass = cf.super_name().map_err(to_check)?.map(str::to_owned);
        let interfaces = cf
            .interface_names()
            .map_err(to_check)?
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut fields = Vec::new();
        for f in &cf.fields {
            let name = cf.pool.utf8_at(f.name).map_err(to_check)?.to_owned();
            let desc = cf.pool.utf8_at(f.descriptor).map_err(to_check)?;
            fields.push(FieldSig {
                name,
                ty: Ty::from_descriptor(desc)?,
                is_static: f.access.is_static(),
            });
        }
        let mut methods = Vec::new();
        for m in &cf.methods {
            let name = cf.pool.utf8_at(m.name).map_err(to_check)?.to_owned();
            let desc = cf.pool.utf8_at(m.descriptor).map_err(to_check)?;
            let parsed = ijvm_classfile::MethodDescriptor::parse(desc).map_err(to_check)?;
            let params = parsed
                .params
                .iter()
                .map(|p| Ty::from_descriptor(&p.to_string()))
                .collect::<Result<Vec<_>>>()?;
            let ret = match &parsed.ret {
                None => Ty::Void,
                Some(t) => Ty::from_descriptor(&t.to_string())?,
            };
            methods.push(MethodSig {
                name,
                params,
                ret,
                is_static: m.access.is_static(),
            });
        }
        self.add_class(ClassInfo {
            internal,
            is_interface: cf.access.is_interface(),
            superclass,
            interfaces,
            fields,
            methods,
        });
        Ok(())
    }

    /// Looks up a class by internal name.
    pub fn class(&self, internal: &str) -> Option<&ClassInfo> {
        self.classes.get(internal)
    }

    /// Resolves a simple name (or already-internal name) to internal form.
    pub fn resolve(&self, name: &str) -> Option<&str> {
        if let Some((k, _)) = self.classes.get_key_value(name) {
            return Some(k.as_str());
        }
        self.by_simple.get(name).map(String::as_str)
    }

    /// Finds a field by name, walking up the superclass chain. Returns
    /// `(declaring class internal name, signature)`.
    pub fn lookup_field(&self, internal: &str, name: &str) -> Option<(&str, &FieldSig)> {
        let mut cur = Some(internal);
        while let Some(c) = cur {
            let info = self.classes.get(c)?;
            if let Some(f) = info.fields.iter().find(|f| f.name == name) {
                return Some((&info.internal, f));
            }
            cur = info.superclass.as_deref();
        }
        None
    }

    /// Finds methods by name (superclass chain + interfaces), returning
    /// `(declaring class, signature)` candidates in resolution order.
    pub fn lookup_methods<'a>(
        &'a self,
        internal: &str,
        name: &str,
    ) -> Vec<(&'a str, &'a MethodSig)> {
        let mut out = Vec::new();
        let mut seen_descs = Vec::new();
        let mut stack = vec![internal.to_owned()];
        while let Some(c) = stack.pop() {
            let Some(info) = self.classes.get(&c) else {
                continue;
            };
            for m in info.methods.iter().filter(|m| m.name == name) {
                let d = m.descriptor();
                if !seen_descs.contains(&d) {
                    seen_descs.push(d);
                    out.push((info.internal.as_str(), m));
                }
            }
            if let Some(s) = &info.superclass {
                stack.push(s.clone());
            }
            for i in &info.interfaces {
                stack.push(i.clone());
            }
        }
        out
    }

    /// `true` when `sub` is the same as or a subtype of `sup` (classes and
    /// interfaces, by name).
    pub fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "java/lang/Object" {
            return true;
        }
        let mut stack = vec![sub.to_owned()];
        while let Some(c) = stack.pop() {
            if c == sup {
                return true;
            }
            let Some(info) = self.classes.get(&c) else {
                continue;
            };
            if let Some(s) = &info.superclass {
                stack.push(s.clone());
            }
            for i in &info.interfaces {
                stack.push(i.clone());
            }
        }
        false
    }

    /// Assignability for argument passing and assignment:
    /// identity, numeric widening, null-to-reference, subtype.
    pub fn assignable(&self, from: &Ty, to: &Ty) -> bool {
        if from == to {
            return true;
        }
        match (from, to) {
            // char/boolean fit int-typed slots and vice versa is NOT ok.
            (Ty::Char, Ty::Int) => true,
            (Ty::Int, Ty::Long) | (Ty::Char, Ty::Long) => true,
            (Ty::Int, Ty::Float) | (Ty::Char, Ty::Float) | (Ty::Long, Ty::Float) => true,
            (Ty::Int, Ty::Double)
            | (Ty::Char, Ty::Double)
            | (Ty::Long, Ty::Double)
            | (Ty::Float, Ty::Double) => true,
            (Ty::Null, Ty::Object(_)) | (Ty::Null, Ty::Array(_)) => true,
            (Ty::Object(a), Ty::Object(b)) => self.is_subtype(a, b),
            (Ty::Array(_), Ty::Object(b)) => b == "java/lang/Object",
            (Ty::Array(a), Ty::Array(b)) => a == b || self.assignable_array_elem(a, b),
            _ => false,
        }
    }

    fn assignable_array_elem(&self, a: &Ty, b: &Ty) -> bool {
        match (a, b) {
            (Ty::Object(x), Ty::Object(y)) => self.is_subtype(x, y),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_round_trip() {
        for t in [
            Ty::Int,
            Ty::Long,
            Ty::Boolean,
            Ty::string(),
            Ty::Array(Box::new(Ty::Array(Box::new(Ty::Double)))),
        ] {
            assert_eq!(Ty::from_descriptor(&t.descriptor()).unwrap(), t);
        }
    }

    #[test]
    fn builtins_resolve_simple_names() {
        let env = Env::with_builtins();
        assert_eq!(env.resolve("String"), Some("java/lang/String"));
        assert_eq!(env.resolve("ArrayList"), Some("java/util/ArrayList"));
        assert_eq!(env.resolve("java/lang/String"), Some("java/lang/String"));
        assert_eq!(env.resolve("Nope"), None);
    }

    #[test]
    fn field_and_method_lookup_walk_supers() {
        let env = Env::with_builtins();
        // getMessage is declared on Throwable, visible from subclasses.
        let ms = env.lookup_methods("java/lang/RuntimeException", "getMessage");
        assert!(!ms.is_empty());
        assert_eq!(ms[0].0, "java/lang/Throwable");
    }

    #[test]
    fn subtype_and_assignability() {
        let env = Env::with_builtins();
        assert!(env.is_subtype("java/lang/NullPointerException", "java/lang/Exception"));
        assert!(!env.is_subtype("java/lang/Exception", "java/lang/NullPointerException"));
        assert!(env.assignable(&Ty::Int, &Ty::Double));
        assert!(!env.assignable(&Ty::Double, &Ty::Int));
        assert!(env.assignable(&Ty::Null, &Ty::string()));
        assert!(env.assignable(
            &Ty::Object("java/lang/Thread".into()),
            &Ty::Object("java/lang/Runnable".into())
        ));
    }
}
