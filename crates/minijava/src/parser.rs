//! Recursive-descent parser for the mini-Java language.

use crate::ast::*;
use crate::error::{CompileError, Result};
use crate::lexer::{lex, Tok, Token};

/// Parses a compilation unit.
pub fn parse(source: &str) -> Result<Unit> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut classes = Vec::new();
    while !p.at_eof() {
        classes.push(p.class_decl()?);
    }
    Ok(Unit { classes })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(CompileError::parse(
                self.line(),
                format!("expected `{p}`, found `{}`", self.peek()),
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CompileError::parse(
                self.line(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // ---- declarations ------------------------------------------------

    fn class_decl(&mut self) -> Result<ClassDecl> {
        let line = self.line();
        // Ignore leading `public`/`final`/`abstract` modifiers.
        while self.eat_kw("public") || self.eat_kw("final") || self.eat_kw("abstract") {}
        let is_interface = if self.eat_kw("interface") {
            true
        } else if self.eat_kw("class") {
            false
        } else {
            return Err(CompileError::parse(
                line,
                format!("expected `class` or `interface`, found `{}`", self.peek()),
            ));
        };
        let name = self.expect_ident()?;
        let mut superclass = None;
        let mut interfaces = Vec::new();
        if self.eat_kw("extends") {
            superclass = Some(self.expect_ident()?);
        }
        if self.eat_kw("implements") {
            loop {
                interfaces.push(self.expect_ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat_punct("}") {
            self.member(&name, is_interface, &mut fields, &mut methods)?;
        }
        Ok(ClassDecl {
            name,
            is_interface,
            superclass,
            interfaces,
            fields,
            methods,
            line,
        })
    }

    fn member(
        &mut self,
        class_name: &str,
        in_interface: bool,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> Result<()> {
        let line = self.line();
        let mut is_static = false;
        let mut is_synchronized = false;
        loop {
            if self.eat_kw("public")
                || self.eat_kw("private")
                || self.eat_kw("protected")
                || self.eat_kw("final")
            {
                continue;
            }
            if self.eat_kw("static") {
                is_static = true;
                continue;
            }
            if self.eat_kw("synchronized") {
                is_synchronized = true;
                continue;
            }
            break;
        }
        // Constructor: `Name(`
        if let Tok::Ident(id) = self.peek() {
            if id == class_name && matches!(self.peek2(), Tok::Punct("(")) {
                self.bump();
                let params = self.params()?;
                let body = self.block_stmts()?;
                methods.push(MethodDecl {
                    name: "<init>".to_owned(),
                    is_ctor: true,
                    ret: TypeName::Void,
                    params,
                    is_static: false,
                    is_synchronized,
                    body: Some(body),
                    line,
                });
                return Ok(());
            }
        }
        let ty = self.type_name()?;
        let name = self.expect_ident()?;
        if matches!(self.peek(), Tok::Punct("(")) {
            let params = self.params()?;
            let body = if in_interface {
                self.expect_punct(";")?;
                None
            } else {
                Some(self.block_stmts()?)
            };
            methods.push(MethodDecl {
                name,
                is_ctor: false,
                ret: ty,
                params,
                is_static,
                is_synchronized,
                body,
                line,
            });
        } else {
            // Field (possibly several, comma-separated).
            let mut fname = name;
            loop {
                let init = if self.eat_punct("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                fields.push(FieldDecl {
                    name: fname.clone(),
                    ty: ty.clone(),
                    is_static,
                    init,
                    line,
                });
                if self.eat_punct(",") {
                    fname = self.expect_ident()?;
                    continue;
                }
                break;
            }
            self.expect_punct(";")?;
        }
        Ok(())
    }

    fn params(&mut self) -> Result<Vec<(String, TypeName)>> {
        self.expect_punct("(")?;
        let mut out = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let ty = self.type_name()?;
                let name = self.expect_ident()?;
                out.push((name, ty));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(out)
    }

    fn type_name(&mut self) -> Result<TypeName> {
        let base = match self.bump() {
            Tok::Ident(s) => match s.as_str() {
                "int" => TypeName::Int,
                "long" => TypeName::Long,
                "float" => TypeName::Float,
                "double" => TypeName::Double,
                "boolean" => TypeName::Boolean,
                "char" => TypeName::Char,
                "void" => TypeName::Void,
                _ => TypeName::Named(s),
            },
            other => {
                return Err(CompileError::parse(
                    self.line(),
                    format!("expected type, found `{other}`"),
                ));
            }
        };
        let mut ty = base;
        while matches!(self.peek(), Tok::Punct("[")) && matches!(self.peek2(), Tok::Punct("]")) {
            self.bump();
            self.bump();
            ty = TypeName::Array(Box::new(ty));
        }
        Ok(ty)
    }

    // ---- statements ----------------------------------------------------

    fn block_stmts(&mut self) -> Result<Vec<Stmt>> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        if matches!(self.peek(), Tok::Punct("{")) {
            return Ok(Stmt::Block(self.block_stmts()?));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let otherwise = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then,
                otherwise,
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = self.simple_stmt()?;
                self.expect_punct(";")?;
                Some(Box::new(s))
            };
            let cond = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let update = if matches!(self.peek(), Tok::Punct(")")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::For {
                init,
                cond,
                update,
                body,
            });
        }
        if self.eat_kw("return") {
            let value = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value, line));
        }
        if self.eat_kw("throw") {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Throw(e, line));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(line));
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(line));
        }
        if self.eat_kw("try") {
            let body = self.block_stmts()?;
            let mut catches = Vec::new();
            while self.is_kw("catch") {
                let cline = self.line();
                self.bump();
                self.expect_punct("(")?;
                let ty = self.expect_ident()?;
                let name = self.expect_ident()?;
                self.expect_punct(")")?;
                let cbody = self.block_stmts()?;
                catches.push(CatchClause {
                    ty,
                    name,
                    body: cbody,
                    line: cline,
                });
            }
            if catches.is_empty() {
                return Err(CompileError::parse(
                    line,
                    "try without catch (finally is unsupported)",
                ));
            }
            return Ok(Stmt::Try { body, catches });
        }
        if self.eat_kw("synchronized") {
            self.expect_punct("(")?;
            let lock = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_stmts()?;
            return Ok(Stmt::Synchronized { lock, body, line });
        }
        let s = self.simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// A declaration or expression statement (no trailing `;`), as used in
    /// `for` initializers and plain statements.
    fn simple_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        if self.looks_like_decl() {
            let ty = self.type_name()?;
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::VarDecl {
                ty,
                name,
                init,
                line,
            });
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    /// Lookahead: `Type ident` (where Type is a primitive, or an
    /// identifier followed by `ident` or `[] ident`).
    fn looks_like_decl(&self) -> bool {
        let prim = matches!(
            self.peek(),
            Tok::Ident(s) if matches!(s.as_str(), "int" | "long" | "float" | "double" | "boolean" | "char")
        );
        if prim {
            return true;
        }
        let Tok::Ident(first) = self.peek() else {
            return false;
        };
        if is_keyword(first) {
            return false;
        }
        // `Foo x` or `Foo[] x` or `Foo[][] x`…
        let mut i = self.pos + 1;
        while matches!(self.tokens[i].kind, Tok::Punct("["))
            && matches!(self.tokens[i + 1].kind, Tok::Punct("]"))
        {
            i += 2;
        }
        matches!(&self.tokens[i].kind, Tok::Ident(s) if !is_keyword(s))
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr> {
        let lhs = self.logical_or()?;
        let line = self.line();
        let op = if self.eat_punct("=") {
            None
        } else if self.eat_punct("+=") {
            Some(BinOp::Add)
        } else if self.eat_punct("-=") {
            Some(BinOp::Sub)
        } else if self.eat_punct("*=") {
            Some(BinOp::Mul)
        } else if self.eat_punct("/=") {
            Some(BinOp::Div)
        } else if self.eat_punct("%=") {
            Some(BinOp::Rem)
        } else if self.eat_punct("&=") {
            Some(BinOp::And)
        } else if self.eat_punct("|=") {
            Some(BinOp::Or)
        } else if self.eat_punct("^=") {
            Some(BinOp::Xor)
        } else if self.eat_punct("<<=") {
            Some(BinOp::Shl)
        } else if self.eat_punct(">>=") {
            Some(BinOp::Shr)
        } else if self.eat_punct(">>>=") {
            Some(BinOp::Ushr)
        } else {
            return Ok(lhs);
        };
        let value = self.assignment()?;
        Ok(Expr::Assign {
            target: Box::new(lhs),
            op,
            value: Box::new(value),
            line,
        })
    }

    fn logical_or(&mut self) -> Result<Expr> {
        let mut lhs = self.logical_and()?;
        loop {
            let line = self.line();
            if self.eat_punct("||") {
                let rhs = self.logical_and()?;
                lhs = Expr::Bin {
                    op: BinOp::LOr,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn logical_and(&mut self) -> Result<Expr> {
        let mut lhs = self.bitor()?;
        loop {
            let line = self.line();
            if self.eat_punct("&&") {
                let rhs = self.bitor()?;
                lhs = Expr::Bin {
                    op: BinOp::LAnd,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bitor(&mut self) -> Result<Expr> {
        let mut lhs = self.bitxor()?;
        loop {
            let line = self.line();
            if self.eat_punct("|") {
                let rhs = self.bitxor()?;
                lhs = Expr::Bin {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bitxor(&mut self) -> Result<Expr> {
        let mut lhs = self.bitand()?;
        loop {
            let line = self.line();
            if self.eat_punct("^") {
                let rhs = self.bitand()?;
                lhs = Expr::Bin {
                    op: BinOp::Xor,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bitand(&mut self) -> Result<Expr> {
        let mut lhs = self.equality()?;
        loop {
            let line = self.line();
            if self.eat_punct("&") {
                let rhs = self.equality()?;
                lhs = Expr::Bin {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn equality(&mut self) -> Result<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("==") {
                BinOp::Eq
            } else if self.eat_punct("!=") {
                BinOp::Ne
            } else {
                return Ok(lhs);
            };
            let rhs = self.relational()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn relational(&mut self) -> Result<Expr> {
        let mut lhs = self.shift()?;
        loop {
            let line = self.line();
            if self.is_kw("instanceof") {
                self.bump();
                let ty = self.expect_ident()?;
                lhs = Expr::InstanceOf {
                    expr: Box::new(lhs),
                    ty,
                    line,
                };
                continue;
            }
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.shift()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn shift(&mut self) -> Result<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("<<") {
                BinOp::Shl
            } else if self.eat_punct(">>>") {
                BinOp::Ushr
            } else if self.eat_punct(">>") {
                BinOp::Shr
            } else {
                return Ok(lhs);
            };
            let rhs = self.additive()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let line = self.line();
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        let line = self.line();
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary()?), line));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?), line));
        }
        if self.eat_punct("++") {
            let t = self.unary()?;
            return Ok(Expr::Incr {
                target: Box::new(t),
                delta: 1,
                line,
            });
        }
        if self.eat_punct("--") {
            let t = self.unary()?;
            return Ok(Expr::Incr {
                target: Box::new(t),
                delta: -1,
                line,
            });
        }
        // Cast: `(` Type `)` unary — only when the parenthesized tokens
        // form a type and the next token starts an expression.
        if matches!(self.peek(), Tok::Punct("(")) {
            if let Some(saved) = self.try_cast()? {
                return Ok(saved);
            }
        }
        self.postfix()
    }

    fn try_cast(&mut self) -> Result<Option<Expr>> {
        let line = self.line();
        let save = self.pos;
        self.bump(); // (
        let is_type = match self.peek() {
            Tok::Ident(s) => {
                matches!(
                    s.as_str(),
                    "int" | "long" | "float" | "double" | "boolean" | "char"
                ) || (!is_keyword(s) && s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
            }
            _ => false,
        };
        if !is_type {
            self.pos = save;
            return Ok(None);
        }
        let ty = self.type_name()?;
        if !self.eat_punct(")") {
            self.pos = save;
            return Ok(None);
        }
        // Must be followed by something that starts a unary expression and
        // is unambiguous — identifiers, literals, `(`, `this`, `new`, `!`.
        let casts = matches!(
            self.peek(),
            Tok::Ident(_)
                | Tok::Int(_)
                | Tok::Long(_)
                | Tok::Float(_)
                | Tok::Double(_)
                | Tok::Char(_)
                | Tok::Str(_)
                | Tok::Punct("(")
        );
        if !casts {
            self.pos = save;
            return Ok(None);
        }
        let expr = self.unary()?;
        Ok(Some(Expr::Cast {
            ty,
            expr: Box::new(expr),
            line,
        }))
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat_punct(".") {
                let name = self.expect_ident()?;
                if matches!(self.peek(), Tok::Punct("(")) {
                    let args = self.call_args()?;
                    e = Expr::Call {
                        target: Some(Box::new(e)),
                        method: name,
                        args,
                        line,
                    };
                } else {
                    e = Expr::Field {
                        target: Box::new(e),
                        name,
                        line,
                    };
                }
                continue;
            }
            if matches!(self.peek(), Tok::Punct("[")) && !matches!(self.peek2(), Tok::Punct("]")) {
                self.bump();
                let index = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    array: Box::new(e),
                    index: Box::new(index),
                    line,
                };
                continue;
            }
            if self.eat_punct("++") {
                e = Expr::Incr {
                    target: Box::new(e),
                    delta: 1,
                    line,
                };
                continue;
            }
            if self.eat_punct("--") {
                e = Expr::Incr {
                    target: Box::new(e),
                    delta: -1,
                    line,
                };
                continue;
            }
            return Ok(e);
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v, line)),
            Tok::Long(v) => Ok(Expr::Long(v, line)),
            Tok::Float(v) => Ok(Expr::Float(v, line)),
            Tok::Double(v) => Ok(Expr::Double(v, line)),
            Tok::Char(v) => Ok(Expr::Char(v, line)),
            Tok::Str(s) => Ok(Expr::Str(s, line)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => Ok(Expr::Bool(true, line)),
                "false" => Ok(Expr::Bool(false, line)),
                "null" => Ok(Expr::Null(line)),
                "this" => Ok(Expr::This(line)),
                "new" => {
                    let base = self.type_name()?;
                    if matches!(self.peek(), Tok::Punct("[")) {
                        self.bump();
                        let len = self.expr()?;
                        self.expect_punct("]")?;
                        let mut elem = base;
                        // `new T[n][]` — extra dims make the element an array.
                        while self.eat_punct("[") {
                            self.expect_punct("]")?;
                            elem = TypeName::Array(Box::new(elem));
                        }
                        Ok(Expr::NewArray {
                            elem,
                            len: Box::new(len),
                            line,
                        })
                    } else {
                        let TypeName::Named(class) = base else {
                            return Err(CompileError::parse(line, "cannot `new` a primitive"));
                        };
                        let args = self.call_args()?;
                        Ok(Expr::New { class, args, line })
                    }
                }
                _ => {
                    if matches!(self.peek(), Tok::Punct("(")) {
                        let args = self.call_args()?;
                        Ok(Expr::Call {
                            target: None,
                            method: id,
                            args,
                            line,
                        })
                    } else {
                        Ok(Expr::Name(id, line))
                    }
                }
            },
            other => Err(CompileError::parse(
                line,
                format!("unexpected token `{other}`"),
            )),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "class"
            | "interface"
            | "extends"
            | "implements"
            | "static"
            | "synchronized"
            | "public"
            | "private"
            | "protected"
            | "final"
            | "abstract"
            | "if"
            | "else"
            | "while"
            | "for"
            | "return"
            | "throw"
            | "try"
            | "catch"
            | "break"
            | "continue"
            | "new"
            | "this"
            | "true"
            | "false"
            | "null"
            | "instanceof"
            | "int"
            | "long"
            | "float"
            | "double"
            | "boolean"
            | "char"
            | "void"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_class_with_members() {
        let unit = parse(
            r#"
            class Counter {
                static int total = 0;
                int value;
                Counter(int v) { this.value = v; }
                int get() { return value; }
                static void bump() { total = total + 1; }
            }
            "#,
        )
        .unwrap();
        assert_eq!(unit.classes.len(), 1);
        let c = &unit.classes[0];
        assert_eq!(c.name, "Counter");
        assert_eq!(c.fields.len(), 2);
        assert_eq!(c.methods.len(), 3);
        assert!(c.methods[0].is_ctor);
    }

    #[test]
    fn parse_interface() {
        let unit = parse("interface Shape { void draw(int x, int y); }").unwrap();
        let c = &unit.classes[0];
        assert!(c.is_interface);
        assert!(c.methods[0].body.is_none());
    }

    #[test]
    fn parse_control_flow() {
        let unit = parse(
            r#"
            class C {
                static int f(int n) {
                    int s = 0;
                    for (int i = 0; i < n; i++) { s += i; }
                    while (s > 100) { s = s - 1; }
                    if (s == 0) return -1; else return s;
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(unit.classes[0].methods.len(), 1);
    }

    #[test]
    fn parse_try_catch_and_sync() {
        parse(
            r#"
            class C {
                void f(Object o) {
                    try { g(); } catch (Exception e) { throw e; }
                    synchronized (o) { g(); }
                }
                void g() {}
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn parse_casts_and_instanceof() {
        let unit = parse(
            r#"
            class C {
                static int f(Object o) {
                    if (o instanceof String) { String s = (String) o; return s.length(); }
                    double d = 3.5;
                    return (int) d;
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(unit.classes[0].methods.len(), 1);
    }

    #[test]
    fn parenthesized_expression_is_not_a_cast() {
        // `(a) + b` where a is lowercase: treated as parens, not a cast.
        parse("class C { static int f(int a, int b) { return (a) + b; } }").unwrap();
    }

    #[test]
    fn parse_new_arrays() {
        parse(
            r#"
            class C {
                static int[] make(int n) { return new int[n]; }
                static String[] names() { return new String[3]; }
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn errors_have_lines() {
        let err = parse("class C {\n  int f( { }\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
