//! Abstract syntax tree for the mini-Java language.

/// A source type as written (`int`, `Foo`, `String[]`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeName {
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `boolean`
    Boolean,
    /// `char`
    Char,
    /// `void` (return position only)
    Void,
    /// A class or interface by simple or qualified name.
    Named(String),
    /// `T[]`
    Array(Box<TypeName>),
}

/// One compilation unit: a list of class/interface declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// Declarations in source order.
    pub classes: Vec<ClassDecl>,
}

/// A class or interface declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Simple name.
    pub name: String,
    /// `true` for interfaces.
    pub is_interface: bool,
    /// Superclass simple name (defaults to `Object`).
    pub superclass: Option<String>,
    /// Implemented interfaces.
    pub interfaces: Vec<String>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Methods and constructors.
    pub methods: Vec<MethodDecl>,
    /// Declaration line.
    pub line: u32,
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// `static`?
    pub is_static: bool,
    /// Optional initializer (emitted into `<clinit>` or constructors).
    pub init: Option<Expr>,
    /// Declaration line.
    pub line: u32,
}

/// A method or constructor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Method name; constructors use the class name and `is_ctor`.
    pub name: String,
    /// `true` for constructors.
    pub is_ctor: bool,
    /// Return type (`Void` for constructors).
    pub ret: TypeName,
    /// Parameters as `(name, type)`.
    pub params: Vec<(String, TypeName)>,
    /// `static`?
    pub is_static: bool,
    /// `synchronized`?
    pub is_synchronized: bool,
    /// Body; `None` for interface methods.
    pub body: Option<Vec<Stmt>>,
    /// Declaration line.
    pub line: u32,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `Type name = expr;` (initializer optional)
    VarDecl {
        /// Declared type.
        ty: TypeName,
        /// Variable name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then else?`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Else branch.
        otherwise: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `for (init; cond; update) body`
    For {
        /// Initializer.
        init: Option<Box<Stmt>>,
        /// Condition (empty = true).
        cond: Option<Expr>,
        /// Update expression.
        update: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>, u32),
    /// `throw expr;`
    Throw(Expr, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// `try { } catch (T e) { } ...`
    Try {
        /// Protected body.
        body: Vec<Stmt>,
        /// Catch clauses.
        catches: Vec<CatchClause>,
    },
    /// `synchronized (expr) { ... }`
    Synchronized {
        /// Lock expression.
        lock: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
}

/// One `catch` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// Caught exception type (simple name).
    pub ty: String,
    /// Binding name.
    pub name: String,
    /// Handler body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    Ushr,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

/// An expression; every variant carries its source line.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i32, u32),
    /// Long literal.
    Long(i64, u32),
    /// Float literal.
    Float(f32, u32),
    /// Double literal.
    Double(f64, u32),
    /// Char literal.
    Char(u16, u32),
    /// `true`/`false`.
    Bool(bool, u32),
    /// String literal.
    Str(String, u32),
    /// `null`.
    Null(u32),
    /// `this`.
    This(u32),
    /// A bare name: local, parameter, field of `this`, static field of the
    /// current class, or a class name (when qualified further).
    Name(String, u32),
    /// `expr.field` or `ClassName.field`.
    Field {
        /// Receiver (None when the base was resolved as a class name).
        target: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `expr[i]`
    Index {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Method call. `target: None` means unqualified (current class /
    /// `this`); a `Name` target may resolve to a class (static call).
    Call {
        /// Receiver expression.
        target: Option<Box<Expr>>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `new T(args)`
    New {
        /// Class simple name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `new T[len]` (possibly with extra `[]` dims on the element type).
    NewArray {
        /// Element type.
        elem: TypeName,
        /// Length expression.
        len: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `!expr`
    Not(Box<Expr>, u32),
    /// `-expr`
    Neg(Box<Expr>, u32),
    /// `(Type) expr`
    Cast {
        /// Target type.
        ty: TypeName,
        /// Operand.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `expr instanceof Type`
    InstanceOf {
        /// Operand.
        expr: Box<Expr>,
        /// Tested type name.
        ty: String,
        /// Source line.
        line: u32,
    },
    /// `lvalue = expr` (or compound `op=`).
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Compound operator, `None` for plain `=`.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `x++` / `x--` (statement position only).
    Incr {
        /// Target lvalue.
        target: Box<Expr>,
        /// +1 or -1.
        delta: i32,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// Source line of this expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int(_, l)
            | Expr::Long(_, l)
            | Expr::Float(_, l)
            | Expr::Double(_, l)
            | Expr::Char(_, l)
            | Expr::Bool(_, l)
            | Expr::Str(_, l)
            | Expr::Null(l)
            | Expr::This(l)
            | Expr::Name(_, l)
            | Expr::Not(_, l)
            | Expr::Neg(_, l) => *l,
            Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Call { line, .. }
            | Expr::New { line, .. }
            | Expr::NewArray { line, .. }
            | Expr::Bin { line, .. }
            | Expr::Cast { line, .. }
            | Expr::InstanceOf { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Incr { line, .. } => *line,
        }
    }
}
