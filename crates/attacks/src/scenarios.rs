//! The eight attack scenarios of §4.3, each staged on a real framework
//! with a victim bundle and a malicious bundle.

use crate::{AttackId, AttackReport};
use ijvm_core::ids::{ClassId, IsolateId, MethodRef, ThreadId};
use ijvm_core::value::Value;
use ijvm_core::vm::{IsolationMode, Vm, VmOptions};
use ijvm_osgi::{BundleDescriptor, BundleId, Framework};

/// VM options for attack runs: a small heap and thread limit so the
/// resource attacks bite quickly.
fn attack_options(mode: IsolationMode) -> VmOptions {
    let mut o = match mode {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    };
    o.heap_limit_bytes = 4 << 20;
    o.gc_threshold_bytes = 1 << 20;
    o.max_threads = 64;
    o
}

fn framework(mode: IsolationMode) -> Framework {
    Framework::new(attack_options(mode))
}

fn install(
    fw: &mut Framework,
    name: &str,
    pkg: &str,
    src: &str,
    imports: Vec<BundleId>,
) -> BundleId {
    let imported: Vec<(String, Vec<u8>)> = imports
        .iter()
        .flat_map(|id| fw.bundle(*id).expect("import exists").classes.clone())
        .collect();
    let desc = BundleDescriptor::from_source(name, pkg, src, None, imports, &imported)
        .unwrap_or_else(|e| panic!("bundle {name} failed to compile: {e}"));
    fw.install_bundle(desc).expect("bundle install")
}

fn class_of(fw: &mut Framework, bundle: BundleId, internal: &str) -> ClassId {
    let loader = fw.bundle(bundle).expect("bundle exists").loader;
    fw.vm_mut()
        .load_class(loader, internal)
        .expect("class loads")
}

/// Outcome of a budgeted method call.
#[derive(Debug, PartialEq)]
enum CallResult {
    /// Completed normally with the return value.
    Done(Option<Value>),
    /// Died with an uncaught exception of the given class.
    Threw(String),
    /// Still running or blocked when the budget ran out.
    Stuck(ThreadId),
}

fn call_budgeted(
    vm: &mut Vm,
    class: ClassId,
    name: &str,
    desc: &str,
    args: Vec<Value>,
    creator: IsolateId,
    budget: u64,
) -> CallResult {
    let index = vm
        .class(class)
        .find_method(name, desc)
        .unwrap_or_else(|| panic!("method {name}{desc} missing"));
    let tid = vm
        .spawn_thread(name, MethodRef { class, index }, args, creator)
        .expect("spawn");
    let _ = vm.run(Some(budget));
    inspect(vm, tid)
}

fn inspect(vm: &Vm, tid: ThreadId) -> CallResult {
    let t = vm.thread(tid).expect("thread exists");
    if !t.is_terminated() {
        return CallResult::Stuck(tid);
    }
    match t.uncaught {
        Some(ex) => {
            let name = vm.class(vm.heap().get(ex).class).name.to_string();
            CallResult::Threw(name)
        }
        None => CallResult::Done(t.result),
    }
}

/// Spawns a method on a fresh thread without driving the VM.
fn spawn(
    vm: &mut Vm,
    class: ClassId,
    name: &str,
    desc: &str,
    args: Vec<Value>,
    creator: IsolateId,
) -> ThreadId {
    let index = vm
        .class(class)
        .find_method(name, desc)
        .unwrap_or_else(|| panic!("method {name}{desc} missing"));
    vm.spawn_thread(name, MethodRef { class, index }, args, creator)
        .expect("spawn")
}

/// The non-privileged isolate with the largest value of `metric`.
fn worst_isolate(
    fw: &Framework,
    metric: impl Fn(&ijvm_core::accounting::ResourceStats) -> u64,
) -> Option<IsolateId> {
    fw.snapshots()
        .into_iter()
        .filter(|s| !s.isolate.is_privileged())
        .max_by_key(|s| metric(&s.stats))
        .map(|s| s.isolate)
}

fn report(id: AttackId, mode: IsolationMode, compromised: bool, detail: String) -> AttackReport {
    AttackReport {
        id,
        mode,
        compromised,
        detail,
    }
}

// ---------------------------------------------------------------------
// A1 — store mutable object in static variable
// ---------------------------------------------------------------------

/// Bundle A works on a static array; bundle B finds the static variable
/// and nulls its contents. Sun JVM: A throws `NullPointerException`.
/// I-JVM: the static (and thus the array created by `<clinit>`) is
/// per-isolate, so B corrupts only its own copy.
pub fn a1_static_variable(mode: IsolationMode) -> AttackReport {
    let mut fw = framework(mode);
    let victim = install(
        &mut fw,
        "victim",
        "vic",
        r#"
        class Data {
            static String[] items = makeItems();
            static String[] makeItems() {
                String[] xs = new String[4];
                for (int i = 0; i < 4; i++) xs[i] = "item" + i;
                return xs;
            }
            static int sum() {
                int s = 0;
                for (int i = 0; i < Data.items.length; i++) s += Data.items[i].length();
                return s;
            }
        }
        "#,
        vec![],
    );
    let attacker = install(
        &mut fw,
        "malicious",
        "mal",
        r#"
        class Attack {
            static void corrupt() {
                String[] xs = Data.items;
                for (int i = 0; i < xs.length; i++) xs[i] = null;
            }
        }
        "#,
        vec![victim],
    );
    let (viso, aiso) = (
        fw.bundle(victim).unwrap().isolate,
        fw.bundle(attacker).unwrap().isolate,
    );
    let data = class_of(&mut fw, victim, "vic/Data");
    let attack = class_of(&mut fw, attacker, "mal/Attack");
    let vm = fw.vm_mut();

    let before = call_budgeted(vm, data, "sum", "()I", vec![], viso, 1_000_000);
    assert_eq!(
        before,
        CallResult::Done(Some(Value::Int(20))),
        "victim healthy at start"
    );
    let _ = call_budgeted(vm, attack, "corrupt", "()V", vec![], aiso, 1_000_000);
    let after = call_budgeted(vm, data, "sum", "()I", vec![], viso, 1_000_000);

    match after {
        CallResult::Done(Some(Value::Int(20))) => report(
            AttackId::A1StaticVariable,
            mode,
            false,
            "victim's static array unchanged: per-isolate statics contained the write".into(),
        ),
        CallResult::Threw(class) => report(
            AttackId::A1StaticVariable,
            mode,
            true,
            format!("victim crashed with {class}: shared static array was corrupted"),
        ),
        other => report(
            AttackId::A1StaticVariable,
            mode,
            true,
            format!("unexpected: {other:?}"),
        ),
    }
}

// ---------------------------------------------------------------------
// A2 — synchronized method / synchronized call block
// ---------------------------------------------------------------------

/// Bundle A's library has a `static synchronized` method (locking the
/// `java.lang.Class` object). Bundle B grabs that `Class` object and
/// holds its monitor forever. Sun JVM: A blocks. I-JVM: each isolate has
/// its own `Class` object, so there is nothing shared to lock.
pub fn a2_synchronized_lock(mode: IsolationMode) -> AttackReport {
    let mut fw = framework(mode);
    let victim = install(
        &mut fw,
        "victim",
        "vic",
        r#"
        class Lib {
            static synchronized int compute() { return 42; }
        }
        "#,
        vec![],
    );
    let attacker = install(
        &mut fw,
        "malicious",
        "mal",
        r#"
        class Attack {
            static void grab() {
                Lib probe = new Lib();
                Object k = probe.getClass();
                synchronized (k) {
                    while (true) { Thread.sleep(1000); }
                }
            }
        }
        "#,
        vec![victim],
    );
    let (viso, aiso) = (
        fw.bundle(victim).unwrap().isolate,
        fw.bundle(attacker).unwrap().isolate,
    );
    let lib = class_of(&mut fw, victim, "vic/Lib");
    let attack = class_of(&mut fw, attacker, "mal/Attack");
    let vm = fw.vm_mut();

    // Attacker takes the lock and parks inside the monitor.
    let _grabber = spawn(vm, attack, "grab", "()V", vec![], aiso);
    let _ = vm.run(Some(500_000));

    // Victim calls its own synchronized static method.
    let outcome = call_budgeted(vm, lib, "compute", "()I", vec![], viso, 2_000_000);
    match outcome {
        CallResult::Done(Some(Value::Int(42))) => report(
            AttackId::A2SynchronizedLock,
            mode,
            false,
            "victim's synchronized method ran: per-isolate Class objects prevent the lock".into(),
        ),
        CallResult::Stuck(_) => report(
            AttackId::A2SynchronizedLock,
            mode,
            true,
            "victim blocked forever on its own Class monitor held by the attacker".into(),
        ),
        other => report(
            AttackId::A2SynchronizedLock,
            mode,
            true,
            format!("unexpected: {other:?}"),
        ),
    }
}

// ---------------------------------------------------------------------
// A3 — memory exhaustion
// ---------------------------------------------------------------------

/// The attacker allocates and retains objects until the heap is full.
/// Sun JVM: every bundle gets `OutOfMemoryError`. I-JVM: per-isolate
/// memory accounting lets the administrator identify and kill the
/// offender; the GC then reclaims its hoard and other bundles recover.
pub fn a3_memory_exhaustion(mode: IsolationMode) -> AttackReport {
    let mut fw = framework(mode);
    let victim = install(
        &mut fw,
        "victim",
        "vic",
        r#"
        class Work {
            static int alloc() {
                int[] buf = new int[16384];
                return buf.length;
            }
        }
        "#,
        vec![],
    );
    let attacker = install(
        &mut fw,
        "malicious",
        "mal",
        r#"
        class Attack {
            static ArrayList hoard = new ArrayList();
            static void exhaust() {
                try {
                    while (true) hoard.add(new int[8192]);
                } catch (OutOfMemoryError e) { }
            }
        }
        "#,
        vec![],
    );
    let (viso, aiso) = (
        fw.bundle(victim).unwrap().isolate,
        fw.bundle(attacker).unwrap().isolate,
    );
    let work = class_of(&mut fw, victim, "vic/Work");
    let attack = class_of(&mut fw, attacker, "mal/Attack");

    let healthy = call_budgeted(fw.vm_mut(), work, "alloc", "()I", vec![], viso, 1_000_000);
    assert_eq!(healthy, CallResult::Done(Some(Value::Int(16384))));

    let _ = call_budgeted(
        fw.vm_mut(),
        attack,
        "exhaust",
        "()V",
        vec![],
        aiso,
        20_000_000,
    );

    if mode == IsolationMode::Isolated {
        // The administrator reads per-isolate live memory and kills the
        // worst offender.
        fw.vm_mut().collect_garbage(None);
        let offender = worst_isolate(&fw, |s| s.live_bytes).expect("accounting identifies someone");
        if offender != aiso {
            return report(
                AttackId::A3MemoryExhaustion,
                mode,
                true,
                format!("accounting blamed {offender}, not the attacker {aiso}"),
            );
        }
        fw.vm_mut()
            .terminate_isolate(offender)
            .expect("termination supported");
    } else {
        // No accounting, no termination: the administrator is blind.
        let unsupported = fw.vm_mut().terminate_isolate(aiso).is_err();
        assert!(
            unsupported,
            "Shared baseline must not support isolate termination"
        );
    }

    let after = call_budgeted(fw.vm_mut(), work, "alloc", "()I", vec![], viso, 1_000_000);
    match after {
        CallResult::Done(Some(Value::Int(16384))) => report(
            AttackId::A3MemoryExhaustion,
            mode,
            false,
            "admin killed the hoarding bundle; victim allocates again".into(),
        ),
        CallResult::Threw(class) => report(
            AttackId::A3MemoryExhaustion,
            mode,
            true,
            format!("victim got {class}: heap exhausted and unrecoverable"),
        ),
        other => report(
            AttackId::A3MemoryExhaustion,
            mode,
            true,
            format!("unexpected: {other:?}"),
        ),
    }
}

// ---------------------------------------------------------------------
// A4 — exponential object creation (GC churn)
// ---------------------------------------------------------------------

/// The attacker allocates garbage in a loop, triggering collection after
/// collection. I-JVM counts GC activations per isolate; the administrator
/// kills the offender and the churn stops.
pub fn a4_object_churn(mode: IsolationMode) -> AttackReport {
    let mut fw = framework(mode);
    let attacker = install(
        &mut fw,
        "malicious",
        "mal",
        r#"
        class Attack {
            static void churn() {
                while (true) {
                    int[] garbage = new int[2048];
                    garbage[0] = 1;
                }
            }
        }
        "#,
        vec![],
    );
    let aiso = fw.bundle(attacker).unwrap().isolate;
    let attack = class_of(&mut fw, attacker, "mal/Attack");

    let churner = spawn(fw.vm_mut(), attack, "churn", "()V", vec![], aiso);
    let _ = fw.vm_mut().run(Some(8_000_000));
    let gc_before = fw.vm().gc_count();
    assert!(
        gc_before > 3,
        "churn should have forced collections (got {gc_before})"
    );

    if mode == IsolationMode::Isolated {
        let offender =
            worst_isolate(&fw, |s| s.gc_triggers).expect("accounting identifies someone");
        if offender != aiso {
            return report(
                AttackId::A4ObjectChurn,
                mode,
                true,
                format!("GC-activation accounting blamed {offender}, not {aiso}"),
            );
        }
        fw.vm_mut()
            .terminate_isolate(offender)
            .expect("termination supported");
        let _ = fw.vm_mut().run(Some(1_000_000));
        let stopped = fw.vm().thread(churner).unwrap().is_terminated();
        let gc_after_kill = fw.vm().gc_count();
        let _ = fw.vm_mut().run(Some(3_000_000));
        let quiet = fw.vm().gc_count() == gc_after_kill;
        if stopped && quiet {
            return report(
                AttackId::A4ObjectChurn,
                mode,
                false,
                format!("churner killed after {gc_before} forced collections; GC is quiet again"),
            );
        }
        return report(
            AttackId::A4ObjectChurn,
            mode,
            true,
            "churner survived the kill".into(),
        );
    }

    // Shared: the churner cannot be attributed or stopped.
    let _ = fw.vm_mut().run(Some(3_000_000));
    let still_churning =
        !fw.vm().thread(churner).unwrap().is_terminated() && fw.vm().gc_count() > gc_before;
    report(
        AttackId::A4ObjectChurn,
        mode,
        still_churning,
        format!(
            "collector forced {} times and no way to attribute or stop the churn",
            fw.vm().gc_count()
        ),
    )
}

// ---------------------------------------------------------------------
// A5 — recursive thread creation
// ---------------------------------------------------------------------

/// The attacker creates threads until the platform limit. Sun JVM: other
/// bundles can no longer start threads. I-JVM: the per-isolate
/// threads-created counter identifies the offender; killing it raises
/// `StoppedIsolateException` in its parked threads, freeing capacity.
pub fn a5_thread_creation(mode: IsolationMode) -> AttackReport {
    let mut fw = framework(mode);
    let victim = install(
        &mut fw,
        "victim",
        "vic",
        r#"
        class Pinger implements Runnable {
            static int pongs = 0;
            public void run() { pongs = pongs + 1; }
        }
        class Work {
            static int ping() {
                Thread t = new Thread(new Pinger());
                t.start();
                t.join();
                return Pinger.pongs;
            }
        }
        "#,
        vec![],
    );
    let attacker = install(
        &mut fw,
        "malicious",
        "mal",
        r#"
        class Sleeper implements Runnable {
            public void run() { while (true) { Thread.sleep(100000); } }
        }
        class Attack {
            static int flood() {
                int n = 0;
                try {
                    while (true) {
                        Thread t = new Thread(new Sleeper());
                        t.start();
                        n++;
                    }
                } catch (OutOfMemoryError e) { }
                return n;
            }
        }
        "#,
        vec![],
    );
    let (viso, aiso) = (
        fw.bundle(victim).unwrap().isolate,
        fw.bundle(attacker).unwrap().isolate,
    );
    let work = class_of(&mut fw, victim, "vic/Work");
    let attack = class_of(&mut fw, attacker, "mal/Attack");

    let healthy = call_budgeted(fw.vm_mut(), work, "ping", "()I", vec![], viso, 2_000_000);
    assert!(
        matches!(healthy, CallResult::Done(Some(Value::Int(_)))),
        "victim healthy: {healthy:?}"
    );

    let flooded = call_budgeted(
        fw.vm_mut(),
        attack,
        "flood",
        "()I",
        vec![],
        aiso,
        20_000_000,
    );
    assert!(
        matches!(flooded, CallResult::Done(Some(Value::Int(n)) ) if n > 10),
        "flood should hit the thread limit: {flooded:?}"
    );

    if mode == IsolationMode::Isolated {
        let offender =
            worst_isolate(&fw, |s| s.threads_created).expect("accounting identifies someone");
        if offender != aiso {
            return report(
                AttackId::A5ThreadCreation,
                mode,
                true,
                format!("thread accounting blamed {offender}, not {aiso}"),
            );
        }
        fw.vm_mut()
            .terminate_isolate(offender)
            .expect("termination supported");
        let _ = fw.vm_mut().run(Some(3_000_000));
    }

    let after = call_budgeted(fw.vm_mut(), work, "ping", "()I", vec![], viso, 3_000_000);
    match after {
        CallResult::Done(Some(Value::Int(_))) => report(
            AttackId::A5ThreadCreation,
            mode,
            false,
            "attacker killed; its parked threads died and capacity recovered".into(),
        ),
        CallResult::Threw(class) => report(
            AttackId::A5ThreadCreation,
            mode,
            true,
            format!("victim cannot start threads anymore ({class})"),
        ),
        other => report(
            AttackId::A5ThreadCreation,
            mode,
            true,
            format!("unexpected: {other:?}"),
        ),
    }
}

// ---------------------------------------------------------------------
// A6 — standalone infinite loop
// ---------------------------------------------------------------------

/// The attacker burns CPU in an infinite loop. I-JVM's CPU sampling
/// charges the time to the looping isolate; the administrator kills it
/// and the loop thread dies with `StoppedIsolateException`.
pub fn a6_infinite_loop(mode: IsolationMode) -> AttackReport {
    let mut fw = framework(mode);
    let attacker = install(
        &mut fw,
        "malicious",
        "mal",
        r#"
        class Attack {
            static void burn() {
                int x = 0;
                while (true) { x = x + 1; }
            }
        }
        "#,
        vec![],
    );
    let aiso = fw.bundle(attacker).unwrap().isolate;
    let attack = class_of(&mut fw, attacker, "mal/Attack");

    let burner = spawn(fw.vm_mut(), attack, "burn", "()V", vec![], aiso);
    let _ = fw.vm_mut().run(Some(3_000_000));
    assert!(
        !fw.vm().thread(burner).unwrap().is_terminated(),
        "loop must be running"
    );

    if mode == IsolationMode::Isolated {
        let offender = worst_isolate(&fw, |s| s.cpu_sampled).expect("sampling identifies someone");
        if offender != aiso {
            return report(
                AttackId::A6InfiniteLoop,
                mode,
                true,
                format!("CPU sampling blamed {offender}, not {aiso}"),
            );
        }
        fw.vm_mut()
            .terminate_isolate(offender)
            .expect("termination supported");
        let _ = fw.vm_mut().run(Some(1_000_000));
        let dead = fw.vm().thread(burner).unwrap().is_terminated();
        return report(
            AttackId::A6InfiniteLoop,
            mode,
            !dead,
            if dead {
                "CPU sampling identified the looper; kill stopped it".into()
            } else {
                "looper survived the kill".into()
            },
        );
    }

    let _ = fw.vm_mut().run(Some(2_000_000));
    let alive = !fw.vm().thread(burner).unwrap().is_terminated();
    report(
        AttackId::A6InfiniteLoop,
        mode,
        alive,
        "no CPU accounting and no termination: the loop burns CPU forever".into(),
    )
}

// ---------------------------------------------------------------------
// A7 — hanging thread
// ---------------------------------------------------------------------

/// Bundle A calls a method of bundle B and B never returns (it sleeps in
/// a loop, as in the paper's `Thread.sleep` example). Sun JVM: execution
/// never returns to A. I-JVM: the administrator kills B; the caller gets
/// `StoppedIsolateException`, which A catches — execution returns to A.
pub fn a7_hanging_thread(mode: IsolationMode) -> AttackReport {
    let mut fw = framework(mode);
    let hanger = install(
        &mut fw,
        "hanger",
        "hb",
        r#"
        class HangService {
            int get() {
                while (true) { Thread.sleep(1000); }
            }
        }
        "#,
        vec![],
    );
    let caller = install(
        &mut fw,
        "caller",
        "ca",
        r#"
        class Caller {
            static int call() {
                HangService s = new HangService();
                try {
                    return s.get();
                } catch (StoppedIsolateException e) {
                    return -2;
                }
            }
        }
        "#,
        vec![hanger],
    );
    let (hiso, ciso) = (
        fw.bundle(hanger).unwrap().isolate,
        fw.bundle(caller).unwrap().isolate,
    );
    let caller_class = class_of(&mut fw, caller, "ca/Caller");

    let tid = spawn(fw.vm_mut(), caller_class, "call", "()I", vec![], ciso);
    let _ = fw.vm_mut().run(Some(2_000_000));

    // The thread migrated into the hanging bundle: the administrator can
    // see which bundle each parked thread is currently executing in.
    let current = fw.vm().thread(tid).unwrap().current_isolate;
    assert!(!fw.vm().thread(tid).unwrap().is_terminated());

    if mode == IsolationMode::Isolated {
        assert_eq!(
            current, hiso,
            "thread should be charged to the hanging bundle"
        );
        fw.vm_mut()
            .terminate_isolate(hiso)
            .expect("termination supported");
        let _ = fw.vm_mut().run(Some(2_000_000));
        return match inspect(fw.vm(), tid) {
            CallResult::Done(Some(Value::Int(-2))) => report(
                AttackId::A7HangingThread,
                mode,
                false,
                "killing the callee returned control to the caller via StoppedIsolateException"
                    .into(),
            ),
            other => report(
                AttackId::A7HangingThread,
                mode,
                true,
                format!("caller did not regain control: {other:?}"),
            ),
        };
    }

    let _ = fw.vm_mut().run(Some(2_000_000));
    let stuck = !fw.vm().thread(tid).unwrap().is_terminated();
    report(
        AttackId::A7HangingThread,
        mode,
        stuck,
        "execution never returns to the caller and nothing can interrupt the callee".into(),
    )
}

// ---------------------------------------------------------------------
// A8 — lack of termination support
// ---------------------------------------------------------------------

/// Bundle A holds a reference into bundle B; B then attacks; the
/// administrator unloads B. Sun JVM: the reference pins B — it cannot be
/// unloaded and the attack continues. I-JVM: B's methods are poisoned and
/// its threads stopped; A keeps the shared object but any call into B
/// throws.
pub fn a8_termination(mode: IsolationMode) -> AttackReport {
    let mut fw = framework(mode);
    let provider = install(
        &mut fw,
        "provider",
        "pb",
        r#"
        class Token {
            int secret;
            Token() { secret = 99; }
        }
        class Registry {
            static Token give() { return new Token(); }
            static void attackLoop() {
                int x = 0;
                while (true) { x = x + 1; }
            }
        }
        "#,
        vec![],
    );
    let holder = install(
        &mut fw,
        "holder",
        "ha",
        r#"
        class Holder {
            static Token held;
            static int take() { held = Registry.give(); return held.secret; }
            static int useAfterKill() {
                int v = held.secret;
                try {
                    Registry.give();
                    return -1;
                } catch (StoppedIsolateException e) {
                    return v;
                }
            }
        }
        "#,
        vec![provider],
    );
    let (piso, hiso) = (
        fw.bundle(provider).unwrap().isolate,
        fw.bundle(holder).unwrap().isolate,
    );
    let registry = class_of(&mut fw, provider, "pb/Registry");
    let holder_class = class_of(&mut fw, holder, "ha/Holder");

    let taken = call_budgeted(
        fw.vm_mut(),
        holder_class,
        "take",
        "()I",
        vec![],
        hiso,
        1_000_000,
    );
    assert_eq!(taken, CallResult::Done(Some(Value::Int(99))));

    let looper = spawn(fw.vm_mut(), registry, "attackLoop", "()V", vec![], piso);
    let _ = fw.vm_mut().run(Some(3_000_000));

    if mode == IsolationMode::Isolated {
        fw.vm_mut()
            .terminate_isolate(piso)
            .expect("termination supported");
        let _ = fw.vm_mut().run(Some(2_000_000));
        let loop_dead = fw.vm().thread(looper).unwrap().is_terminated();
        let use_after = call_budgeted(
            fw.vm_mut(),
            holder_class,
            "useAfterKill",
            "()I",
            vec![],
            hiso,
            2_000_000,
        );
        return match (loop_dead, use_after) {
            (true, CallResult::Done(Some(Value::Int(99)))) => report(
                AttackId::A8Termination,
                mode,
                false,
                "bundle unloaded: attack thread dead, shared object still readable, \
                 calls into the dead bundle throw StoppedIsolateException"
                    .into(),
            ),
            (dead, other) => report(
                AttackId::A8Termination,
                mode,
                true,
                format!("unload incomplete (loop dead: {dead}, use-after: {other:?})"),
            ),
        };
    }

    // Shared: termination is unsupported; the attack keeps running.
    let cannot_unload = fw.vm_mut().terminate_isolate(piso).is_err();
    let _ = fw.vm_mut().run(Some(2_000_000));
    let still_attacking = !fw.vm().thread(looper).unwrap().is_terminated();
    report(
        AttackId::A8Termination,
        mode,
        cannot_unload && still_attacking,
        "the holder's reference pins the bundle; no termination support, attack continues".into(),
    )
}
