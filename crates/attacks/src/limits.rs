//! Section 4.4: the limits of I-JVM's resource accounting in the presence
//! of thread migration and object sharing.
//!
//! Three experiments show that the sampled/first-referencer design — the
//! price of cheap inter-isolate calls — mischarges in specific patterns:
//!
//! 1. **CPU** — a malicious bundle M calls a function of bundle A a large
//!    number of times; sampling charges most of the CPU to A (the paper
//!    measured roughly 75% to A, 25% to M).
//! 2. **GC activations** — if A's function allocates, the collections
//!    that M's call storm forces are charged to A.
//! 3. **Memory** — a large object *returned* by M to a caller is charged
//!    to the caller that holds it, not to M that built it.

use ijvm_core::ids::{ClassId, IsolateId, MethodRef};
use ijvm_core::value::Value;
use ijvm_core::vm::VmOptions;
use ijvm_osgi::{BundleDescriptor, BundleId, Framework};

/// Result of the CPU-mischarge experiment.
#[derive(Debug, Clone)]
pub struct CpuExperiment {
    /// Sampled CPU charged to the malicious caller M.
    pub caller_sampled: u64,
    /// Sampled CPU charged to the innocent callee A.
    pub callee_sampled: u64,
    /// Exact CPU of M (ground truth, not available in the paper design).
    pub caller_exact: u64,
    /// Exact CPU of A.
    pub callee_exact: u64,
}

impl CpuExperiment {
    /// Fraction of the sampled CPU charged to the callee.
    pub fn callee_share(&self) -> f64 {
        let total = (self.caller_sampled + self.callee_sampled).max(1);
        self.callee_sampled as f64 / total as f64
    }
}

/// Result of the GC-attribution experiment.
#[derive(Debug, Clone)]
pub struct GcExperiment {
    /// Collections charged to the malicious caller M.
    pub caller_gc: u64,
    /// Collections charged to the innocent callee A.
    pub callee_gc: u64,
}

/// Result of the memory-attribution experiment.
#[derive(Debug, Clone)]
pub struct MemoryExperiment {
    /// Live bytes charged to the producing service M.
    pub producer_bytes: u64,
    /// Live bytes charged to the caller holding the object.
    pub holder_bytes: u64,
}

fn fixture() -> (Framework, BundleId, BundleId) {
    let mut opts = VmOptions::isolated();
    opts.gc_threshold_bytes = 1 << 20;
    opts.heap_limit_bytes = 64 << 20;
    let mut fw = Framework::new(opts);
    let callee = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "bundle-a",
                "ba",
                r#"
                class Api {
                    static int work(int x) {
                        // Sized so the callee executes roughly three times
                        // the caller's per-call loop overhead, matching the
                        // paper's observed ~75%/25% CPU split.
                        int s = 0;
                        for (int i = 0; i < 3; i++) s += (x + i) * 3;
                        return s;
                    }
                    static Object makeObject() {
                        return new int[64];
                    }
                }
                "#,
                None,
                vec![],
                &[],
            )
            .expect("callee compiles"),
        )
        .expect("install callee");
    let callee_classes = fw.bundle(callee).unwrap().classes.clone();
    let caller = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "bundle-m",
                "bm",
                r#"
                class Driver {
                    static int storm(int n) {
                        int s = 0;
                        for (int i = 0; i < n; i++) s += Api.work(i);
                        return s;
                    }
                    static int allocStorm(int n) {
                        int live = 0;
                        for (int i = 0; i < n; i++) {
                            Object o = Api.makeObject();
                            if (o != null) live = live + 1;
                        }
                        return live;
                    }
                    static Object give() {
                        // A "dictionary service" returning a large object.
                        return new int[262144];
                    }
                }
                class HolderSlot {
                    static Object held;
                    static void takeFrom() { held = Driver.give(); }
                }
                "#,
                None,
                vec![callee],
                &callee_classes,
            )
            .expect("caller compiles"),
        )
        .expect("install caller");
    (fw, caller, callee)
}

fn call(
    fw: &mut Framework,
    bundle: BundleId,
    class: &str,
    method: &str,
    desc: &str,
    args: Vec<Value>,
) {
    let loader = fw.bundle(bundle).unwrap().loader;
    let iso = fw.bundle(bundle).unwrap().isolate;
    let cid: ClassId = fw.vm_mut().load_class(loader, class).expect("class loads");
    let index = fw
        .vm()
        .class(cid)
        .find_method(method, desc)
        .expect("method exists");
    let _ = fw
        .vm_mut()
        .spawn_thread(method, MethodRef { class: cid, index }, args, iso)
        .expect("spawn");
    let _ = fw.vm_mut().run(Some(2_000_000_000));
}

fn stats_of(fw: &Framework, iso: IsolateId) -> ijvm_core::accounting::ResourceStats {
    fw.vm().isolate_stats(iso).expect("isolate exists").clone()
}

/// Experiment 1: M calls `A.work` many times; CPU sampling charges most
/// of the time to A because the callee executes more instructions per
/// call than the caller's loop body (paper: ~75% / 25%).
pub fn cpu_mischarge(calls: i32) -> CpuExperiment {
    let (mut fw, caller, callee) = fixture();
    let (miso, aiso) = (
        fw.bundle(caller).unwrap().isolate,
        fw.bundle(callee).unwrap().isolate,
    );
    call(
        &mut fw,
        caller,
        "bm/Driver",
        "storm",
        "(I)I",
        vec![Value::Int(calls)],
    );
    let (m, a) = (stats_of(&fw, miso), stats_of(&fw, aiso));
    CpuExperiment {
        caller_sampled: m.cpu_sampled,
        callee_sampled: a.cpu_sampled,
        caller_exact: m.cpu_exact,
        callee_exact: a.cpu_exact,
    }
}

/// Experiment 2: M's call storm makes A allocate; the forced collections
/// are charged to A (the isolate executing at the trigger), not to M.
pub fn gc_mischarge(calls: i32) -> GcExperiment {
    let (mut fw, caller, callee) = fixture();
    let (miso, aiso) = (
        fw.bundle(caller).unwrap().isolate,
        fw.bundle(callee).unwrap().isolate,
    );
    call(
        &mut fw,
        caller,
        "bm/Driver",
        "allocStorm",
        "(I)I",
        vec![Value::Int(calls)],
    );
    let (m, a) = (stats_of(&fw, miso), stats_of(&fw, aiso));
    GcExperiment {
        caller_gc: m.gc_triggers,
        callee_gc: a.gc_triggers,
    }
}

/// Experiment 3: M returns a large object to a caller that retains it;
/// after collection the bytes are charged to the holder, not to M.
pub fn memory_mischarge() -> MemoryExperiment {
    let (mut fw, caller, _callee) = fixture();
    // The "holder" here is a separate isolate that retains M's product:
    // install a third bundle importing M.
    let m_classes = fw.bundle(caller).unwrap().classes.clone();
    let holder = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "bundle-h",
                "bh",
                r#"
                class Keep {
                    static Object held;
                    static void grab() { held = Driver.give(); }
                }
                "#,
                None,
                vec![caller],
                &m_classes,
            )
            .expect("holder compiles"),
        )
        .expect("install holder");
    let (miso, hiso) = (
        fw.bundle(caller).unwrap().isolate,
        fw.bundle(holder).unwrap().isolate,
    );
    call(&mut fw, holder, "bh/Keep", "grab", "()V", vec![]);
    fw.vm_mut().collect_garbage(None);
    let (m, h) = (stats_of(&fw, miso), stats_of(&fw, hiso));
    MemoryExperiment {
        producer_bytes: m.live_bytes,
        holder_bytes: h.live_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_sampling_charges_mostly_the_callee() {
        let e = cpu_mischarge(30_000);
        // Paper: ~75% charged to the callee. Require a clear majority.
        assert!(
            e.callee_share() > 0.5,
            "callee share {:.2} (sampled M={} A={})",
            e.callee_share(),
            e.caller_sampled,
            e.callee_sampled
        );
        // Exact accounting agrees that the callee does more work — the
        // *attribution* problem is that M caused it.
        assert!(e.callee_exact > e.caller_exact);
    }

    #[test]
    fn gc_is_charged_to_the_allocating_callee() {
        let e = gc_mischarge(100_000);
        assert!(
            e.callee_gc > e.caller_gc,
            "GC should be charged to the callee (A={}, M={})",
            e.callee_gc,
            e.caller_gc
        );
        assert!(e.callee_gc > 0, "the storm must actually force collections");
    }

    #[test]
    fn returned_objects_are_charged_to_the_holder() {
        let e = memory_mischarge();
        assert!(
            e.holder_bytes > e.producer_bytes,
            "holder={} producer={}",
            e.holder_bytes,
            e.producer_bytes
        );
        // The held object is 1 MiB; the holder must be charged at least that.
        assert!(e.holder_bytes >= (1 << 20));
    }

    #[test]
    fn shared_mode_has_no_accounting_to_mischarge() {
        // Sanity: the baseline exposes no per-isolate numbers at all.
        let opts = VmOptions::shared();
        assert_eq!(opts.isolation, ijvm_core::vm::IsolationMode::Shared);
        assert!(!opts.accounting);
    }
}
