//! # ijvm-attacks — the paper's robustness evaluation
//!
//! Reproduces the eight attacks of §4.3, each run against both VM
//! configurations:
//!
//! * `Shared` — the vulnerable baseline standing in for the Sun JVM:
//!   shared statics/strings/`Class` objects, no accounting, no isolate
//!   termination;
//! * `Isolated` — I-JVM.
//!
//! | id | attack | Shared outcome | I-JVM outcome |
//! |----|--------|----------------|---------------|
//! | A1 | mutable object in static variable | victim NPEs | victim unaffected (per-isolate statics) |
//! | A2 | lock a shared `Class` object | victim freezes | victim runs (per-isolate `Class` objects) |
//! | A3 | memory exhaustion | victim OOMs, platform lost | accounting identifies attacker; kill + recover |
//! | A4 | excessive object creation (GC churn) | platform thrashes | GC-activation counter identifies; kill + recover |
//! | A5 | recursive thread creation | thread limit exhausted for all | per-isolate thread counter identifies; kill + recover |
//! | A6 | standalone infinite loop | CPU stolen forever | CPU sampling identifies; kill stops the loop |
//! | A7 | hanging thread (callee never returns) | caller stuck forever | killing the callee raises `StoppedIsolateException` in the caller |
//! | A8 | no termination support | bundle cannot be unloaded | poisoned methods + stack patching stop it |
//!
//! Section 4.4's three accounting-imprecision experiments live in
//! [`limits`].

pub mod limits;
pub mod scenarios;

use ijvm_core::vm::IsolationMode;

/// The eight attacks of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackId {
    /// A1 — store mutable object in static variable.
    A1StaticVariable,
    /// A2 — synchronized method / synchronized call block.
    A2SynchronizedLock,
    /// A3 — memory exhaustion.
    A3MemoryExhaustion,
    /// A4 — exponential object creation (GC churn).
    A4ObjectChurn,
    /// A5 — recursive thread creation.
    A5ThreadCreation,
    /// A6 — standalone infinite loop.
    A6InfiniteLoop,
    /// A7 — hanging thread.
    A7HangingThread,
    /// A8 — lack of termination support.
    A8Termination,
}

impl AttackId {
    /// All eight attacks in paper order.
    pub const ALL: [AttackId; 8] = [
        AttackId::A1StaticVariable,
        AttackId::A2SynchronizedLock,
        AttackId::A3MemoryExhaustion,
        AttackId::A4ObjectChurn,
        AttackId::A5ThreadCreation,
        AttackId::A6InfiniteLoop,
        AttackId::A7HangingThread,
        AttackId::A8Termination,
    ];

    /// Short label (`"A1"`, …).
    pub fn label(self) -> &'static str {
        match self {
            AttackId::A1StaticVariable => "A1",
            AttackId::A2SynchronizedLock => "A2",
            AttackId::A3MemoryExhaustion => "A3",
            AttackId::A4ObjectChurn => "A4",
            AttackId::A5ThreadCreation => "A5",
            AttackId::A6InfiniteLoop => "A6",
            AttackId::A7HangingThread => "A7",
            AttackId::A8Termination => "A8",
        }
    }

    /// Paper description of the attack.
    pub fn description(self) -> &'static str {
        match self {
            AttackId::A1StaticVariable => "store mutable object in static variable",
            AttackId::A2SynchronizedLock => "synchronized method or synchronized call block",
            AttackId::A3MemoryExhaustion => "memory exhaustion",
            AttackId::A4ObjectChurn => "exponential object creation",
            AttackId::A5ThreadCreation => "recursive thread creation",
            AttackId::A6InfiniteLoop => "standalone infinite loop",
            AttackId::A7HangingThread => "hanging thread",
            AttackId::A8Termination => "lack of termination support",
        }
    }
}

/// Result of running one attack under one VM configuration.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Which attack.
    pub id: AttackId,
    /// Which VM configuration.
    pub mode: IsolationMode,
    /// `true` when the platform was compromised (victim corrupted, frozen
    /// or starved, and the situation could not be remediated).
    pub compromised: bool,
    /// Human-readable explanation of what happened.
    pub detail: String,
}

/// Runs one attack under `mode`.
pub fn run_attack(id: AttackId, mode: IsolationMode) -> AttackReport {
    match id {
        AttackId::A1StaticVariable => scenarios::a1_static_variable(mode),
        AttackId::A2SynchronizedLock => scenarios::a2_synchronized_lock(mode),
        AttackId::A3MemoryExhaustion => scenarios::a3_memory_exhaustion(mode),
        AttackId::A4ObjectChurn => scenarios::a4_object_churn(mode),
        AttackId::A5ThreadCreation => scenarios::a5_thread_creation(mode),
        AttackId::A6InfiniteLoop => scenarios::a6_infinite_loop(mode),
        AttackId::A7HangingThread => scenarios::a7_hanging_thread(mode),
        AttackId::A8Termination => scenarios::a8_termination(mode),
    }
}

/// Runs all eight attacks under `mode`, in paper order.
pub fn run_all(mode: IsolationMode) -> Vec<AttackReport> {
    AttackId::ALL
        .iter()
        .map(|&id| run_attack(id, mode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_compromises_the_shared_baseline() {
        for report in run_all(IsolationMode::Shared) {
            assert!(
                report.compromised,
                "{} should compromise the Shared baseline: {}",
                report.id.label(),
                report.detail
            );
        }
    }

    #[test]
    fn ijvm_contains_every_attack() {
        for report in run_all(IsolationMode::Isolated) {
            assert!(
                !report.compromised,
                "{} should be contained by I-JVM: {}",
                report.id.label(),
                report.detail
            );
        }
    }
}
