//! Prints each workload's actual checksum (used to pin `expected`).
fn main() {
    for w in ijvm_workloads::spec::all() {
        let s = ijvm_workloads::run_workload(&w, ijvm_core::vm::IsolationMode::Isolated);
        println!(
            "{} {} ({} insns, {:?})",
            w.name, s.result, s.instructions, s.wall
        );
    }
}
