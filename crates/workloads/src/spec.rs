//! SPEC JVM98 analogue workloads, authored in mini-Java.
//!
//! Each analogue stresses the VM features its SPEC counterpart is known
//! for; Figure 2 measures their *relative* slowdown under I-JVM, which
//! depends on the instruction mix (static accesses, allocation rate,
//! call density), not on the exact program.
//!
//! | analogue | SPEC counterpart | stress profile |
//! |---|---|---|
//! | compress | _201_compress | tight int loops over byte arrays, dictionary hashing |
//! | jess | _202_jess | rule matching over a fact base, statics, branching |
//! | db | _209_db | record objects, string keys, sorting, collections |
//! | javac | _213_javac | recursive-descent parsing, char handling, call-heavy |
//! | mpegaudio | _222_mpegaudio | fixed-point DSP kernels, long multiplies |
//! | mtrt | _227_mtrt | multi-threaded double-precision ray tracing |
//! | jack | _228_jack | grammar expansion, StringBuilder churn |

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name used in reports.
    pub name: &'static str,
    /// The SPEC JVM98 benchmark it stands in for.
    pub spec_name: &'static str,
    /// Mini-Java source.
    pub source: &'static str,
    /// Entry class (simple name).
    pub entry_class: &'static str,
    /// Scale argument passed to `run(int)`.
    pub scale: i32,
    /// Expected checksum returned by `run`, fixed across modes.
    pub expected: i32,
}

/// All seven analogues, in SPEC numbering order.
pub fn all() -> Vec<Workload> {
    vec![COMPRESS, JESS, DB, JAVAC, MPEGAUDIO, MTRT, JACK]
}

/// `_201_compress` analogue: an LZW-flavoured compressor with a hashed
/// dictionary over pseudo-random byte data, plus a decompression check.
pub const COMPRESS: Workload = Workload {
    name: "compress",
    spec_name: "_201_compress",
    entry_class: "Compress",
    scale: 6,
    expected: 478717,
    source: r#"
    class Compress {
        static int run(int scale) {
            int n = scale * 20000;
            int[] data = new int[n];
            int seed = 12345;
            for (int i = 0; i < n; i++) {
                seed = seed * 1103515245 + 12345;
                data[i] = (seed >>> 16) & 63;
            }
            // Dictionary: open-addressed (prefix, symbol) -> code.
            int cap = 65536;
            int[] keys = new int[cap];
            int[] codes = new int[cap];
            for (int i = 0; i < cap; i++) keys[i] = -1;
            int next = 64;
            int prefix = data[0];
            int out = 0;
            int outsum = 0;
            for (int i = 1; i < n; i++) {
                int sym = data[i];
                int key = prefix * 64 + sym;
                int h = (key * 0x9E3779B1) >>> 16;
                if (h < 0) h = -h;
                h = h % cap;
                boolean found = false;
                while (keys[h] != -1) {
                    if (keys[h] == key) { found = true; break; }
                    h = (h + 1) % cap;
                }
                if (found) {
                    prefix = codes[h];
                } else {
                    if (next < 60000) {
                        keys[h] = key;
                        codes[h] = next;
                        next++;
                    }
                    out++;
                    outsum = outsum + prefix;
                    prefix = sym;
                }
            }
            return out * 7 + (outsum & 65535) + next;
        }
    }
    "#,
};

/// `_202_jess` analogue: forward-chaining rule engine over a fact base,
/// iterating to a fixed point.
pub const JESS: Workload = Workload {
    name: "jess",
    spec_name: "_202_jess",
    entry_class: "Jess",
    scale: 5,
    expected: 579719,
    source: r#"
    class Rule {
        int ifA; int ifB; int then;
        Rule(int a, int b, int t) { ifA = a; ifB = b; then = t; }
    }
    class Jess {
        static int run(int scale) {
            int nfacts = 600;
            int nrules = scale * 400;
            boolean[] facts = new boolean[nfacts];
            for (int i = 0; i < 8; i++) facts[i] = true;
            Rule[] rules = new Rule[nrules];
            int seed = 999;
            for (int i = 0; i < nrules; i++) {
                // Preconditions biased towards low-numbered facts so that
                // firing cascades through the rule base.
                seed = seed * 1103515245 + 12345;
                int a = ((seed >>> 16) & 32767) % (2 + (i % 96));
                seed = seed * 1103515245 + 12345;
                int b = ((seed >>> 16) & 32767) % (2 + (i % 128));
                seed = seed * 1103515245 + 12345;
                int t = ((seed >>> 16) & 32767) % nfacts;
                rules[i] = new Rule(a, b, t);
            }
            int fired = 0;
            int rounds = 0;
            boolean changed = true;
            while (changed && rounds < 200) {
                changed = false;
                rounds++;
                for (int i = 0; i < nrules; i++) {
                    Rule r = rules[i];
                    if (facts[r.ifA] && facts[r.ifB] && !facts[r.then]) {
                        facts[r.then] = true;
                        fired++;
                        changed = true;
                    }
                }
            }
            int active = 0;
            for (int i = 0; i < nfacts; i++) if (facts[i]) active++;
            return fired * 1000 + active * 31 + rounds * 7;
        }
    }
    "#,
};

/// `_209_db` analogue: an in-memory database of records with string keys,
/// lookups, updates, a shell sort and deletions.
pub const DB: Workload = Workload {
    name: "db",
    spec_name: "_209_db",
    entry_class: "Db",
    scale: 3,
    expected: 11632405,
    source: r#"
    class Record {
        String key;
        int balance;
        Record(String k, int b) { key = k; balance = b; }
    }
    class Db {
        static int run(int scale) {
            int n = scale * 400;
            ArrayList table = new ArrayList();
            HashMap index = new HashMap();
            int seed = 4242;
            for (int i = 0; i < n; i++) {
                seed = seed * 1103515245 + 12345;
                String key = "acct-" + (((seed >>> 16) & 32767) % (n * 2));
                if (!index.containsKey(key)) {
                    Record r = new Record(key, i % 1000);
                    table.add(r);
                    index.put(key, r);
                }
            }
            // Updates through the index.
            int hits = 0;
            for (int i = 0; i < n; i++) {
                String key = "acct-" + (i % (n * 2));
                Record r = (Record) index.get(key);
                if (r != null) { r.balance += 10; hits++; }
            }
            // Shell sort by balance (descending), then key-length tiebreak.
            int size = table.size();
            Record[] recs = new Record[size];
            for (int i = 0; i < size; i++) recs[i] = (Record) table.get(i);
            for (int gap = size / 2; gap > 0; gap = gap / 2) {
                for (int i = gap; i < size; i++) {
                    Record tmp = recs[i];
                    int j = i;
                    while (j >= gap && recs[j - gap].balance < tmp.balance) {
                        recs[j] = recs[j - gap];
                        j -= gap;
                    }
                    recs[j] = tmp;
                }
            }
            int checksum = 0;
            for (int i = 0; i < size; i++) {
                checksum = checksum * 31 + recs[i].balance;
                checksum = checksum & 16777215;
            }
            return checksum + hits + size;
        }
    }
    "#,
};

/// `_213_javac` analogue: tokenizer + recursive-descent parser/evaluator
/// for arithmetic expressions over generated source text.
pub const JAVAC: Workload = Workload {
    name: "javac",
    spec_name: "_213_javac",
    entry_class: "Javac",
    scale: 4,
    expected: 12760596,
    source: r#"
    class Parser {
        String src;
        int pos;
        Parser(String s) { src = s; pos = 0; }
        int peek() {
            if (pos >= src.length()) return -1;
            return src.charAt(pos);
        }
        int expr() {
            int v = term();
            while (true) {
                int c = peek();
                if (c == '+') { pos++; v = v + term(); }
                else if (c == '-') { pos++; v = v - term(); }
                else break;
            }
            return v;
        }
        int term() {
            int v = factor();
            while (true) {
                int c = peek();
                if (c == '*') { pos++; v = v * factor(); }
                else if (c == '/') { pos++; int d = factor(); if (d != 0) v = v / d; }
                else break;
            }
            return v;
        }
        int factor() {
            int c = peek();
            if (c == '(') {
                pos++;
                int v = expr();
                if (peek() == ')') pos++;
                return v;
            }
            int v = 0;
            while (true) {
                c = peek();
                if (c < '0' || c > '9') break;
                v = v * 10 + (c - '0');
                pos++;
            }
            return v;
        }
    }
    class Javac {
        static int run(int scale) {
            int rounds = scale * 700;
            int seed = 777;
            int checksum = 0;
            for (int i = 0; i < rounds; i++) {
                seed = seed * 1103515245 + 12345;
                int a = (seed >>> 16) & 255;
                seed = seed * 1103515245 + 12345;
                int b = ((seed >>> 16) & 255) + 1;
                seed = seed * 1103515245 + 12345;
                int c = (seed >>> 16) & 255;
                String text = "(" + a + "+" + b + ")*" + c + "-" + a + "/" + b;
                Parser p = new Parser(text);
                checksum = (checksum * 31 + p.expr()) & 16777215;
            }
            return checksum;
        }
    }
    "#,
};

/// `_222_mpegaudio` analogue: fixed-point subband synthesis — windowed
/// dot products with longs over a synthesized signal.
pub const MPEGAUDIO: Workload = Workload {
    name: "mpegaudio",
    spec_name: "_222_mpegaudio",
    entry_class: "Mpeg",
    scale: 3,
    expected: 11210,
    source: r#"
    class Mpeg {
        static int run(int scale) {
            int frames = scale * 80;
            int[] window = new int[512];
            for (int i = 0; i < 512; i++) {
                window[i] = ((i * 37) % 255) - 127;
            }
            int[] signal = new int[512 + 32];
            int seed = 31337;
            long acc = 0;
            for (int f = 0; f < frames; f++) {
                for (int i = 0; i < signal.length; i++) {
                    seed = seed * 1103515245 + 12345;
                    signal[i] = ((seed >>> 16) & 4095) - 2048;
                }
                // 32 subbands, each a 512-tap dot product.
                for (int sb = 0; sb < 32; sb++) {
                    long sum = 0;
                    for (int t = 0; t < 512; t++) {
                        sum += (long) window[t] * (long) signal[t + sb];
                    }
                    acc += sum >> 12;
                }
            }
            return (int) (acc & 16777215);
        }
    }
    "#,
};

/// `_227_mtrt` analogue: a two-thread ray tracer over a small sphere
/// scene (double math, virtual dispatch, threads).
pub const MTRT: Workload = Workload {
    name: "mtrt",
    spec_name: "_227_mtrt",
    entry_class: "Mtrt",
    scale: 3,
    expected: 3702784,
    source: r#"
    class Sphere {
        double cx; double cy; double cz; double r2;
        Sphere(double x, double y, double z, double rad) {
            cx = x; cy = y; cz = z; r2 = rad * rad;
        }
        double hit(double ox, double oy, double dx, double dy) {
            // Ray origin (ox, oy, -10), direction (dx, dy, 1), unnormalized.
            double px = ox - cx;
            double py = oy - cy;
            double pz = -10.0 - cz;
            double a = dx * dx + dy * dy + 1.0;
            double b = 2.0 * (px * dx + py * dy + pz);
            double c = px * px + py * py + pz * pz - r2;
            double disc = b * b - 4.0 * a * c;
            if (disc < 0.0) return -1.0;
            return (-b - Math.sqrt(disc)) / (2.0 * a);
        }
    }
    class Tracer implements Runnable {
        static int[] image;
        static Sphere[] scene;
        int from; int to; int width;
        Tracer(int f, int t, int w) { from = f; to = t; width = w; }
        public void run() {
            for (int y = from; y < to; y++) {
                for (int x = 0; x < width; x++) {
                    double ox = (x - width / 2) * 0.02;
                    double oy = (y - width / 2) * 0.02;
                    double best = 1000000.0;
                    int shade = 0;
                    for (int s = 0; s < scene.length; s++) {
                        double t = scene[s].hit(ox, oy, 0.001 * x, 0.001 * y);
                        if (t > 0.0 && t < best) {
                            best = t;
                            shade = 32 + (s * 73) % 200;
                        }
                    }
                    image[y * width + x] = shade;
                }
            }
        }
    }
    class Mtrt {
        static int run(int scale) {
            int width = scale * 24;
            Tracer.image = new int[width * width];
            Tracer.scene = new Sphere[5];
            Tracer.scene[0] = new Sphere(0.0, 0.0, 0.0, 2.0);
            Tracer.scene[1] = new Sphere(1.5, 1.0, 3.0, 1.0);
            Tracer.scene[2] = new Sphere(-2.0, -1.0, 2.0, 1.5);
            Tracer.scene[3] = new Sphere(0.5, -1.5, 5.0, 2.5);
            Tracer.scene[4] = new Sphere(-1.0, 2.0, 1.0, 0.75);
            Thread a = new Thread(new Tracer(0, width / 2, width));
            Thread b = new Thread(new Tracer(width / 2, width, width));
            a.start();
            b.start();
            a.join();
            b.join();
            int checksum = 0;
            for (int i = 0; i < width * width; i++) {
                checksum = (checksum * 31 + Tracer.image[i]) & 16777215;
            }
            return checksum;
        }
    }
    "#,
};

/// `_228_jack` analogue: grammar expansion with heavy string building and
/// token counting (parser-generator style).
pub const JACK: Workload = Workload {
    name: "jack",
    spec_name: "_228_jack",
    entry_class: "Jack",
    scale: 3,
    expected: 145740,
    source: r#"
    class Jack {
        static String expand(int sym, int depth) {
            if (depth <= 0) return "t";
            if (sym == 0) return "(" + expand(1, depth - 1) + ")";
            if (sym == 1) return expand(2, depth - 1) + "+" + expand(2, depth - 1);
            if (sym == 2) return expand(3, depth - 1) + "*t";
            return "id" + depth;
        }
        static int run(int scale) {
            int rounds = scale * 60;
            int tokens = 0;
            int chars = 0;
            for (int i = 0; i < rounds; i++) {
                String prod = expand(i % 3, 6 + (i % 3));
                chars += prod.length();
                StringBuilder sb = new StringBuilder();
                int count = 0;
                for (int j = 0; j < prod.length(); j++) {
                    char c = prod.charAt(j);
                    if (c == '+' || c == '*' || c == '(' || c == ')') {
                        count++;
                        sb.append(' ');
                    } else {
                        sb.append(c);
                    }
                }
                tokens += count + sb.length() % 7;
            }
            return tokens * 100 + (chars & 65535);
        }
    }
    "#,
};
