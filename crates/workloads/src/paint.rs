//! The Felix paint demo of §4.1: a canvas bundle and a shape bundle;
//! dragging a shape across the canvas makes roughly two hundred
//! inter-bundle calls (one per motion step).

// The demo reports measured drag latency; the workspace clippy
// wall-clock ban is lifted for this timing module.
#![allow(clippy::disallowed_types)]

use ijvm_core::ids::ClassId;
use ijvm_core::value::Value;
use ijvm_core::vm::{IsolationMode, VmOptions};
use ijvm_osgi::{BundleDescriptor, BundleId, Framework};
use std::time::{Duration, Instant};

const SHAPE_BUNDLE: &str = r#"
    interface ShapeService {
        int moveTo(int x, int y);
    }
    class Circle implements ShapeService {
        int cx; int cy; int moves;
        public int moveTo(int x, int y) {
            cx = x;
            cy = y;
            moves = moves + 1;
            return moves;
        }
    }
    class Activator {
        static void start(BundleContext ctx) {
            ctx.registerService("shape.circle", new Circle());
        }
    }
"#;

const CANVAS_BUNDLE: &str = r#"
    class Canvas {
        static int drag(ShapeService s, int steps) {
            int last = 0;
            for (int i = 0; i < steps; i++) {
                last = s.moveTo(i, i);
            }
            return last;
        }
    }
    class Activator {
        static void start(BundleContext ctx) {
            ctx.log("canvas ready");
        }
    }
"#;

/// A booted paint application.
pub struct PaintDemo {
    /// The framework with both bundles started.
    pub fw: Framework,
    /// The canvas bundle.
    pub canvas: BundleId,
    /// The shape bundle.
    pub shape: BundleId,
    canvas_class: ClassId,
}

/// One measured drag gesture.
#[derive(Debug, Clone)]
pub struct DragReport {
    /// Steps in the gesture (the paper observes ≈200 for corner-to-corner).
    pub steps: u32,
    /// Inter-isolate migrations during the drag (≈ 2 per call: in + out).
    pub migrations: u64,
    /// Calls that entered the shape bundle.
    pub calls_into_shape: u64,
    /// Wall-clock duration.
    pub wall: Duration,
}

impl PaintDemo {
    /// Boots the framework, installs and starts both bundles.
    pub fn boot(mode: IsolationMode) -> PaintDemo {
        let options = match mode {
            IsolationMode::Shared => VmOptions::shared(),
            IsolationMode::Isolated => VmOptions::isolated(),
        };
        let mut fw = Framework::new(options);
        let shape = fw
            .install_bundle(
                BundleDescriptor::from_source(
                    "paint-shape",
                    "shape",
                    SHAPE_BUNDLE,
                    Some("Activator"),
                    vec![],
                    &[],
                )
                .expect("shape bundle compiles"),
            )
            .expect("shape installs");
        fw.start_bundle(shape).expect("shape starts");

        let shape_classes = fw.bundle(shape).expect("installed").classes.clone();
        let canvas = fw
            .install_bundle(
                BundleDescriptor::from_source(
                    "paint-canvas",
                    "canvas",
                    CANVAS_BUNDLE,
                    Some("Activator"),
                    vec![shape],
                    &shape_classes,
                )
                .expect("canvas bundle compiles"),
            )
            .expect("canvas installs");
        fw.start_bundle(canvas).expect("canvas starts");

        let loader = fw.bundle(canvas).expect("installed").loader;
        let canvas_class = fw
            .vm_mut()
            .load_class(loader, "canvas/Canvas")
            .expect("canvas class");
        PaintDemo {
            fw,
            canvas,
            shape,
            canvas_class,
        }
    }

    /// Drags the circle `steps` times across the canvas: one inter-bundle
    /// call per step, through the service object found in the registry.
    pub fn drag(&mut self, steps: u32) -> DragReport {
        let service = self
            .fw
            .get_service("shape.circle")
            .expect("shape registered");
        let caller_iso = self.fw.bundle(self.canvas).expect("installed").isolate;
        let shape_iso = self.fw.bundle(self.shape).expect("installed").isolate;

        let migrations_before = self.fw.vm().migrations();
        let calls_before = self
            .fw
            .vm()
            .isolate_stats(shape_iso)
            .map(|s| s.calls_in)
            .unwrap_or(0);
        let start = Instant::now();
        let out = self
            .fw
            .vm_mut()
            .call_static_as(
                self.canvas_class,
                "drag",
                "(Lshape/ShapeService;I)I",
                vec![Value::Ref(service), Value::Int(steps as i32)],
                caller_iso,
            )
            .expect("drag succeeds");
        let wall = start.elapsed();
        assert!(matches!(out, Some(Value::Int(_))), "drag returned {out:?}");
        let migrations = self.fw.vm().migrations() - migrations_before;
        let calls_into_shape = self
            .fw
            .vm()
            .isolate_stats(shape_iso)
            .map(|s| s.calls_in - calls_before)
            .unwrap_or(0);
        DragReport {
            steps,
            migrations,
            calls_into_shape,
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_corner_to_corner_drag_makes_200_inter_bundle_calls() {
        let mut demo = PaintDemo::boot(IsolationMode::Isolated);
        let report = demo.drag(200);
        assert_eq!(
            report.calls_into_shape, 200,
            "one call into the shape bundle per step"
        );
        // Each call migrates in and back out.
        assert!(
            report.migrations >= 400,
            "migrations: {}",
            report.migrations
        );
    }

    #[test]
    fn shared_mode_runs_the_demo_without_migrations() {
        let mut demo = PaintDemo::boot(IsolationMode::Shared);
        let report = demo.drag(200);
        assert_eq!(
            report.migrations, 0,
            "the baseline has no isolate switching"
        );
    }

    #[test]
    fn shape_state_advances_per_drag() {
        let mut demo = PaintDemo::boot(IsolationMode::Isolated);
        demo.drag(10);
        let report = demo.drag(10);
        // `moves` is cumulative on the shared service object.
        assert_eq!(report.steps, 10);
        let service = demo.fw.get_service("shape.circle").unwrap();
        let moves = demo.fw.vm().get_field(service, "moves").unwrap().as_int();
        assert_eq!(moves, 20);
    }
}
