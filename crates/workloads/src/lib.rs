//! # ijvm-workloads — evaluation workloads
//!
//! * [`spec`] — seven mini-Java analogues of the SPEC JVM98 suite the
//!   paper's Figure 2 measures (compress, jess, db, javac, mpegaudio,
//!   mtrt, jack);
//! * [`runner`] — runs a workload on a fresh VM in either isolation mode
//!   and reports wall time, guest instructions and the checksum;
//! * [`paint`] — the Felix paint demo of §4.1 (a drag gesture makes ≈200
//!   inter-bundle calls);
//! * [`pipeline`] — two-unit cluster pipelines over the inter-unit
//!   service layer (the cross-unit Table 1 scenario).

pub mod paint;
pub mod pipeline;
pub mod runner;
pub mod spec;

pub use paint::{DragReport, PaintDemo};
pub use pipeline::{build_pipeline, run_pipeline, PipelineOutcome};
pub use runner::{run_workload, RunStats};
pub use spec::{all, Workload};
