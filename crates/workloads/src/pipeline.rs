//! Two-unit pipeline scenarios over the cluster's inter-unit service
//! layer ([`ijvm_core::port`]): a *driver* unit streams work items
//! through the `stage` service a *worker* unit exports, with every
//! argument and result deep-copied across the unit boundary and charged
//! to its sender. The cross-unit Table 1 row (`crates/bench`) and the
//! `examples` are built on this scenario; it is also the smallest
//! realistic "distributed OSGi" shape — two bundle groups on two cores
//! calling each other.

use ijvm_core::prelude::*;
use ijvm_core::sched::UnitHandle;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

/// Mini-Java for the worker unit: exports `stage`, a salted mixing step.
pub const STAGE_SRC: &str = r#"
    class Stage {
        int handle(int x) { return (x * 31 + 7) % 65536; }
    }
    class Boot {
        static int start(int n) {
            Service.export("stage", new Stage());
            return n;
        }
    }
"#;

/// Mini-Java for the driver unit: streams `n` items through `stage` and
/// folds the results into a checksum.
pub const DRIVER_SRC: &str = r#"
    class Driver {
        static int drive(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                acc = (acc + Service.call("stage", acc + i)) % 1000000007;
            }
            return acc;
        }
    }
"#;

/// The observable outcome of one pipeline run, identical across
/// scheduler modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineOutcome {
    /// The driver's folded checksum.
    pub checksum: i32,
    /// Exact CPU charged to the driver's workload isolate (interpreted
    /// instructions plus its sender-pays request-copy charges).
    pub driver_cpu_exact: u64,
    /// Exact CPU charged to the worker's workload isolate (handler
    /// instructions plus its reply-copy charges).
    pub worker_cpu_exact: u64,
    /// Quantum slices the two units consumed, `(driver, worker)`.
    pub slices: (u64, u64),
}

/// Builds one ready-to-submit unit VM around a `(I)I` entry method.
pub fn build_unit(src: &str, entry: &str, method: &str, arg: i32, options: &VmOptions) -> Vm {
    let mut vm = ijvm_jsl::boot(options.clone());
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).expect("pipeline source") {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, entry).expect("entry class");
    let index = vm.class(class).find_method(method, "(I)I").expect("entry");
    let mref = ijvm_core::ids::MethodRef { class, index };
    vm.spawn_thread(method, mref, vec![Value::Int(arg)], iso)
        .expect("spawn entry thread");
    vm
}

/// Assembles the two-unit pipeline on a fresh cluster. Returns the
/// cluster plus the `(driver, worker)` handles.
pub fn build_pipeline(
    kind: SchedulerKind,
    items: i32,
    options: &VmOptions,
) -> (Cluster, UnitHandle, UnitHandle) {
    let mut cluster = Cluster::builder()
        .vm_options(options.clone())
        .scheduler(kind)
        .build();
    let driver = cluster.submit(build_unit(DRIVER_SRC, "Driver", "drive", items, options));
    let worker = cluster.submit(build_unit(STAGE_SRC, "Boot", "start", 1, options));
    (cluster, driver, worker)
}

/// Runs the pipeline to completion under `kind` and reports the
/// scheduler-mode-independent observables.
pub fn run_pipeline(kind: SchedulerKind, items: i32) -> PipelineOutcome {
    let options = VmOptions::isolated();
    let (cluster, driver, worker) = build_pipeline(kind, items, &options);
    let outcome = cluster.run();
    let driver_vm = &outcome.unit(&driver).vm;
    let worker_vm = &outcome.unit(&worker).vm;
    let checksum = driver_vm
        .thread_result(ijvm_core::ids::ThreadId(0))
        .map(|v| v.as_int())
        .expect("driver finished");
    PipelineOutcome {
        checksum,
        driver_cpu_exact: driver_vm.isolate_stats(IsolateId(0)).unwrap().cpu_exact,
        worker_cpu_exact: worker_vm.isolate_stats(IsolateId(0)).unwrap().cpu_exact,
        slices: (
            outcome.unit(&driver).report.slices,
            outcome.unit(&worker).report.slices,
        ),
    }
}

/// The checksum the pipeline must produce for `items`, computed host-side.
pub fn expected_checksum(items: i32) -> i32 {
    let mut acc = 0i64;
    for i in 0..items as i64 {
        let staged = ((acc + i) * 31 + 7) % 65536;
        acc = (acc + staged) % 1_000_000_007;
    }
    acc as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_correct_and_mode_independent() {
        let items = 64;
        let oracle = run_pipeline(SchedulerKind::Deterministic, items);
        assert_eq!(oracle.checksum, expected_checksum(items));
        assert!(oracle.driver_cpu_exact > 0 && oracle.worker_cpu_exact > 0);
        for workers in [1usize, 2] {
            let parallel = run_pipeline(SchedulerKind::Parallel(workers), items);
            assert_eq!(oracle, parallel, "Parallel({workers}) diverged");
        }
    }
}
