//! Executes workloads on a fresh VM in either isolation mode.
//!
//! Figure 2 of the paper runs SPEC JVM98 inside Isolate0 and reports the
//! slowdown of I-JVM relative to LadyVM; [`run_workload`] reproduces that
//! setup — same bytecode, two VM configurations.

// Measured runs read the wall clock by design; the workspace clippy
// ban is lifted for this timing module.
#![allow(clippy::disallowed_types)]

use crate::spec::Workload;
use ijvm_core::ids::IsolateId;
use ijvm_core::value::Value;
use ijvm_core::vm::{IsolationMode, Vm, VmOptions};
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use std::time::{Duration, Instant};

/// Measured execution of one workload.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Workload name.
    pub name: &'static str,
    /// VM configuration used.
    pub mode: IsolationMode,
    /// Wall-clock time of the `run` call.
    pub wall: Duration,
    /// Guest instructions interpreted.
    pub instructions: u64,
    /// The checksum the workload returned.
    pub result: i32,
}

/// Boots a VM in `mode` with the workload compiled into Isolate0's
/// loader, returning the VM and entry class.
pub fn prepare(w: &Workload, mode: IsolationMode) -> (Vm, ijvm_core::ids::ClassId, IsolateId) {
    let options = match mode {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    };
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("workload"); // Isolate0
    let loader = vm.loader_of(iso).expect("isolate exists");
    for (name, bytes) in compile_to_bytes(w.source, &CompileEnv::new()).expect("workload compiles")
    {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm
        .load_class(loader, w.entry_class)
        .expect("entry class loads");
    (vm, class, iso)
}

/// Runs one workload once, returning timing and the checksum.
pub fn run_workload(w: &Workload, mode: IsolationMode) -> RunStats {
    let (mut vm, class, iso) = prepare(w, mode);
    let insns_before = vm.vclock();
    let start = Instant::now();
    let out = vm
        .call_static_as(class, "run", "(I)I", vec![Value::Int(w.scale)], iso)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", w.name));
    let wall = start.elapsed();
    let result = match out {
        Some(Value::Int(v)) => v,
        other => panic!("workload {} returned {other:?}", w.name),
    };
    RunStats {
        name: w.name,
        mode,
        wall,
        instructions: vm.vclock() - insns_before,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn workloads_produce_their_expected_checksums() {
        for w in spec::all() {
            let stats = run_workload(&w, IsolationMode::Isolated);
            assert_eq!(
                stats.result, w.expected,
                "{}: expected {}, measured {}",
                w.name, w.expected, stats.result
            );
        }
    }

    #[test]
    fn results_are_identical_across_modes() {
        // The strongest correctness check in the workspace: isolation must
        // not change program semantics, only cost.
        for w in spec::all() {
            let shared = run_workload(&w, IsolationMode::Shared);
            let isolated = run_workload(&w, IsolationMode::Isolated);
            assert_eq!(
                shared.result, isolated.result,
                "{} diverged between modes",
                w.name
            );
        }
    }

    #[test]
    fn isolated_mode_executes_at_least_as_many_instructions() {
        // I-JVM adds initialization checks; it can never execute fewer
        // guest-visible instructions than the baseline on the same code.
        for w in spec::all() {
            let shared = run_workload(&w, IsolationMode::Shared);
            let isolated = run_workload(&w, IsolationMode::Isolated);
            assert!(
                isolated.instructions >= shared.instructions,
                "{}: isolated {} < shared {}",
                w.name,
                isolated.instructions,
                shared.instructions
            );
        }
    }
}
