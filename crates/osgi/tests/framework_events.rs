//! Framework behaviour around events, service lifecycle and profiles.

use ijvm_core::prelude::*;
use ijvm_osgi::{profiles, BundleDescriptor, Framework};

#[test]
fn stopped_bundle_events_reach_listeners() {
    // Paper §3.4 rule 3: the runtime sends a StoppedBundleEvent to all
    // bundles when a bundle is killed, so they can release references.
    let mut fw = Framework::new(VmOptions::isolated());

    let watcher = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "watcher",
                "wa",
                r#"
                class Watch implements BundleListener {
                    static int stoppedBundle = -1;
                    public void bundleStopped(int id) {
                        stoppedBundle = id;
                    }
                }
                class Activator {
                    static void start(BundleContext ctx) {
                        ctx.addBundleListener(new Watch());
                    }
                }
                "#,
                Some("Activator"),
                vec![],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    fw.start_bundle(watcher).unwrap();

    let doomed = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "doomed",
                "do",
                r#"
                class Activator {
                    static void start(BundleContext ctx) { ctx.log("up"); }
                }
                "#,
                Some("Activator"),
                vec![],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    fw.start_bundle(doomed).unwrap();
    fw.kill_bundle(doomed).unwrap();

    // The watcher's static records which bundle stopped.
    let loader = fw.bundle(watcher).unwrap().loader;
    let iso = fw.bundle(watcher).unwrap().isolate;
    let class = fw.vm_mut().load_class(loader, "wa/Watch").unwrap();
    let slot = fw
        .vm()
        .class(class)
        .find_static_slot("stoppedBundle")
        .unwrap();
    let mi = iso.0 as usize;
    let seen = fw.vm().class(class).mirrors[mi]
        .as_ref()
        .expect("watcher mirror initialized by its activator")
        .statics[slot as usize];
    assert_eq!(seen, Value::Int(doomed.0 as i32));
}

#[test]
fn services_can_be_replaced() {
    let mut fw = Framework::new(VmOptions::isolated());
    let bundle = fw
        .install_bundle(
            BundleDescriptor::from_source(
                "versions",
                "ve",
                r#"
                class V1 { int version() { return 1; } }
                class V2 { int version() { return 2; } }
                class Activator {
                    static void start(BundleContext ctx) {
                        ctx.registerService("svc", new V1());
                        ctx.registerService("svc", new V2());
                    }
                }
                "#,
                Some("Activator"),
                vec![],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    fw.start_bundle(bundle).unwrap();
    let svc = fw.get_service("svc").unwrap();
    let class_name = fw
        .vm()
        .class(fw.vm().heap().get(svc).class)
        .name
        .to_string();
    assert_eq!(class_name, "ve/V2", "re-registration replaces the entry");
    assert_eq!(fw.service_names(), vec!["svc".to_owned()]);
}

#[test]
fn killing_one_bundle_leaves_profiles_running() {
    let (mut fw, ids) = profiles::felix_base(VmOptions::isolated()).unwrap();
    fw.kill_bundle(ids[1]).unwrap(); // shell
    assert!(fw.get_service("shell").is_none());
    assert!(fw.get_service("admin").is_some());
    assert!(fw.get_service("repository").is_some());
}

#[test]
fn memory_overhead_is_isolated_mode_only() {
    // The Figure 3 signal at test scale: metadata grows with isolation on.
    let (mut fw_shared, _) = profiles::felix_base(VmOptions::shared()).unwrap();
    let (mut fw_iso, _) = profiles::felix_base(VmOptions::isolated()).unwrap();
    fw_shared.vm_mut().collect_garbage(None);
    fw_iso.vm_mut().collect_garbage(None);
    let shared_total = fw_shared.vm().heap_used() + fw_shared.vm().metadata_bytes();
    let iso_total = fw_iso.vm().heap_used() + fw_iso.vm().metadata_bytes();
    assert!(
        iso_total > shared_total,
        "isolation costs memory: {iso_total} vs {shared_total}"
    );
    let overhead = iso_total as f64 / shared_total as f64 - 1.0;
    assert!(
        overhead < 0.20,
        "overhead {:.1}% within the paper's bound",
        overhead * 100.0
    );
}
