//! # ijvm-osgi — an OSGi-like component framework on the ijvm VM
//!
//! Implements the execution model the paper targets (§3.4):
//!
//! * the framework runtime executes in **Isolate0**, the privileged
//!   isolate (it may start/terminate isolates and shut the platform down);
//! * each installed **bundle** gets its own class loader, and I-JVM
//!   attaches a fresh isolate to that loader;
//! * bundles communicate through **direct method calls** on objects found
//!   in the service registry — the `BundleContext` is the first shared
//!   object, and `getService` is how foreign references are obtained;
//! * activator `start`/`stop` run on **fresh threads**, so a malicious
//!   bundle cannot freeze the runtime (rule 1);
//! * `System.exit` and `Admin.*` are **privileged** (rule 2);
//! * killing a bundle sends a **StoppedBundleEvent** to registered
//!   listeners before the isolate is terminated (rule 3).
//!
//! Bundles are authored in mini-Java (`ijvm-minijava`) with the activator
//! convention `static void start(BundleContext ctx)` /
//! `static void stop(BundleContext ctx)`.

pub mod classes;
pub mod profiles;
pub mod state;

use ijvm_core::error::{Result, VmError};
use ijvm_core::ids::{IsolateId, LoaderId, MethodRef, ThreadId};
use ijvm_core::isolate::IsolateState;
use ijvm_core::value::{GcRef, Value};
use ijvm_core::vm::{RunOutcome, Vm, VmOptions};
use ijvm_minijava::CompileEnv;
use state::FrameworkState;
use std::sync::Arc;
use std::sync::Mutex;

/// Identifies an installed bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BundleId(pub u32);

/// Lifecycle state of a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BundleState {
    /// Installed, not started.
    Installed,
    /// `start` has been invoked.
    Active,
    /// `stop` has been invoked.
    Stopped,
    /// The bundle's isolate has been terminated.
    Uninstalled,
}

/// What gets installed: a named set of classes plus an activator.
#[derive(Debug, Clone)]
pub struct BundleDescriptor {
    /// Symbolic name (also the isolate name).
    pub symbolic_name: String,
    /// Compiled classes as `(internal name, class-file bytes)`.
    pub classes: Vec<(String, Vec<u8>)>,
    /// Internal name of the activator class (with `static start/stop`).
    pub activator: Option<String>,
    /// Bundles whose classes this bundle may reference.
    pub imports: Vec<BundleId>,
}

impl BundleDescriptor {
    /// Compiles `source` (mini-Java) into a bundle. Classes are placed in
    /// package `package`; `activator_simple` names the activator class
    /// inside the unit (e.g. `"Activator"`). `imported_classes` supplies
    /// the class files of imported bundles for name resolution.
    pub fn from_source(
        symbolic_name: &str,
        package: &str,
        source: &str,
        activator_simple: Option<&str>,
        imports: Vec<BundleId>,
        imported_classes: &[(String, Vec<u8>)],
    ) -> std::result::Result<BundleDescriptor, ijvm_minijava::CompileError> {
        let mut cenv = CompileEnv::in_package(package);
        classes::osgi_signatures(&mut cenv.env);
        for (_, bytes) in imported_classes {
            let cf = ijvm_classfile::reader::read_class(bytes)
                .map_err(|e| ijvm_minijava::CompileError::check(0, e.to_string()))?;
            cenv.import_class_file(&cf)?;
        }
        let classes = ijvm_minijava::compile_to_bytes(source, &cenv)?;
        let activator = activator_simple.map(|a| {
            if package.is_empty() {
                a.to_owned()
            } else {
                format!("{package}/{a}")
            }
        });
        Ok(BundleDescriptor {
            symbolic_name: symbolic_name.to_owned(),
            classes,
            activator,
            imports,
        })
    }
}

/// One installed bundle.
#[derive(Debug)]
pub struct Bundle {
    /// Bundle id.
    pub id: BundleId,
    /// Symbolic name.
    pub symbolic_name: String,
    /// The bundle's isolate.
    pub isolate: IsolateId,
    /// The bundle's class loader.
    pub loader: LoaderId,
    /// Lifecycle state.
    pub state: BundleState,
    /// Activator class internal name.
    pub activator: Option<String>,
    /// Pin handle of the bundle's `BundleContext` object.
    pub context_pin: usize,
    /// The class files, kept for imports by later bundles.
    pub classes: Vec<(String, Vec<u8>)>,
}

/// The OSGi framework: owns the VM and the bundle table.
pub struct Framework {
    vm: Vm,
    state: Arc<Mutex<FrameworkState>>,
    bundles: Vec<Bundle>,
    isolate0: IsolateId,
    /// Default instruction budget for lifecycle calls; activators that
    /// loop forever (attack A6-style) are cut off, not obeyed.
    pub lifecycle_budget: u64,
}

impl std::fmt::Debug for Framework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Framework")
            .field("bundles", &self.bundles.len())
            .field("isolate0", &self.isolate0)
            .finish()
    }
}

impl Framework {
    /// Boots a framework: system library, OSGi classes, Isolate0.
    pub fn new(options: VmOptions) -> Framework {
        let mut vm = ijvm_jsl::boot(options);
        let state = Arc::new(Mutex::new(FrameworkState::default()));
        classes::install(&mut vm, Arc::clone(&state)).expect("OSGi class installation");
        // The first isolate created is Isolate0: the OSGi runtime itself
        // (paper §3.1: the first application class loader becomes Isolate0).
        let isolate0 = vm.create_isolate("osgi-runtime");
        debug_assert!(isolate0.is_privileged());
        Framework {
            vm,
            state,
            bundles: Vec::new(),
            isolate0,
            lifecycle_budget: 500_000_000,
        }
    }

    /// The privileged runtime isolate.
    pub fn isolate0(&self) -> IsolateId {
        self.isolate0
    }

    /// Shared access to the underlying VM.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Mutable access to the underlying VM (admin tooling, benches).
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Installs a bundle: new loader + isolate, class path, imports wired
    /// as loader delegates, and a fresh `BundleContext`.
    pub fn install_bundle(&mut self, desc: BundleDescriptor) -> Result<BundleId> {
        let id = BundleId(self.bundles.len() as u32);
        let isolate = self.vm.create_isolate(&desc.symbolic_name);
        let loader = self.vm.loader_of(isolate)?;
        for (name, bytes) in &desc.classes {
            self.vm.add_class_bytes(loader, name, bytes.clone());
        }
        for import in &desc.imports {
            let other = self
                .bundles
                .get(import.0 as usize)
                .ok_or_else(|| VmError::Internal(format!("unknown import {import:?}")))?;
            self.vm.add_loader_delegate(loader, other.loader);
        }
        // The BundleContext: allocated in (and charged to) the bundle's
        // own isolate, pinned as a framework root.
        let ctx_class = self
            .vm
            .find_class(LoaderId::BOOTSTRAP, "org/osgi/BundleContext")
            .ok_or_else(|| VmError::Internal("BundleContext not installed".to_owned()))?;
        let ctx = self
            .vm
            .alloc_object(ctx_class, isolate)
            .ok_or_else(|| VmError::Internal("heap exhausted installing bundle".to_owned()))?;
        self.vm.set_field(ctx, "bundleId", Value::Int(id.0 as i32));
        let context_pin = self.vm.pin(ctx);

        self.state
            .lock()
            .unwrap()
            .bundle_isolates
            .insert(id.0, isolate);
        self.bundles.push(Bundle {
            id,
            symbolic_name: desc.symbolic_name,
            isolate,
            loader,
            state: BundleState::Installed,
            activator: desc.activator,
            context_pin,
            classes: desc.classes,
        });
        Ok(id)
    }

    /// Looks up an installed bundle.
    pub fn bundle(&self, id: BundleId) -> Result<&Bundle> {
        self.bundles
            .get(id.0 as usize)
            .ok_or_else(|| VmError::Internal(format!("unknown bundle {id:?}")))
    }

    /// All installed bundles.
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// The bundle's `BundleContext` object.
    pub fn context_of(&self, id: BundleId) -> Result<GcRef> {
        let b = self.bundle(id)?;
        self.vm
            .pinned(b.context_pin)
            .ok_or_else(|| VmError::Internal("context unpinned".to_owned()))
    }

    /// Spawns (but does not run) a bundle's lifecycle method on a fresh
    /// thread. Returns `None` when the bundle has no such method.
    fn spawn_lifecycle(&mut self, id: BundleId, method: &str) -> Result<Option<ThreadId>> {
        let (activator, loader, isolate) = {
            let b = self.bundle(id)?;
            (b.activator.clone(), b.loader, b.isolate)
        };
        let Some(activator) = activator else {
            return Ok(None); // nothing to run
        };
        let class = self.vm.load_class(loader, &activator)?;
        let desc = "(Lorg/osgi/BundleContext;)V";
        let Some(index) = self.vm.class(class).find_method(method, desc) else {
            return Ok(None); // optional lifecycle method
        };
        let ctx = self.context_of(id)?;
        // Rule 1 (paper §3.4): lifecycle calls run on a fresh thread so a
        // hanging activator cannot freeze the runtime. The thread is
        // created by the runtime (charged to Isolate0); the code executes
        // in — and is CPU-charged to — the bundle's isolate.
        let mref = MethodRef { class, index };
        let tid = self.vm.spawn_thread(
            &format!("{method}:{}", isolate),
            mref,
            vec![Value::Ref(ctx)],
            self.isolate0,
        )?;
        Ok(Some(tid))
    }

    fn lifecycle_call(&mut self, id: BundleId, method: &str) -> Result<RunOutcome> {
        if self.spawn_lifecycle(id, method)?.is_none() {
            return Ok(RunOutcome::Idle);
        }
        Ok(self.vm.run(Some(self.lifecycle_budget)))
    }

    /// Starts a bundle (runs its activator's `start` on a fresh thread).
    pub fn start_bundle(&mut self, id: BundleId) -> Result<RunOutcome> {
        let out = self.lifecycle_call(id, "start")?;
        self.bundles[id.0 as usize].state = BundleState::Active;
        Ok(out)
    }

    /// Spawns a bundle's `start` activator thread *without running it* —
    /// for frameworks about to become cluster units: submit the VM
    /// ([`Framework::into_vm`]) and let the cluster drive the activator,
    /// so its service lookups can reach (and wait for) other units.
    pub fn spawn_start(&mut self, id: BundleId) -> Result<()> {
        let _ = self.spawn_lifecycle(id, "start")?;
        self.bundles[id.0 as usize].state = BundleState::Active;
        Ok(())
    }

    /// Releases the underlying VM, e.g. to submit the whole framework —
    /// bundles, services, spawned activators — as one cluster execution
    /// unit ([`ijvm_core::sched::Cluster::submit`]). Services registered
    /// through `BundleContext.registerService` whose objects follow the
    /// `handle(int)`/`handle(Object)` convention are already exported in
    /// the VM's port state and become cluster-addressable on submit.
    pub fn into_vm(self) -> Vm {
        self.vm
    }

    /// Stops a bundle cooperatively (runs its `stop`).
    pub fn stop_bundle(&mut self, id: BundleId) -> Result<RunOutcome> {
        let out = self.lifecycle_call(id, "stop")?;
        self.bundles[id.0 as usize].state = BundleState::Stopped;
        Ok(out)
    }

    /// Kills a bundle: delivers `bundleStopped` events to listeners of
    /// *other* bundles (rule 3), terminates the isolate (paper §3.3),
    /// unregisters the bundle's services, and marks it uninstalled.
    pub fn kill_bundle(&mut self, id: BundleId) -> Result<()> {
        let isolate = self.bundle(id)?.isolate;

        // StoppedBundleEvent delivery, each on its own thread.
        let listeners: Vec<(u32, usize)> = self.state.lock().unwrap().listeners.clone();
        for (owner, pin) in listeners {
            if owner == id.0 {
                continue;
            }
            if let Some(listener) = self.vm.pinned(pin) {
                let owner_iso = self
                    .bundles
                    .get(owner as usize)
                    .map(|b| b.isolate)
                    .unwrap_or(self.isolate0);
                // Resolve bundleStopped(int) on the listener's class and
                // deliver the dying bundle's id.
                let lclass = self.vm.heap().get(listener).class;
                if let Some(index) = self.vm.class(lclass).find_method("bundleStopped", "(I)V") {
                    let _ = self.vm.spawn_thread(
                        "bundle-stopped-event",
                        MethodRef {
                            class: lclass,
                            index,
                        },
                        vec![Value::Ref(listener), Value::Int(id.0 as i32)],
                        owner_iso,
                    );
                }
            }
        }
        let budget = self.lifecycle_budget;
        let _ = self.vm.run(Some(budget));

        // Terminate the isolate (stack patching + poisoning, §3.3).
        self.vm.terminate_isolate(isolate)?;

        // Drop the bundle's services and listeners.
        {
            let mut st = self.state.lock().unwrap();
            let dead: Vec<String> = st
                .services
                .iter()
                .filter(|(_, e)| e.provider == id.0)
                .map(|(k, _)| k.clone())
                .collect();
            let mut dead_pins = Vec::new();
            for k in dead {
                if let Some(e) = st.services.remove(&k) {
                    dead_pins.push(e.pin);
                }
            }
            st.listeners.retain(|(owner, pin)| {
                if *owner == id.0 {
                    dead_pins.push(*pin);
                    false
                } else {
                    true
                }
            });
            drop(st);
            for pin in dead_pins {
                self.vm.unpin(pin);
            }
        }
        // Unpin the context so the bundle's objects can be reclaimed.
        let pin = self.bundles[id.0 as usize].context_pin;
        self.vm.unpin(pin);
        self.bundles[id.0 as usize].state = BundleState::Uninstalled;
        self.vm.collect_garbage(None);
        Ok(())
    }

    /// Looks up a registered service object by name (host-side).
    pub fn get_service(&self, name: &str) -> Option<GcRef> {
        let st = self.state.lock().unwrap();
        st.services.get(name).and_then(|e| self.vm.pinned(e.pin))
    }

    /// Names of all registered services.
    pub fn service_names(&self) -> Vec<String> {
        self.state
            .lock()
            .unwrap()
            .services
            .keys()
            .cloned()
            .collect()
    }

    /// Resource snapshot of every isolate, for the administrator.
    pub fn snapshots(&self) -> Vec<ijvm_core::accounting::IsolateSnapshot> {
        self.vm.metrics().isolates
    }

    /// Whether a bundle's isolate has been fully reclaimed (no object of
    /// its classes survives — paper §3.3).
    pub fn bundle_reclaimed(&self, id: BundleId) -> Result<bool> {
        let iso = self.bundle(id)?.isolate;
        Ok(self.vm.isolate_state(iso)? == IsolateState::Dead)
    }

    /// Runs the VM until idle or budget exhaustion (drives worker threads
    /// spawned by bundles).
    pub fn run(&mut self, budget: Option<u64>) -> RunOutcome {
        self.vm.run(budget)
    }

    /// A compile environment preloaded with OSGi signatures and the class
    /// files of `imports` — what a bundle author compiles against.
    pub fn compile_env(&self, package: &str, imports: &[BundleId]) -> CompileEnv {
        let mut cenv = CompileEnv::in_package(package);
        classes::osgi_signatures(&mut cenv.env);
        for id in imports {
            if let Some(b) = self.bundles.get(id.0 as usize) {
                for (_, bytes) in &b.classes {
                    if let Ok(cf) = ijvm_classfile::reader::read_class(bytes) {
                        let _ = cenv.import_class_file(&cf);
                    }
                }
            }
        }
        cenv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_bundle(name: &str, pkg: &str) -> BundleDescriptor {
        let src = r#"
            class Service {
                int ping(int x) { return x + 1; }
            }
            class Activator {
                static void start(BundleContext ctx) {
                    ctx.registerService("svc", new Service());
                    ctx.log("started");
                }
                static void stop(BundleContext ctx) {
                    ctx.log("stopped");
                }
            }
        "#;
        BundleDescriptor::from_source(name, pkg, src, Some("Activator"), vec![], &[]).unwrap()
    }

    #[test]
    fn install_start_stop_lifecycle() {
        let mut fw = Framework::new(VmOptions::isolated());
        let id = fw.install_bundle(simple_bundle("demo", "demo")).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Installed);
        fw.start_bundle(id).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Active);
        assert!(fw.get_service("svc").is_some());
        fw.stop_bundle(id).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Stopped);
        let console = fw.vm_mut().take_console();
        assert!(console.iter().any(|l| l.contains("started")), "{console:?}");
        assert!(console.iter().any(|l| l.contains("stopped")), "{console:?}");
    }

    #[test]
    fn bundles_get_distinct_isolates() {
        let mut fw = Framework::new(VmOptions::isolated());
        let a = fw.install_bundle(simple_bundle("a", "pa")).unwrap();
        let b = fw.install_bundle(simple_bundle("b", "pb")).unwrap();
        let ia = fw.bundle(a).unwrap().isolate;
        let ib = fw.bundle(b).unwrap().isolate;
        assert_ne!(ia, ib);
        assert!(!ia.is_privileged());
        assert!(!ib.is_privileged());
    }

    #[test]
    fn kill_bundle_terminates_isolate_and_services() {
        let mut fw = Framework::new(VmOptions::isolated());
        let id = fw.install_bundle(simple_bundle("victim", "v")).unwrap();
        fw.start_bundle(id).unwrap();
        assert!(fw.get_service("svc").is_some());
        fw.kill_bundle(id).unwrap();
        assert_eq!(fw.bundle(id).unwrap().state, BundleState::Uninstalled);
        assert!(fw.get_service("svc").is_none());
        assert!(fw.bundle_reclaimed(id).unwrap());
    }
}
