//! Base configurations mirroring the paper's Figure 3 measurement:
//! a Felix-like profile (the OSGi runtime plus **3** management bundles —
//! administration, shell, repository) and an Equinox-like profile (the
//! runtime plus **22** management bundles).

use crate::{BundleDescriptor, BundleId, Framework};
use ijvm_core::error::Result;
use ijvm_core::vm::VmOptions;

/// The Felix base profile's management bundles.
pub const FELIX_BUNDLES: &[&str] = &["admin", "shell", "repository"];

/// The Equinox base profile's management bundles (22, matching the
/// bundle count the paper reports for the Equinox base configuration).
pub const EQUINOX_BUNDLES: &[&str] = &[
    "admin",
    "shell",
    "repository",
    "console",
    "registry",
    "preferences",
    "jobs",
    "contenttype",
    "runtime",
    "apputil",
    "common",
    "supplement",
    "transforms",
    "update",
    "configurator",
    "ds",
    "event",
    "log",
    "metatype",
    "useradmin",
    "http",
    "launcher",
];

/// Generates the source of one management bundle: a service interface, an
/// implementation with state (statics, string table, per-instance data),
/// a worker class, and an activator that populates caches and registers
/// the service — representative of what OSGi management bundles do at
/// start-up.
pub fn management_bundle_source(name: &str) -> String {
    format!(
        r#"
        interface {cap}Service {{
            int handle(int request);
        }}
        class {cap}Impl implements {cap}Service {{
            static int requests = 0;
            static String label = "{name}-service";
            ArrayList cache;
            HashMap index;
            {cap}Impl() {{
                cache = new ArrayList();
                index = new HashMap();
                for (int i = 0; i < 32; i++) {{
                    String key = "{name}-entry-" + i;
                    cache.add(key);
                    index.put(key, new {cap}Record(i));
                }}
            }}
            public int handle(int request) {{
                requests = requests + 1;
                {cap}Record r = ({cap}Record) index.get("{name}-entry-" + (request % 32));
                if (r == null) return -1;
                return r.weight;
            }}
        }}
        class {cap}Record {{
            int weight;
            String tag;
            {cap}Record(int w) {{ weight = w * 3 + 1; tag = "record-" + w; }}
        }}
        class Activator {{
            static void start(BundleContext ctx) {{
                ctx.registerService("{name}", new {cap}Impl());
                ctx.log("{name} ready");
            }}
            static void stop(BundleContext ctx) {{
                ctx.log("{name} stopped");
            }}
        }}
        "#,
        cap = capitalize(name),
        name = name,
    )
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Builds the descriptor for one management bundle.
pub fn management_bundle(name: &str) -> BundleDescriptor {
    let src = management_bundle_source(name);
    BundleDescriptor::from_source(name, name, &src, Some("Activator"), vec![], &[])
        .unwrap_or_else(|e| panic!("management bundle {name} failed to compile: {e}"))
}

/// Boots a framework and installs+starts a list of management bundles.
pub fn boot_profile(
    options: VmOptions,
    bundle_names: &[&str],
) -> Result<(Framework, Vec<BundleId>)> {
    let mut fw = Framework::new(options);
    let mut ids = Vec::with_capacity(bundle_names.len());
    for name in bundle_names {
        let id = fw.install_bundle(management_bundle(name))?;
        fw.start_bundle(id)?;
        ids.push(id);
    }
    Ok((fw, ids))
}

/// The Felix-like base configuration (runtime + 3 bundles).
pub fn felix_base(options: VmOptions) -> Result<(Framework, Vec<BundleId>)> {
    boot_profile(options, FELIX_BUNDLES)
}

/// The Equinox-like base configuration (runtime + 22 bundles).
pub fn equinox_base(options: VmOptions) -> Result<(Framework, Vec<BundleId>)> {
    boot_profile(options, EQUINOX_BUNDLES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn felix_profile_boots_and_registers_services() {
        let (fw, ids) = felix_base(VmOptions::isolated()).unwrap();
        assert_eq!(ids.len(), 3);
        for name in FELIX_BUNDLES {
            assert!(fw.get_service(name).is_some(), "service {name} missing");
        }
    }

    #[test]
    fn equinox_profile_has_22_bundles() {
        assert_eq!(EQUINOX_BUNDLES.len(), 22);
        let (fw, ids) = equinox_base(VmOptions::isolated()).unwrap();
        assert_eq!(ids.len(), 22);
        assert!(fw.get_service("useradmin").is_some());
    }

    #[test]
    fn profiles_boot_in_shared_mode_too() {
        let (fw, _) = felix_base(VmOptions::shared()).unwrap();
        assert!(fw.get_service("shell").is_some());
    }
}
