//! Framework state shared between the Rust API and the OSGi natives.

use ijvm_core::ids::IsolateId;
use std::collections::HashMap;

/// One registered service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceEntry {
    /// Host-root pin handle of the service object.
    pub pin: usize,
    /// Bundle id of the provider.
    pub provider: u32,
}

/// State the natives and the framework share (`Arc<Mutex<…>>`).
#[derive(Debug, Default)]
pub struct FrameworkState {
    /// Service name → entry (the OSGi name service of paper §3.4).
    pub services: HashMap<String, ServiceEntry>,
    /// `(owner bundle, listener pin)` pairs for StoppedBundleEvents.
    pub listeners: Vec<(u32, usize)>,
    /// Bundle id → isolate (used by `Admin.terminateBundle`).
    pub bundle_isolates: HashMap<u32, IsolateId>,
}
