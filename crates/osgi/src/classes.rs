//! OSGi support classes installed into the system library, and their
//! natives (backed by the framework's shared state).

use crate::state::{FrameworkState, ServiceEntry};
use ijvm_classfile::{AccessFlags, ClassBuilder, ClassFile, Opcode};
use ijvm_core::error::Result;
use ijvm_core::natives::NativeResult;
use ijvm_core::value::Value;
use ijvm_core::vm::Vm;
use std::sync::Arc;
use std::sync::Mutex;

const PUB: AccessFlags = AccessFlags::PUBLIC;

/// `org/osgi/BundleContext`: the per-bundle handle to the framework — the
/// first shared object a bundle sees (paper §3.4). Backed by natives.
pub fn bundle_context_class() -> ClassFile {
    let mut cb = ClassBuilder::new("org/osgi/BundleContext", "java/lang/Object", PUB);
    cb.field("bundleId", "I", AccessFlags::PRIVATE | AccessFlags::FINAL);
    let mut m = cb.method("getBundleId", "()I", PUB);
    m.aload(0);
    m.getfield("org/osgi/BundleContext", "bundleId", "I");
    m.op(Opcode::Ireturn);
    m.done().expect("getBundleId");
    cb.native_method(
        "registerService",
        "(Ljava/lang/String;Ljava/lang/Object;)V",
        PUB,
    );
    cb.native_method("getService", "(Ljava/lang/String;)Ljava/lang/Object;", PUB);
    cb.native_method("addBundleListener", "(Lorg/osgi/BundleListener;)V", PUB);
    cb.native_method("log", "(Ljava/lang/String;)V", PUB);
    cb.build().expect("org/osgi/BundleContext")
}

/// `org/osgi/BundleActivator`: bundles implement the static convention
/// `static void start(BundleContext)` / `static void stop(BundleContext)`;
/// this marker interface documents the instance variant for listeners.
pub fn bundle_listener_interface() -> ClassFile {
    let mut cb = ClassBuilder::new_interface("org/osgi/BundleListener");
    cb.abstract_method("bundleStopped", "(I)V", PUB);
    cb.build().expect("org/osgi/BundleListener")
}

/// `org/osgi/Admin`: privileged operations, callable only from `Isolate0`
/// (the OSGi runtime isolate). Demonstrates the paper's Isolate0 rights:
/// terminating isolates and shutting the platform down.
pub fn admin_class() -> ClassFile {
    let mut cb = ClassBuilder::new("org/osgi/Admin", "java/lang/Object", PUB);
    cb.native_method("terminateBundle", "(I)V", PUB | AccessFlags::STATIC);
    cb.native_method("shutdown", "(I)V", PUB | AccessFlags::STATIC);
    cb.build().expect("org/osgi/Admin")
}

/// Installs OSGi classes and registers their natives against the shared
/// framework state.
pub fn install(vm: &mut Vm, state: Arc<Mutex<FrameworkState>>) -> Result<()> {
    register_natives(vm, state);
    vm.install_system_class(&bundle_context_class())?;
    vm.install_system_class(&bundle_listener_interface())?;
    vm.install_system_class(&admin_class())?;
    Ok(())
}

fn register_natives(vm: &mut Vm, state: Arc<Mutex<FrameworkState>>) {
    let ctx = "org/osgi/BundleContext";

    // registerService(name, obj): the name service through which bundles
    // publish references; registering makes the object a GC root.
    {
        let state = Arc::clone(&state);
        vm.register_native(
            ctx,
            "registerService",
            "(Ljava/lang/String;Ljava/lang/Object;)V",
            Arc::new(move |vm, tid, args| {
                let receiver = args[0].as_ref().expect("receiver");
                let Some(name_ref) = args[1].as_ref() else {
                    return NativeResult::Throw {
                        class_name: "java/lang/NullPointerException",
                        message: "service name".to_owned(),
                    };
                };
                let Some(service) = args[2].as_ref() else {
                    return NativeResult::Throw {
                        class_name: "java/lang/NullPointerException",
                        message: "service object".to_owned(),
                    };
                };
                let name = vm.read_string(name_ref).unwrap_or_default();
                let provider = vm
                    .get_field(receiver, "bundleId")
                    .map(|v| v.as_int())
                    .unwrap_or(-1);
                let pin = vm.pin(service);
                {
                    let mut st = state.lock().unwrap();
                    if let Some(old) = st.services.insert(
                        name.clone(),
                        ServiceEntry {
                            pin,
                            provider: provider as u32,
                        },
                    ) {
                        vm.unpin(old.pin);
                    }
                }
                // Distributed-OSGi step: a service whose object also
                // follows the `handle(int)`/`handle(Object)` convention
                // becomes addressable from *other cluster units* through
                // the port registry, charged to the providing bundle's
                // isolate. Re-registration replaces the export too
                // (retract, then export fresh), mirroring the local
                // registry's replace semantics — otherwise remote
                // callers would silently keep the old handler object.
                // Best-effort — plain same-VM services simply stay
                // local.
                let owner = vm.current_isolate(tid);
                if let Err(ijvm_core::port::ExportError::Duplicate(_)) =
                    vm.export_service(&name, service, owner)
                {
                    vm.retract_service(&name);
                    let _ = vm.export_service(&name, service, owner);
                }
                NativeResult::Return(None)
            }),
        );
    }

    // getService(name): explicit sharing — the returned reference is the
    // only way an isolate gains access to a foreign object (paper §3.1).
    {
        let state = Arc::clone(&state);
        vm.register_native(
            ctx,
            "getService",
            "(Ljava/lang/String;)Ljava/lang/Object;",
            Arc::new(move |vm, _tid, args| {
                let Some(name_ref) = args[1].as_ref() else {
                    return NativeResult::Return(Some(Value::Null));
                };
                let name = vm.read_string(name_ref).unwrap_or_default();
                let st = state.lock().unwrap();
                let v = st
                    .services
                    .get(&name)
                    .and_then(|e| vm.pinned(e.pin))
                    .map(Value::Ref)
                    .unwrap_or(Value::Null);
                NativeResult::Return(Some(v))
            }),
        );
    }

    // addBundleListener(listener): StoppedBundleEvent delivery (paper
    // §3.4 rule 3).
    {
        let state = Arc::clone(&state);
        vm.register_native(
            ctx,
            "addBundleListener",
            "(Lorg/osgi/BundleListener;)V",
            Arc::new(move |vm, _tid, args| {
                let receiver = args[0].as_ref().expect("receiver");
                let Some(listener) = args[1].as_ref() else {
                    return NativeResult::Return(None);
                };
                let owner = vm
                    .get_field(receiver, "bundleId")
                    .map(|v| v.as_int())
                    .unwrap_or(-1);
                let pin = vm.pin(listener);
                state.lock().unwrap().listeners.push((owner as u32, pin));
                NativeResult::Return(None)
            }),
        );
    }

    vm.register_native(
        ctx,
        "log",
        "(Ljava/lang/String;)V",
        Arc::new(|vm, tid, args| {
            let msg = match args[1] {
                Value::Ref(r) => vm.read_string(r).unwrap_or_default(),
                _ => "null".to_owned(),
            };
            let iso = vm.current_isolate(tid);
            vm.console_print(format!("[{iso}] {msg}"));
            NativeResult::Return(None)
        }),
    );

    // Admin natives: privileged (Isolate0 only) — the rights paper §3.1
    // grants exclusively to the isolate the OSGi runtime executes in.
    {
        let state = Arc::clone(&state);
        vm.register_native(
            "org/osgi/Admin",
            "terminateBundle",
            "(I)V",
            Arc::new(move |vm, tid, args| {
                let caller = vm.current_isolate(tid);
                if !caller.is_privileged() {
                    return NativeResult::Throw {
                        class_name: "java/lang/SecurityException",
                        message: format!("terminateBundle denied to {caller}"),
                    };
                }
                let bundle = args[0].as_int() as u32;
                let iso = state.lock().unwrap().bundle_isolates.get(&bundle).copied();
                match iso {
                    Some(iso) => match vm.terminate_isolate(iso) {
                        Ok(()) => NativeResult::Return(None),
                        Err(e) => NativeResult::Fail(e),
                    },
                    None => NativeResult::Throw {
                        class_name: "java/lang/IllegalArgumentException",
                        message: format!("unknown bundle {bundle}"),
                    },
                }
            }),
        );
    }
    vm.register_native(
        "org/osgi/Admin",
        "shutdown",
        "(I)V",
        Arc::new(|vm, tid, args| {
            let caller = vm.current_isolate(tid);
            if !caller.is_privileged() {
                return NativeResult::Throw {
                    class_name: "java/lang/SecurityException",
                    message: format!("shutdown denied to {caller}"),
                };
            }
            vm.request_exit(args[0].as_int());
            NativeResult::Return(None)
        }),
    );
}

/// Mini-Java signatures for the OSGi classes, for bundle compilation.
pub fn osgi_signatures(env: &mut ijvm_minijava::Env) {
    use ijvm_minijava::{ClassInfo, MethodSig, Ty};
    let obj = Ty::object();
    let s = Ty::string();
    let ctx_ty = Ty::Object("org/osgi/BundleContext".to_owned());
    env.add_class(ClassInfo {
        internal: "org/osgi/BundleContext".to_owned(),
        is_interface: false,
        superclass: Some("java/lang/Object".to_owned()),
        interfaces: vec![],
        fields: vec![],
        methods: vec![
            MethodSig {
                name: "getBundleId".into(),
                params: vec![],
                ret: Ty::Int,
                is_static: false,
            },
            MethodSig {
                name: "registerService".into(),
                params: vec![s.clone(), obj.clone()],
                ret: Ty::Void,
                is_static: false,
            },
            MethodSig {
                name: "getService".into(),
                params: vec![s.clone()],
                ret: obj.clone(),
                is_static: false,
            },
            MethodSig {
                name: "addBundleListener".into(),
                params: vec![Ty::Object("org/osgi/BundleListener".to_owned())],
                ret: Ty::Void,
                is_static: false,
            },
            MethodSig {
                name: "log".into(),
                params: vec![s],
                ret: Ty::Void,
                is_static: false,
            },
        ],
    });
    env.add_class(ClassInfo {
        internal: "org/osgi/BundleListener".to_owned(),
        is_interface: true,
        superclass: Some("java/lang/Object".to_owned()),
        interfaces: vec![],
        fields: vec![],
        methods: vec![MethodSig {
            name: "bundleStopped".into(),
            params: vec![Ty::Int],
            ret: Ty::Void,
            is_static: false,
        }],
    });
    env.add_class(ClassInfo {
        internal: "org/osgi/Admin".to_owned(),
        is_interface: false,
        superclass: Some("java/lang/Object".to_owned()),
        interfaces: vec![],
        fields: vec![],
        methods: vec![
            MethodSig {
                name: "terminateBundle".into(),
                params: vec![Ty::Int],
                ret: Ty::Void,
                is_static: true,
            },
            MethodSig {
                name: "shutdown".into(),
                params: vec![Ty::Int],
                ret: Ty::Void,
                is_static: true,
            },
        ],
    });
    let _ = ctx_ty;
}
