//! Object-graph serialization — the marshalling layer of the RMI-style
//! communication model. Serializing, shipping bytes through a loopback
//! transport, and deserializing is what makes RMI two to three orders of
//! magnitude slower than I-JVM's direct calls (paper Table 1).
//!
//! The codec itself lives in [`ijvm_core::wire`] since the cluster's
//! inter-unit service/message layer ([`ijvm_core::port`]) uses the same
//! wire format to deep-copy call arguments between units; this module
//! re-exports it so existing `ijvm_comm` users keep working and keeps
//! the round-trip test suite with the communication models.

pub use ijvm_core::wire::{deserialize_value, serialize_value, WireError};

#[cfg(test)]
mod tests {
    use super::*;
    use ijvm_core::value::Value;
    use ijvm_core::vm::VmOptions;
    use ijvm_minijava::{compile_to_bytes, CompileEnv};

    #[test]
    fn round_trips_primitives_and_strings() {
        let mut vm = ijvm_jsl::boot(VmOptions::isolated());
        let a = vm.create_isolate("a");
        let b = vm.create_isolate("b");
        let loader = vm.loader_of(b).unwrap();
        for v in [
            Value::Int(-7),
            Value::Long(1 << 40),
            Value::Double(1.25),
            Value::Null,
        ] {
            let mut bytes = Vec::new();
            serialize_value(&vm, v, &mut bytes);
            let back = deserialize_value(&mut vm, &bytes, b, loader).unwrap();
            assert_eq!(format!("{back}"), format!("{v}"));
        }
        let s = vm.new_string(a, "wire");
        let mut bytes = Vec::new();
        serialize_value(&vm, Value::Ref(s), &mut bytes);
        let back = deserialize_value(&mut vm, &bytes, b, loader).unwrap();
        let Value::Ref(r) = back else { panic!() };
        assert_eq!(vm.read_string(r).unwrap(), "wire");
    }

    #[test]
    fn round_trips_object_graphs() {
        let mut vm = ijvm_jsl::boot(VmOptions::isolated());
        let a = vm.create_isolate("a");
        let b = vm.create_isolate("b");
        let src = r#"
            class Pair { Pair other; int v; }
            class Mk {
                static Pair twins() {
                    Pair x = new Pair(); Pair y = new Pair();
                    x.v = 1; y.v = 2; x.other = y; y.other = x;
                    return x;
                }
            }
        "#;
        // Classes visible to both isolates: install into both loaders.
        for iso in [a, b] {
            let loader = vm.loader_of(iso).unwrap();
            for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
                vm.add_class_bytes(loader, &name, bytes);
            }
        }
        let la = vm.loader_of(a).unwrap();
        let mk = vm.load_class(la, "Mk").unwrap();
        let x = vm
            .call_static_as(mk, "twins", "()LPair;", vec![], a)
            .unwrap()
            .unwrap();
        let Value::Ref(x) = x else { panic!() };

        let mut bytes = Vec::new();
        serialize_value(&vm, Value::Ref(x), &mut bytes);
        let lb = vm.loader_of(b).unwrap();
        let back = deserialize_value(&mut vm, &bytes, b, lb).unwrap();
        let Value::Ref(cx) = back else { panic!() };
        assert_ne!(cx, x);
        let cy = vm.get_field(cx, "other").unwrap().as_ref().unwrap();
        assert_eq!(vm.get_field(cx, "v").unwrap().as_int(), 1);
        assert_eq!(vm.get_field(cy, "v").unwrap().as_int(), 2);
        // Cycle preserved through BACKREF.
        assert_eq!(vm.get_field(cy, "other").unwrap().as_ref().unwrap(), cx);
    }

    #[test]
    fn truncated_streams_error_cleanly() {
        let mut vm = ijvm_jsl::boot(VmOptions::isolated());
        let a = vm.create_isolate("a");
        let s = vm.new_string(a, "hello world");
        let mut bytes = Vec::new();
        serialize_value(&vm, Value::Ref(s), &mut bytes);
        let loader = vm.loader_of(a).unwrap();
        for cut in 0..bytes.len() {
            assert!(deserialize_value(&mut vm, &bytes[..cut], a, loader).is_err());
        }
    }
}
