//! # ijvm-comm — inter-bundle communication models
//!
//! The comparators for the paper's Table 1 ("cost of 200 inter-bundle
//! calls, depending on the communication model"):
//!
//! | model | mechanism | cost structure |
//! |---|---|---|
//! | Local method | same-bundle direct call | call + return |
//! | I-JVM | cross-bundle direct call | call + isolate-reference update + return |
//! | Incommunicado (links) | deep copy + callee-thread hand-off | synchronization + graph copy |
//! | RMI local call | serialize → loopback → deserialize → dispatch | marshalling + transport + dispatch |
//!
//! The paper's measured numbers (Pentium D 3 GHz): 20 µs local, 24 µs
//! I-JVM, 9 ms Incommunicado, 90 ms RMI for 200 calls. Absolute numbers
//! here differ (interpreter vs JIT), but the *shape* — I-JVM within a
//! small factor of a local call and orders of magnitude below
//! copy/marshalling models — is what [`models::table1`] reproduces.

pub mod copy;
pub mod models;
pub mod serialize;

pub use copy::deep_copy_value;
pub use models::{measure, table1, CallCostReport, Model};
pub use serialize::{deserialize_value, serialize_value, WireError};
