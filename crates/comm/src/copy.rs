//! Deep copy of object graphs between isolates — the parameter-passing
//! mechanism of Incommunicado-style isolate links (MVM). This is exactly
//! the cost I-JVM avoids by migrating the thread instead.

use ijvm_core::heap::ObjBody;
use ijvm_core::ids::IsolateId;
use ijvm_core::value::{GcRef, Value};
use ijvm_core::vm::Vm;
use std::collections::HashMap;

/// Deep-copies `v` into `target` isolate, preserving sharing and cycles
/// within the copied graph. Primitives are returned unchanged. Returns
/// `None` when the heap limit is hit.
///
/// Every copied object is pinned for the duration of the copy: an
/// allocation mid-graph may trigger a collection, and the host-side
/// `seen` map is invisible to the collector.
pub fn deep_copy_value(vm: &mut Vm, v: Value, target: IsolateId) -> Option<Value> {
    let mut seen: HashMap<GcRef, GcRef> = HashMap::new();
    let mut pins: Vec<usize> = Vec::new();
    let result = copy_value(vm, v, target, &mut seen, &mut pins);
    for handle in pins {
        vm.unpin(handle);
    }
    result
}

fn copy_value(
    vm: &mut Vm,
    v: Value,
    target: IsolateId,
    seen: &mut HashMap<GcRef, GcRef>,
    pins: &mut Vec<usize>,
) -> Option<Value> {
    match v {
        Value::Ref(r) => copy_ref(vm, r, target, seen, pins).map(Value::Ref),
        other => Some(other),
    }
}

fn copy_ref(
    vm: &mut Vm,
    r: GcRef,
    target: IsolateId,
    seen: &mut HashMap<GcRef, GcRef>,
    pins: &mut Vec<usize>,
) -> Option<GcRef> {
    if let Some(&copied) = seen.get(&r) {
        return Some(copied);
    }
    // Strings copy by value (cheapest correct behaviour across isolates).
    if let Some(s) = vm.read_string(r) {
        let copied = vm.new_string(target, &s);
        pins.push(vm.pin(copied));
        seen.insert(r, copied);
        return Some(copied);
    }
    let (class, body_kind) = {
        let obj = vm.heap().get(r);
        (obj.class, discriminate(&obj.body))
    };
    match body_kind {
        BodyKind::Fields(n) => {
            let copied = vm.alloc_object(class, target)?;
            pins.push(vm.pin(copied));
            seen.insert(r, copied);
            for slot in 0..n {
                let field = match &vm.heap().get(r).body {
                    ObjBody::Fields(fields) => fields[slot],
                    _ => unreachable!("shape checked above"),
                };
                let copied_field = copy_value(vm, field, target, seen, pins)?;
                if let ObjBody::Fields(fields) = &mut vm.heap_mut().get_mut(copied).body {
                    fields[slot] = copied_field;
                }
            }
            Some(copied)
        }
        BodyKind::PrimArray => {
            // Clone the payload wholesale.
            let (body, desc) = {
                let obj = vm.heap().get(r);
                (obj.body.clone(), obj.array_desc.clone())
            };
            let copied = alloc_clone(vm, class, target, body, &desc)?;
            pins.push(vm.pin(copied));
            seen.insert(r, copied);
            Some(copied)
        }
        BodyKind::RefArray(n) => {
            let (elem_desc, desc) = {
                let obj = vm.heap().get(r);
                let ObjBody::ArrRef { elem_desc, .. } = &obj.body else {
                    unreachable!()
                };
                (elem_desc.clone(), obj.array_desc.clone())
            };
            let copied = vm.alloc_ref_array(target, &elem_desc, n)?;
            let _ = desc;
            pins.push(vm.pin(copied));
            seen.insert(r, copied);
            for i in 0..n {
                let elem = match &vm.heap().get(r).body {
                    ObjBody::ArrRef { data, .. } => data[i],
                    _ => unreachable!("shape checked above"),
                };
                let copied_elem = copy_value(vm, elem, target, seen, pins)?;
                if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(copied).body {
                    data[i] = copied_elem;
                }
            }
            Some(copied)
        }
    }
}

enum BodyKind {
    Fields(usize),
    PrimArray,
    RefArray(usize),
}

fn discriminate(body: &ObjBody) -> BodyKind {
    match body {
        ObjBody::Fields(f) => BodyKind::Fields(f.len()),
        ObjBody::ArrRef { data, .. } => BodyKind::RefArray(data.len()),
        _ => BodyKind::PrimArray,
    }
}

fn alloc_clone(
    vm: &mut Vm,
    class: ijvm_core::ids::ClassId,
    target: IsolateId,
    body: ObjBody,
    desc: &str,
) -> Option<GcRef> {
    // Primitive arrays have no inner references; clone the body directly
    // through the public char-array/ref-array helpers where possible.
    match body {
        ObjBody::ArrChar(chars) => vm.alloc_chars(target, &chars),
        other => {
            // Fall back: allocate via a ref-array-sized check then swap the
            // body in place (all primitive kinds share the accounting path).
            let len = other.array_len().unwrap_or(0);
            let placeholder = vm.alloc_ref_array(target, "Ljava/lang/Object;", len)?;
            let obj = vm.heap_mut().get_mut(placeholder);
            obj.body = other;
            obj.class = class;
            obj.array_desc = desc.to_owned();
            Some(placeholder)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ijvm_core::vm::VmOptions;
    use ijvm_minijava::{compile_to_bytes, CompileEnv};

    fn vm_with_classes(src: &str) -> (Vm, IsolateId, IsolateId) {
        let mut vm = ijvm_jsl::boot(VmOptions::isolated());
        let a = vm.create_isolate("a");
        let b = vm.create_isolate("b");
        let loader = vm.loader_of(a).unwrap();
        for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
            vm.add_class_bytes(loader, &name, bytes);
        }
        (vm, a, b)
    }

    #[test]
    fn copies_object_graphs_with_cycles() {
        let src = r#"
            class Node { Node next; int v; }
            class Mk {
                static Node ring(int n) {
                    Node first = new Node();
                    first.v = 0;
                    Node cur = first;
                    for (int i = 1; i < n; i++) {
                        Node nn = new Node();
                        nn.v = i;
                        cur.next = nn;
                        cur = nn;
                    }
                    cur.next = first;
                    return first;
                }
            }
        "#;
        let (mut vm, a, b) = vm_with_classes(src);
        let loader = vm.loader_of(a).unwrap();
        let mk = vm.load_class(loader, "Mk").unwrap();
        let ring = vm
            .call_static_as(mk, "ring", "(I)LNode;", vec![Value::Int(4)], a)
            .unwrap()
            .unwrap();
        let Value::Ref(head) = ring else {
            panic!("expected ref")
        };
        let copied = copy_test_helper(&mut vm, head, b);
        // The copy is a distinct 4-node ring with the same values.
        assert_ne!(copied, head);
        let mut cur = copied;
        for expect in [0, 1, 2, 3] {
            let v = vm.get_field(cur, "v").unwrap().as_int();
            assert_eq!(v, expect);
            cur = vm.get_field(cur, "next").unwrap().as_ref().unwrap();
        }
        assert_eq!(cur, copied, "cycle preserved");
        // Ownership: the copy is charged to isolate b.
        assert_eq!(vm.heap().get(copied).owner, b);
    }

    fn copy_test_helper(vm: &mut Vm, r: GcRef, target: IsolateId) -> GcRef {
        match deep_copy_value(vm, Value::Ref(r), target).unwrap() {
            Value::Ref(c) => c,
            other => panic!("expected ref, got {other}"),
        }
    }

    #[test]
    fn copies_strings_and_arrays() {
        let (mut vm, a, b) = vm_with_classes("class Empty { }");
        let s = vm.new_string(a, "shared text");
        let copied = copy_test_helper(&mut vm, s, b);
        assert_ne!(copied, s);
        assert_eq!(vm.read_string(copied).unwrap(), "shared text");
    }
}
