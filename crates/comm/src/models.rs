//! The four inter-bundle communication models of Table 1, on a common
//! two-bundle fixture (a canvas dragging a shape, as in the Felix paint
//! demo of §4.1):
//!
//! * **Local** — callee lives in the caller's own bundle: plain
//!   intra-isolate calls.
//! * **I-JVM** — callee lives in another bundle: direct calls with thread
//!   migration (the paper's contribution).
//! * **Links** — Incommunicado-style isolate links: every call deep-copies
//!   its arguments into the callee isolate and hands off to a callee-side
//!   thread.
//! * **RMI** — full marshalling: arguments and results are serialized,
//!   shipped through a loopback transport, and deserialized.

// This module *times* the four models (Table 1 is wall-clock data), so
// the workspace clippy wall-clock ban is lifted here.
#![allow(clippy::disallowed_types)]

use crate::copy::deep_copy_value;
use crate::serialize::{deserialize_value, serialize_value};
use ijvm_core::ids::{ClassId, IsolateId, LoaderId, MethodRef};
use ijvm_core::value::{GcRef, Value};
use ijvm_core::vm::{Vm, VmOptions};
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use std::time::{Duration, Instant};

/// A communication model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Intra-bundle direct call.
    Local,
    /// Inter-bundle direct call with thread migration (I-JVM).
    IJvm,
    /// Incommunicado-style link: deep copy + thread hand-off.
    Links,
    /// RMI-style: serialize → loopback transport → deserialize.
    Rmi,
    /// Cross-unit cluster call (`ijvm_core::port`): the caller and the
    /// shape live in *different VMs* scheduled as cluster units; each
    /// call is serialized into the target unit's mailbox, dispatched on
    /// its service pump, and the reply copied back — the copying-model
    /// cost structure, across share-nothing units, on one worker.
    CrossUnit,
}

impl Model {
    /// All five models: the paper's Table 1 order plus the beyond-paper
    /// cross-unit cluster row.
    pub const ALL: [Model; 5] = [
        Model::Local,
        Model::Rmi,
        Model::Links,
        Model::IJvm,
        Model::CrossUnit,
    ];

    /// Display name matching the paper's Table 1 columns.
    pub fn name(self) -> &'static str {
        match self {
            Model::Local => "Local method",
            Model::IJvm => "I-JVM",
            Model::Links => "Incommunicado (links)",
            Model::Rmi => "RMI local call",
            Model::CrossUnit => "cross-unit (cluster)",
        }
    }
}

/// Measured cost of a batch of inter-bundle calls.
#[derive(Debug, Clone)]
pub struct CallCostReport {
    /// The model measured.
    pub model: Model,
    /// Number of calls in the batch (the paper uses 200).
    pub calls: u32,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Guest instructions interpreted during the batch.
    pub guest_instructions: u64,
    /// Checksum of the results (guards against dead-code elimination and
    /// validates that every model computed the same thing).
    pub checksum: i64,
}

impl CallCostReport {
    /// Nanoseconds per call.
    pub fn ns_per_call(&self) -> f64 {
        self.wall.as_nanos() as f64 / self.calls.max(1) as f64
    }
}

const SHAPE_SRC: &str = r#"
    class Shape {
        int moveTo(int x) { return x + 1; }
    }
    class ShapeFactory {
        static Shape make() { return new Shape(); }
    }
"#;

fn canvas_src() -> &'static str {
    r#"
    class Canvas {
        static int drag(Shape s, int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) acc += s.moveTo(i);
            return acc;
        }
    }
    "#
}

struct Fixture {
    vm: Vm,
    caller_iso: IsolateId,
    callee_iso: IsolateId,
    callee_loader: LoaderId,
    canvas: Option<ClassId>,
    shape_obj: GcRef,
    shape_move: MethodRef,
    _pin: usize,
}

/// Builds the fixture. For `Local` the shape classes are compiled *into*
/// the caller bundle; otherwise they live in a separate bundle.
fn fixture(model: Model) -> Fixture {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let caller_iso = vm.create_isolate("canvas-bundle");
    let caller_loader = vm.loader_of(caller_iso).unwrap();

    let (callee_iso, callee_loader) = if model == Model::Local {
        (caller_iso, caller_loader)
    } else {
        let iso = vm.create_isolate("shape-bundle");
        let loader = vm.loader_of(iso).unwrap();
        (iso, loader)
    };

    // Shape classes.
    let shape_env = CompileEnv::new();
    let shape_classes = compile_to_bytes(SHAPE_SRC, &shape_env).unwrap();
    for (name, bytes) in &shape_classes {
        vm.add_class_bytes(callee_loader, name, bytes.clone());
    }
    if callee_loader != caller_loader {
        vm.add_loader_delegate(caller_loader, callee_loader);
    }

    // Canvas (the caller loop), used by Local and IJvm.
    let canvas = if matches!(model, Model::Local | Model::IJvm) {
        let mut cenv = CompileEnv::new();
        for (_, bytes) in &shape_classes {
            let cf = ijvm_classfile::reader::read_class(bytes).unwrap();
            cenv.import_class_file(&cf).unwrap();
        }
        for (name, bytes) in compile_to_bytes(canvas_src(), &cenv).unwrap() {
            vm.add_class_bytes(caller_loader, &name, bytes);
        }
        Some(vm.load_class(caller_loader, "Canvas").unwrap())
    } else {
        None
    };

    // The shared service object: a Shape made by (and charged to) the
    // callee bundle — the reference is then passed explicitly, which is
    // I-JVM's sharing model.
    let factory = vm.load_class(callee_loader, "ShapeFactory").unwrap();
    let made = vm
        .call_static_as(factory, "make", "()LShape;", vec![], callee_iso)
        .unwrap()
        .unwrap();
    let Value::Ref(shape_obj) = made else {
        panic!("factory returned {made}")
    };
    let pin = vm.pin(shape_obj);

    let shape_class = vm.heap().get(shape_obj).class;
    let move_index = vm.class(shape_class).find_method("moveTo", "(I)I").unwrap();
    let shape_move = MethodRef {
        class: shape_class,
        index: move_index,
    };

    Fixture {
        vm,
        caller_iso,
        callee_iso,
        callee_loader,
        canvas,
        shape_obj,
        shape_move,
        _pin: pin,
    }
}

/// Measures `calls` inter-bundle calls under `model`.
pub fn measure(model: Model, calls: u32) -> CallCostReport {
    if model == Model::CrossUnit {
        return measure_cross_unit(calls);
    }
    let mut fx = fixture(model);
    // Warm up: class loading, lazy resolution, allocator growth.
    let warmup = (calls / 10).max(4);
    match model {
        Model::Local | Model::IJvm => {
            run_direct(&mut fx, warmup);
        }
        Model::Links => {
            run_links(&mut fx, warmup);
        }
        Model::Rmi => {
            run_rmi(&mut fx, warmup);
        }
        Model::CrossUnit => unreachable!("dispatched above"),
    };
    let start_insns = fx.vm.vclock();
    let start = Instant::now();
    let checksum = match model {
        Model::Local | Model::IJvm => run_direct(&mut fx, calls),
        Model::Links => run_links(&mut fx, calls),
        Model::Rmi => run_rmi(&mut fx, calls),
        Model::CrossUnit => unreachable!("dispatched above"),
    };
    let wall = start.elapsed();
    let guest_instructions = fx.vm.vclock() - start_insns;
    CallCostReport {
        model,
        calls,
        wall,
        guest_instructions,
        checksum,
    }
}

/// Mini-Java for the cross-unit fixture: the shape bundle exports its
/// `moveTo` as a cluster service; the canvas unit drags through it.
const XUNIT_SHAPE_SRC: &str = r#"
    class ShapeService {
        int handle(int x) { return x + 1; }
    }
    class Boot {
        static int start(int n) {
            Service.export("shape.moveTo", new ShapeService());
            return n;
        }
    }
"#;

const XUNIT_CANVAS_SRC: &str = r#"
    class Canvas {
        static int drag(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) acc += Service.call("shape.moveTo", i);
            return acc;
        }
    }
"#;

/// Builds one cross-unit fixture unit: compiled classes, pre-loaded, an
/// entry thread spawned for `arg`.
fn xunit_vm(src: &str, entry: &str, method: &str, arg: i32, options: VmOptions) -> Vm {
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("bundle");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, entry).unwrap();
    let index = vm.class(class).find_method(method, "(I)I").unwrap();
    vm.spawn_thread(
        method,
        MethodRef { class, index },
        vec![Value::Int(arg)],
        iso,
    )
    .unwrap();
    vm
}

/// Measures `calls` cross-unit service calls on a one-worker cluster
/// (the apples-to-apples comparison against the in-VM models: no
/// parallelism, pure mechanism cost).
pub fn measure_cross_unit(calls: u32) -> CallCostReport {
    measure_cross_unit_with(calls, VmOptions::isolated())
}

/// [`measure_cross_unit`] with explicit per-unit [`VmOptions`] — both
/// units get the same configuration. The bench crate uses this to put
/// the flight recorder's trace-on overhead on the same call micro the
/// cross-unit ceiling is gated on.
pub fn measure_cross_unit_with(calls: u32, options: VmOptions) -> CallCostReport {
    use ijvm_core::sched::{Cluster, SchedulerKind};
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Deterministic)
        .build();
    let canvas = cluster.submit(xunit_vm(
        XUNIT_CANVAS_SRC,
        "Canvas",
        "drag",
        calls as i32,
        options.clone(),
    ));
    let shape = cluster.submit(xunit_vm(XUNIT_SHAPE_SRC, "Boot", "start", 1, options));
    let start = Instant::now();
    let outcome = cluster.run();
    let wall = start.elapsed();
    let canvas_vm = &outcome.unit(&canvas).vm;
    let shape_vm = &outcome.unit(&shape).vm;
    let checksum = canvas_vm
        .thread_result(ijvm_core::ids::ThreadId(0))
        .map(|v| v.as_int() as i64)
        .expect("canvas finished");
    CallCostReport {
        model: Model::CrossUnit,
        calls,
        wall,
        guest_instructions: canvas_vm.vclock() + shape_vm.vclock(),
        checksum,
    }
}

/// Direct calls: the guest loop invokes `shape.moveTo(i)` n times. For
/// `IJvm` every call migrates the thread into the shape bundle and back.
fn run_direct(fx: &mut Fixture, calls: u32) -> i64 {
    let canvas = fx.canvas.expect("direct models have a Canvas");
    let out = fx
        .vm
        .call_static_as(
            canvas,
            "drag",
            "(LShape;I)I",
            vec![Value::Ref(fx.shape_obj), Value::Int(calls as i32)],
            fx.caller_iso,
        )
        .unwrap()
        .unwrap();
    out.as_int() as i64
}

/// Incommunicado-style links: each call deep-copies the arguments into
/// the callee isolate and executes on a callee-side thread — the caller
/// synchronizes on completion. No object is ever shared.
fn run_links(fx: &mut Fixture, calls: u32) -> i64 {
    let mut acc = 0i64;
    for i in 0..calls {
        let arg =
            deep_copy_value(&mut fx.vm, Value::Int(i as i32), fx.callee_iso).expect("copy arg");
        let tid = fx
            .vm
            .spawn_thread(
                "link-call",
                fx.shape_move,
                vec![Value::Ref(fx.shape_obj), arg],
                fx.callee_iso,
            )
            .expect("spawn link thread");
        let _ = fx.vm.run(None);
        let result = fx.vm.thread_result(tid).expect("link call result");
        let back = deep_copy_value(&mut fx.vm, result, fx.caller_iso).expect("copy result");
        acc += back.as_int() as i64;
    }
    acc
}

/// RMI-style: marshal a full call envelope (service name, method name,
/// descriptor, arguments — what `java.rmi` actually puts on the wire),
/// ship it through a layered loopback transport, unmarshal at the callee,
/// dispatch on a callee thread, and do the same for the response.
fn run_rmi(fx: &mut Fixture, calls: u32) -> i64 {
    let mut acc = 0i64;
    let mut socket_a: Vec<u8> = Vec::new();
    let mut socket_b: Vec<u8> = Vec::new();
    for i in 0..calls {
        // Marshal the request envelope: the metadata strings are guest
        // objects, as a real RMI stub would marshal them.
        let service = fx.vm.new_string(fx.caller_iso, "shape-service");
        let method = fx.vm.new_string(fx.caller_iso, "moveTo");
        let descriptor = fx.vm.new_string(fx.caller_iso, "(I)I");
        let mut wire = Vec::new();
        for part in [
            Value::Ref(service),
            Value::Ref(method),
            Value::Ref(descriptor),
        ] {
            serialize_value(&fx.vm, part, &mut wire);
        }
        serialize_value(&fx.vm, Value::Int(i as i32), &mut wire);
        loopback(&mut socket_a, &mut socket_b, &wire);

        // Unmarshal the envelope at the callee (allocates the metadata
        // strings in the callee isolate) and dispatch.
        let mut pos = 0usize;
        let mut parts = Vec::with_capacity(4);
        for _ in 0..4 {
            let (v, used) = deserialize_prefix(
                &mut fx.vm,
                &socket_b[pos..],
                fx.callee_iso,
                fx.callee_loader,
            );
            parts.push(v);
            pos += used;
        }
        let arg = parts[3];
        let tid = fx
            .vm
            .spawn_thread(
                "rmi-call",
                fx.shape_move,
                vec![Value::Ref(fx.shape_obj), arg],
                fx.callee_iso,
            )
            .expect("spawn rmi thread");
        let _ = fx.vm.run(None);
        let result = fx.vm.thread_result(tid).expect("rmi call result");

        // Marshal the response envelope.
        let status = fx.vm.new_string(fx.callee_iso, "ok");
        let mut wire = Vec::new();
        serialize_value(&fx.vm, Value::Ref(status), &mut wire);
        serialize_value(&fx.vm, result, &mut wire);
        loopback(&mut socket_b, &mut socket_a, &wire);
        let (_status, used) =
            deserialize_prefix(&mut fx.vm, &socket_a, fx.caller_iso, fx.callee_loader);
        let (back, _) = deserialize_prefix(
            &mut fx.vm,
            &socket_a[used..],
            fx.caller_iso,
            fx.callee_loader,
        );
        acc += back.as_int() as i64;
    }
    acc
}

/// Deserializes one value from the front of `bytes`, returning it and the
/// number of bytes consumed (envelope fields are concatenated streams).
fn deserialize_prefix(
    vm: &mut Vm,
    bytes: &[u8],
    target: IsolateId,
    loader: LoaderId,
) -> (Value, usize) {
    // Streams are self-delimiting; probe increasing prefixes.
    for end in 1..=bytes.len() {
        if let Ok(v) = deserialize_value(vm, &bytes[..end], target, loader) {
            return (v, end);
        }
    }
    panic!("corrupt envelope");
}

/// A layered loopback transport: three copy+checksum passes each way,
/// standing in for the socket, IP and protocol layers a local RMI call
/// still traverses.
fn loopback(send: &mut Vec<u8>, recv: &mut Vec<u8>, payload: &[u8]) {
    send.clear();
    send.extend_from_slice(payload);
    for _ in 0..3 {
        let mut sum = 0u32;
        for b in send.iter() {
            sum = sum.wrapping_mul(31).wrapping_add(*b as u32);
        }
        recv.clear();
        recv.extend_from_slice(send);
        recv.push((sum & 0x7f) as u8);
        recv.pop();
        std::mem::swap(send, recv);
    }
    std::mem::swap(send, recv);
}

/// Runs the full Table 1 comparison.
pub fn table1(calls: u32) -> Vec<CallCostReport> {
    Model::ALL.iter().map(|&m| measure(m, calls)).collect()
}

/// Relative overhead of I-JVM's intra- vs inter-bundle calls in guest
/// instructions — the micro-benchmark view used by Figure 1.
pub fn migration_cost(calls: u32) -> (u64, u64) {
    let local = measure(Model::Local, calls).guest_instructions;
    let inter = measure(Model::IJvm, calls).guest_instructions;
    (local, inter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_compute_the_same_result() {
        let reports = table1(50);
        let expect: i64 = (0..50).map(|i| i as i64 + 1).sum();
        for r in &reports {
            assert_eq!(r.checksum, expect, "{} wrong result", r.model.name());
        }
    }

    #[test]
    fn ijvm_migrates_and_local_does_not() {
        let mut fx = fixture(Model::Local);
        run_direct(&mut fx, 100);
        let local_migrations = fx.vm.migrations();

        let mut fx = fixture(Model::IJvm);
        run_direct(&mut fx, 100);
        let inter_migrations = fx.vm.migrations();

        assert_eq!(local_migrations, 0, "intra-bundle calls must not migrate");
        // 100 calls in + 100 returns + fixture calls.
        assert!(
            inter_migrations >= 200,
            "expected ≥200 migrations, got {inter_migrations}"
        );
    }

    #[test]
    fn table1_ordering_matches_the_paper() {
        // Local ≈ I-JVM ≪ Links ≪ RMI, in wall-clock per call.
        let reports = table1(200);
        let get = |m: Model| {
            reports
                .iter()
                .find(|r| r.model == m)
                .map(|r| r.ns_per_call())
                .expect("model measured")
        };
        let (local, ijvm, links, rmi) = (
            get(Model::Local),
            get(Model::IJvm),
            get(Model::Links),
            get(Model::Rmi),
        );
        assert!(
            ijvm < links,
            "I-JVM ({ijvm:.0} ns) should beat links ({links:.0} ns)"
        );
        assert!(
            links <= rmi * 1.5,
            "links should not be slower than RMI (links {links:.0}, rmi {rmi:.0})"
        );
        assert!(
            ijvm < rmi / 5.0,
            "I-JVM ({ijvm:.0} ns) should be far below RMI ({rmi:.0} ns)"
        );
        // I-JVM is within a small factor of a plain local call.
        assert!(
            ijvm < local * 3.0 + 1000.0,
            "I-JVM ({ijvm:.0} ns) should be close to local ({local:.0} ns)"
        );
    }

    #[test]
    fn ijvm_charges_calls_to_the_callee_bundle() {
        let mut fx = fixture(Model::IJvm);
        run_direct(&mut fx, 64);
        let stats = fx.vm.isolate_stats(fx.callee_iso).unwrap();
        assert!(
            stats.calls_in >= 64,
            "callee should record ≥64 incoming calls"
        );
    }
}
