//! Property tests for the RMI wire format: random value trees round-trip
//! across isolates, and corrupted streams never panic.

use ijvm_comm::{deserialize_value, serialize_value};
use ijvm_core::heap::ObjBody;
use ijvm_core::prelude::*;
use ijvm_core::vm::Vm;
use proptest::prelude::*;

/// A host-side description of a guest value tree.
#[derive(Debug, Clone)]
enum Tree {
    Null,
    Int(i32),
    Long(i64),
    Double(f64),
    Str(String),
    IntArray(Vec<i32>),
    RefArray(Vec<Tree>),
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        Just(Tree::Null),
        any::<i32>().prop_map(Tree::Int),
        any::<i64>().prop_map(Tree::Long),
        // NaN excluded: equality on round-trip is checked bitwise below,
        // but Display-based compare would mangle it.
        (-1e9f64..1e9).prop_map(Tree::Double),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Tree::Str),
        proptest::collection::vec(any::<i32>(), 0..12).prop_map(Tree::IntArray),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Tree::RefArray)
    })
}

fn build(vm: &mut Vm, iso: IsolateId, t: &Tree) -> Value {
    match t {
        Tree::Null => Value::Null,
        Tree::Int(v) => Value::Int(*v),
        Tree::Long(v) => Value::Long(*v),
        Tree::Double(v) => Value::Double(*v),
        Tree::Str(s) => Value::Ref(vm.new_string(iso, s)),
        Tree::IntArray(xs) => {
            // Build through the public ref-array API then swap the body in.
            let arr = vm
                .alloc_ref_array(iso, "Ljava/lang/Object;", xs.len())
                .unwrap();
            let obj = vm.heap_mut().get_mut(arr);
            obj.body = ObjBody::ArrInt(xs.clone().into_boxed_slice());
            obj.array_desc = "[I".to_owned();
            Value::Ref(arr)
        }
        Tree::RefArray(children) => {
            let arr = vm
                .alloc_ref_array(iso, "Ljava/lang/Object;", children.len())
                .unwrap();
            for (i, c) in children.iter().enumerate() {
                let v = build(vm, iso, c);
                if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(arr).body {
                    data[i] = v;
                }
            }
            Value::Ref(arr)
        }
    }
}

fn check(vm: &Vm, t: &Tree, v: Value) {
    match (t, v) {
        (Tree::Null, Value::Null) => {}
        (Tree::Int(x), Value::Int(y)) => assert_eq!(*x, y),
        (Tree::Long(x), Value::Long(y)) => assert_eq!(*x, y),
        (Tree::Double(x), Value::Double(y)) => assert_eq!(x.to_bits(), y.to_bits()),
        (Tree::Str(s), Value::Ref(r)) => assert_eq!(vm.read_string(r).as_deref(), Some(s.as_str())),
        (Tree::IntArray(xs), Value::Ref(r)) => match &vm.heap().get(r).body {
            ObjBody::ArrInt(a) => assert_eq!(&a[..], &xs[..]),
            other => panic!("expected int array, got {other:?}"),
        },
        (Tree::RefArray(children), Value::Ref(r)) => {
            let elems: Vec<Value> = match &vm.heap().get(r).body {
                ObjBody::ArrRef { data, .. } => data.to_vec(),
                other => panic!("expected ref array, got {other:?}"),
            };
            assert_eq!(elems.len(), children.len());
            for (c, e) in children.iter().zip(elems) {
                check(vm, c, e);
            }
        }
        (t, v) => panic!("shape mismatch: {t:?} vs {v}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_value_trees_round_trip(tree in arb_tree()) {
        let mut vm = ijvm_jsl::boot(VmOptions::isolated());
        let a = vm.create_isolate("a");
        let b = vm.create_isolate("b");
        let v = build(&mut vm, a, &tree);
        let mut wire = Vec::new();
        serialize_value(&vm, v, &mut wire);
        let loader = vm.loader_of(b).unwrap();
        let back = deserialize_value(&mut vm, &wire, b, loader).expect("round trip");
        check(&vm, &tree, back);
        // Deep copy agrees with serialize→deserialize.
        let copied = ijvm_comm::deep_copy_value(&mut vm, v, b).expect("copy");
        check(&vm, &tree, copied);
    }

    #[test]
    fn corrupted_wire_never_panics(tree in arb_tree(), flips in proptest::collection::vec((0usize..4096, 1u8..=255), 1..4)) {
        let mut vm = ijvm_jsl::boot(VmOptions::isolated());
        let a = vm.create_isolate("a");
        let v = build(&mut vm, a, &tree);
        let mut wire = Vec::new();
        serialize_value(&vm, v, &mut wire);
        if wire.is_empty() {
            return Ok(());
        }
        for (pos, delta) in flips {
            let i = pos % wire.len();
            wire[i] = wire[i].wrapping_add(delta);
        }
        let loader = vm.loader_of(a).unwrap();
        // May succeed (benign flip) or fail cleanly — must not panic.
        let _ = deserialize_value(&mut vm, &wire, a, loader);
    }
}
