//! Offline stand-in for [loom](https://github.com/tokio-rs/loom).
//!
//! The build environment has no crates.io access, so the concurrency
//! models in `ijvm-core` (compiled under `--cfg loom`) resolve their
//! `loom` dependency to this crate. It mirrors the subset of loom's API
//! the models use, with one honest difference in semantics:
//!
//! * **Real loom** explores every legal interleaving of a bounded model
//!   exhaustively (DPOR over a modeled memory order).
//! * **This stand-in** runs the model body many times on real OS
//!   threads, injecting randomized preemption points at every wrapped
//!   atomic/lock operation — a stress harness, not a proof.
//!
//! The API-compatible surface means an environment *with* network
//! access can swap the workspace `loom` entry for the real crate and
//! the models upgrade from stress testing to exhaustive checking
//! without a source change. Until then the models still earn their
//! keep: each iteration shuffles thread schedules, so ordering bugs in
//! the protocols under test surface as (reproducibly re-runnable)
//! assertion failures long before they would in CI's fixed schedules.
//!
//! Iteration count: `LOOM_MAX_PREEMPTIONS` is ignored; set
//! `LOOM_STUB_ITERS` (default 64) to scale the stress budget.

use std::cell::Cell;

/// Runs `f` repeatedly (default 64 iterations, `LOOM_STUB_ITERS`
/// overrides), with randomized preemption injected at every operation
/// on this crate's sync wrappers. Signature-compatible with
/// `loom::model`.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(64)
        .max(1);
    for seed in 0..iters {
        // Different base seeds tilt the per-thread preemption streams so
        // iterations do not all replay the same lucky schedule.
        PREEMPT_SEED.with(|s| s.set(0x9E37_79B9u32.wrapping_mul(seed + 1) | 1));
        f();
    }
}

thread_local! {
    static PREEMPT_SEED: Cell<u32> = const { Cell::new(0x2545_F491) };
}

/// A cheap xorshift coin flip; roughly 1-in-4 operations yield the OS
/// scheduler, which is what actually shakes interleavings loose on a
/// multi-core host (and forces requeuing even on one core).
fn maybe_preempt() {
    PREEMPT_SEED.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        s.set(x);
        if x & 3 == 0 {
            std::thread::yield_now();
        }
    });
}

pub mod thread {
    //! Preemption-seeded wrapper over [`std::thread`].

    /// Spawns a thread whose preemption stream is seeded from the
    /// spawner's, so sibling threads diverge.
    pub fn spawn<F, T>(f: F) -> std::thread::JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let seed = super::PREEMPT_SEED.with(|s| s.get());
        std::thread::spawn(move || {
            super::PREEMPT_SEED.with(|s| s.set(seed.rotate_left(7) ^ 0xB529_7A4D));
            f()
        })
    }

    pub use std::thread::{yield_now, JoinHandle};
}

pub mod hint {
    /// Loom's explicit schedule point; here a direct OS yield.
    pub fn spin_loop() {
        std::thread::yield_now();
    }
}

pub mod sync {
    //! Preemption-injecting wrappers over [`std::sync`] primitives.

    pub use std::sync::Arc;

    /// [`std::sync::Mutex`] with a preemption point before each lock
    /// acquisition (the spot where real loom branches its schedules).
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
            super::maybe_preempt();
            self.0.lock()
        }

        pub fn try_lock(&self) -> std::sync::TryLockResult<std::sync::MutexGuard<'_, T>> {
            self.0.try_lock()
        }

        pub fn into_inner(self) -> std::sync::LockResult<T> {
            self.0.into_inner()
        }
    }

    /// [`std::sync::Condvar`] with preemption points around waits and
    /// notifies.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub fn new() -> Condvar {
            Condvar(std::sync::Condvar::new())
        }

        pub fn wait<'a, T>(
            &self,
            guard: std::sync::MutexGuard<'a, T>,
        ) -> std::sync::LockResult<std::sync::MutexGuard<'a, T>> {
            self.0.wait(guard)
        }

        pub fn wait_timeout<'a, T>(
            &self,
            guard: std::sync::MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> std::sync::LockResult<(std::sync::MutexGuard<'a, T>, std::sync::WaitTimeoutResult)>
        {
            self.0.wait_timeout(guard, dur)
        }

        pub fn notify_one(&self) {
            super::maybe_preempt();
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            super::maybe_preempt();
            self.0.notify_all();
        }
    }

    pub mod atomic {
        //! Atomics with a preemption point before every access —
        //! loom's schedule-branch points, approximated.

        pub use std::sync::atomic::Ordering;

        macro_rules! stub_atomic {
            ($name:ident, $std:ty, $val:ty) => {
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    pub const fn new(v: $val) -> $name {
                        $name(<$std>::new(v))
                    }

                    pub fn load(&self, order: Ordering) -> $val {
                        crate::maybe_preempt();
                        self.0.load(order)
                    }

                    pub fn store(&self, v: $val, order: Ordering) {
                        crate::maybe_preempt();
                        self.0.store(v, order);
                    }

                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        crate::maybe_preempt();
                        self.0.swap(v, order)
                    }

                    pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                        crate::maybe_preempt();
                        self.0.fetch_add(v, order)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        crate::maybe_preempt();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        stub_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        stub_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        stub_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

        /// `AtomicBool` (separate from the macro: no `fetch_add`).
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub const fn new(v: bool) -> AtomicBool {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }

            pub fn load(&self, order: Ordering) -> bool {
                crate::maybe_preempt();
                self.0.load(order)
            }

            pub fn store(&self, v: bool, order: Ordering) {
                crate::maybe_preempt();
                self.0.store(v, order);
            }

            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                crate::maybe_preempt();
                self.0.swap(v, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_and_threads_join() {
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        super::model(move || {
            let counter = Arc::new(Mutex::new(0u32));
            let c = Arc::clone(&counter);
            let t = super::thread::spawn(move || {
                *c.lock().unwrap() += 1;
            });
            *counter.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*counter.lock().unwrap(), 2);
            runs2.fetch_add(1, Ordering::Relaxed);
        });
        assert!(runs.load(Ordering::Relaxed) >= 1, "model body ran");
    }
}
