//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's property tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_filter` / `prop_recursive`, range and tuple
//! strategies, `any::<T>()`, a regex-subset string strategy, the
//! [`collection::vec`] and [`option::of`] combinators, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!` and `prop_assert_eq!` macros.
//!
//! Inputs are generated from a deterministic per-test SplitMix64 stream
//! (seeded by the test name), so failures reproduce across runs. Shrinking
//! is not implemented: a failing case panics with the case number, and the
//! generated values can be recovered by re-running under a debugger or with
//! `eprintln!` in the test body.

use std::fmt;
use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic SplitMix64 generator.
pub struct TestRng(u64);

impl TestRng {
    fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

/// A generator of test inputs (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Mapped<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Mapped { inner: self, f }
    }

    /// Rejects values failing `f`, retrying (bounded) until one passes.
    fn prop_filter<R, F>(self, _whence: R, f: F) -> Filtered<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filtered { inner: self, f }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// nested level and returns the expanded strategy. `depth` bounds the
    /// nesting; the size/branch hints are accepted for API compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let expanded = recurse(cur).boxed();
            cur = BoxedStrategy::new(move |rng| {
                // Recurse with decreasing probability so trees stay small.
                if rng.below(3) == 0 {
                    leaf.generate_value(rng)
                } else {
                    expanded.generate_value(rng)
                }
            });
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.generate_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> BoxedStrategy<V> {
    fn new(f: impl Fn(&mut TestRng) -> V + 'static) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::new(f))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Mapped<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Mapped<S, F> {
    type Value = U;
    fn generate_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate_value(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filtered<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filtered<S, F> {
    type Value = S::Value;
    fn generate_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive candidates");
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate_value(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: ranges, any, tuples, strings
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles spanning a wide magnitude range.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag).min(f64::MAX / 2.0)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

// A `&str` strategy interprets the string as a small regex subset:
// literal characters, `[...]` classes with ranges, `\PC` (any printable
// ASCII), and `{n}` / `{n,m}` repetition. This covers the patterns used by
// the workspace's tests; unsupported syntax generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Class(Vec<char>),
    AnyPrintable,
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Atom::Class(set)
            }
            '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' => {
                i += 3;
                Atom::AnyPrintable
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        // Optional repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
            let Some(close) = close else {
                out.push('{');
                i += 1;
                continue;
            };
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().unwrap_or(0),
                    hi.trim().parse::<usize>().unwrap_or(8),
                ),
                None => {
                    let n = body.trim().parse::<usize>().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            match &atom {
                Atom::Class(set) if !set.is_empty() => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                Atom::Class(_) => {}
                Atom::AnyPrintable => {
                    out.push((b' ' + rng.below(95) as u8) as char);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Collection and option combinators
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                len: self.len.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate_value(rng);
            (0..n).map(|_| self.elem.generate_value(rng)).collect()
        }
    }

    /// Generates vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        vec_impl(elem, len)
    }

    fn vec_impl<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            OptionStrategy(self.0.clone())
        }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate_value(rng))
            }
        }
    }

    /// Generates `None` a quarter of the time, otherwise `Some`.
    pub fn of<S: Strategy>(elem: S) -> OptionStrategy<S> {
        OptionStrategy(elem)
    }
}

// ---------------------------------------------------------------------
// Runner, config, errors
// ---------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one `proptest!`-declared test.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner with a name-derived deterministic seed.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        TestRunner {
            config,
            rng: TestRng::from_name(name),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The case-generation RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property-style assertion: fails the current case without panicking the
/// generator loop directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Property-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} != {:?}: {}",
            a, b, format!($($fmt)+)
        );
    }};
}

/// Declares property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                $(let $pat = $crate::Strategy::generate_value(&($strat), runner.rng());)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed on case {}/{}: {}", case + 1, runner.cases(), e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
