//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a plain wall-clock measurement loop.
//! Results are printed as `name: median <t> (n samples of <k> iters)` lines,
//! which is enough for the paper-figure drivers to compare configurations.

// A benchmark harness is wall-clock measurement; the workspace clippy
// ban (clippy.toml) is lifted for the whole crate.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line configuration is not
    /// supported by the stand-in.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its median sample time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: also calibrates iterations-per-sample.
        let warm_start = Instant::now();
        let mut per_call = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up_time {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_call = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        }
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{id}: median {median:?} ({} samples of {iters} iters)",
            self.name, self.sample_size
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identity function that defeats constant-folding of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
