//! Property-based tests for the class-file format.

use ijvm_classfile::{
    builder::ClassBuilder,
    descriptor::{BaseType, FieldType, MethodDescriptor},
    reader::read_class,
    writer::write_class,
    AccessFlags, Opcode,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Descriptors
// ---------------------------------------------------------------------

fn arb_field_type() -> impl Strategy<Value = FieldType> {
    let leaf = prop_oneof![
        Just(FieldType::Base(BaseType::Boolean)),
        Just(FieldType::Base(BaseType::Byte)),
        Just(FieldType::Base(BaseType::Char)),
        Just(FieldType::Base(BaseType::Short)),
        Just(FieldType::Base(BaseType::Int)),
        Just(FieldType::Base(BaseType::Long)),
        Just(FieldType::Base(BaseType::Float)),
        Just(FieldType::Base(BaseType::Double)),
        "[a-zA-Z][a-zA-Z0-9/$]{0,30}".prop_map(FieldType::Object),
    ];
    leaf.prop_recursive(3, 8, 2, |inner| {
        inner.prop_map(|t| FieldType::Array(Box::new(t)))
    })
}

proptest! {
    #[test]
    fn field_descriptors_round_trip(t in arb_field_type()) {
        let text = t.to_string();
        let parsed = FieldType::parse(&text).expect("own output parses");
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn method_descriptors_round_trip(
        params in proptest::collection::vec(arb_field_type(), 0..6),
        ret in proptest::option::of(arb_field_type()),
    ) {
        let d = MethodDescriptor { params, ret };
        let text = d.to_string();
        let parsed = MethodDescriptor::parse(&text).expect("own output parses");
        prop_assert_eq!(parsed, d);
    }

    #[test]
    fn descriptor_parser_never_panics(s in "\\PC{0,40}") {
        let _ = FieldType::parse(&s);
        let _ = MethodDescriptor::parse(&s);
    }
}

// ---------------------------------------------------------------------
// Binary round trips + mutation robustness
// ---------------------------------------------------------------------

fn sample_class(fields: u8, consts: &[i32]) -> ijvm_classfile::ClassFile {
    let mut cb = ClassBuilder::new("prop/Sample", "java/lang/Object", AccessFlags::PUBLIC);
    for i in 0..fields {
        let flags = if i % 2 == 0 {
            AccessFlags::PUBLIC | AccessFlags::STATIC
        } else {
            AccessFlags::PRIVATE
        };
        cb.field(
            &format!("f{i}"),
            if i % 3 == 0 {
                "I"
            } else {
                "Ljava/lang/String;"
            },
            flags,
        );
    }
    let mut m = cb.method("sum", "()I", AccessFlags::PUBLIC | AccessFlags::STATIC);
    m.const_int(0);
    for &c in consts {
        m.const_int(c);
        m.op(Opcode::Iadd);
    }
    m.op(Opcode::Ireturn);
    m.done().expect("assembles");
    cb.build().expect("builds")
}

proptest! {
    #[test]
    fn class_files_round_trip(fields in 0u8..12, consts in proptest::collection::vec(any::<i32>(), 0..20)) {
        let c = sample_class(fields, &consts);
        let bytes = write_class(&c).expect("writes");
        let back = read_class(&bytes).expect("reads");
        prop_assert_eq!(c.name().unwrap(), back.name().unwrap());
        prop_assert_eq!(c.fields.len(), back.fields.len());
        prop_assert_eq!(
            c.find_method("sum", "()I").unwrap().code.as_ref(),
            back.find_method("sum", "()I").unwrap().code.as_ref()
        );
        // Idempotent re-serialization.
        prop_assert_eq!(bytes, write_class(&back).expect("re-writes"));
    }

    #[test]
    fn reader_survives_single_byte_corruption(
        consts in proptest::collection::vec(any::<i32>(), 1..8),
        pos_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let c = sample_class(3, &consts);
        let mut bytes = write_class(&c).expect("writes");
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = bytes[pos].wrapping_add(delta);
        // Must never panic; may succeed (benign byte) or fail cleanly.
        let _ = read_class(&bytes);
    }

    #[test]
    fn reader_survives_truncation(
        consts in proptest::collection::vec(any::<i32>(), 1..8),
        keep_frac in 0.0f64..1.0,
    ) {
        let c = sample_class(2, &consts);
        let bytes = write_class(&c).expect("writes");
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(read_class(&bytes[..keep]).is_err());
    }
}

// ---------------------------------------------------------------------
// max_stack computation matches a reference simulation
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn max_stack_is_exact_for_straightline_code(pushes in 1usize..60) {
        let mut cb = ClassBuilder::new("prop/Stack", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("deep", "()I", AccessFlags::STATIC);
        for i in 0..pushes {
            m.const_int(i as i32);
        }
        for _ in 0..pushes - 1 {
            m.op(Opcode::Iadd);
        }
        m.op(Opcode::Ireturn);
        m.done().expect("assembles");
        let c = cb.build().expect("builds");
        let code = c.find_method("deep", "()I").unwrap().code.as_ref().unwrap();
        prop_assert_eq!(code.max_stack as usize, pushes);
    }
}
