//! Assembler API: build class files programmatically with label-based
//! branches and automatic `max_stack` computation.
//!
//! ```
//! use ijvm_classfile::{AccessFlags, ClassBuilder, Opcode};
//!
//! let mut cb = ClassBuilder::new("demo/Adder", "java/lang/Object", AccessFlags::PUBLIC);
//! let mut m = cb.method("add", "(II)I", AccessFlags::PUBLIC | AccessFlags::STATIC);
//! m.iload(0);
//! m.iload(1);
//! m.op(Opcode::Iadd);
//! m.op(Opcode::Ireturn);
//! m.done().unwrap();
//! let class = cb.build().unwrap();
//! assert_eq!(class.name().unwrap(), "demo/Adder");
//! ```

use crate::class::{Attribute, ClassFile, Code, ExceptionTableEntry, FieldInfo, MethodInfo};
use crate::constant::ConstPool;
use crate::descriptor::{BaseType, MethodDescriptor};
use crate::error::{ClassFileError, Result};
use crate::flags::AccessFlags;
use crate::instruction::Instruction;
use crate::opcode::Opcode;

/// A forward- or backward-referencing code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builds one class file.
#[derive(Debug)]
pub struct ClassBuilder {
    name: String,
    super_name: Option<String>,
    interfaces: Vec<String>,
    access: AccessFlags,
    pool: ConstPool,
    fields: Vec<FieldInfo>,
    methods: Vec<MethodInfo>,
}

impl ClassBuilder {
    /// Starts a class named `name` extending `super_name`.
    /// Use [`ClassBuilder::new_root`] only for `java/lang/Object` itself.
    pub fn new(name: &str, super_name: &str, access: AccessFlags) -> ClassBuilder {
        ClassBuilder {
            name: name.to_owned(),
            super_name: Some(super_name.to_owned()),
            interfaces: Vec::new(),
            access,
            pool: ConstPool::new(),
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Starts the root class (`java/lang/Object`), which has no superclass.
    pub fn new_root(name: &str, access: AccessFlags) -> ClassBuilder {
        ClassBuilder {
            super_name: None,
            ..ClassBuilder::new(name, "", access)
        }
    }

    /// Starts an interface (implies the `INTERFACE` and `ABSTRACT` flags).
    pub fn new_interface(name: &str) -> ClassBuilder {
        ClassBuilder::new(
            name,
            "java/lang/Object",
            AccessFlags::PUBLIC | AccessFlags::INTERFACE | AccessFlags::ABSTRACT,
        )
    }

    /// Declares that this class implements `interface_name`.
    pub fn implements(&mut self, interface_name: &str) -> &mut Self {
        self.interfaces.push(interface_name.to_owned());
        self
    }

    /// Declares a field.
    pub fn field(&mut self, name: &str, descriptor: &str, access: AccessFlags) -> &mut Self {
        let name = self.pool.utf8(name).expect("pool limit");
        let descriptor = self.pool.utf8(descriptor).expect("pool limit");
        self.fields.push(FieldInfo {
            access,
            name,
            descriptor,
        });
        self
    }

    /// Starts a method with a bytecode body.
    ///
    /// `max_locals` is initialized from the parameter count (plus the
    /// receiver for instance methods); grow it with
    /// [`MethodBuilder::alloc_local`] or [`MethodBuilder::ensure_locals`].
    pub fn method(
        &mut self,
        name: &str,
        descriptor: &str,
        access: AccessFlags,
    ) -> MethodBuilder<'_> {
        let desc = MethodDescriptor::parse(descriptor)
            .unwrap_or_else(|e| panic!("bad method descriptor {descriptor:?}: {e}"));
        let mut max_locals = desc.param_slots() as u16;
        if !access.is_static() {
            max_locals += 1;
        }
        MethodBuilder {
            cb: self,
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
            access,
            insns: Vec::new(),
            labels: Vec::new(),
            handlers: Vec::new(),
            max_locals,
        }
    }

    /// Declares a native method (no bytecode body; bound by the host VM).
    pub fn native_method(
        &mut self,
        name: &str,
        descriptor: &str,
        access: AccessFlags,
    ) -> &mut Self {
        let name = self.pool.utf8(name).expect("pool limit");
        let descriptor_idx = self.pool.utf8(descriptor).expect("pool limit");
        self.methods.push(MethodInfo {
            access: access | AccessFlags::NATIVE,
            name,
            descriptor: descriptor_idx,
            code: None,
        });
        self
    }

    /// Declares an abstract method (interfaces use this).
    pub fn abstract_method(
        &mut self,
        name: &str,
        descriptor: &str,
        access: AccessFlags,
    ) -> &mut Self {
        let name = self.pool.utf8(name).expect("pool limit");
        let descriptor_idx = self.pool.utf8(descriptor).expect("pool limit");
        self.methods.push(MethodInfo {
            access: access | AccessFlags::ABSTRACT,
            name,
            descriptor: descriptor_idx,
            code: None,
        });
        self
    }

    /// Finishes the class, validating its structure.
    pub fn build(mut self) -> Result<ClassFile> {
        let this_class = self.pool.class(&self.name)?;
        let super_class = match &self.super_name {
            Some(s) => self.pool.class(s)?,
            None => 0,
        };
        let interfaces = self
            .interfaces
            .iter()
            .map(|i| self.pool.class(i))
            .collect::<Result<Vec<_>>>()?;
        let cf = ClassFile {
            minor_version: crate::MINOR_VERSION,
            major_version: crate::MAJOR_VERSION,
            pool: self.pool,
            access: self.access,
            this_class,
            super_class,
            interfaces,
            fields: self.fields,
            methods: self.methods,
            attributes: Vec::<Attribute>::new(),
        };
        cf.validate()?;
        Ok(cf)
    }
}

struct HandlerSpec {
    start: Label,
    end: Label,
    handler: Label,
    catch_type: Option<String>,
}

/// Builds the bytecode body of one method. Obtained from
/// [`ClassBuilder::method`]; call [`MethodBuilder::done`] to finish.
pub struct MethodBuilder<'a> {
    cb: &'a mut ClassBuilder,
    name: String,
    descriptor: String,
    access: AccessFlags,
    insns: Vec<Instruction>,
    /// `labels[l]` = instruction index the label is bound to.
    labels: Vec<Option<usize>>,
    handlers: Vec<HandlerSpec>,
    max_locals: u16,
}

impl MethodBuilder<'_> {
    // ---- labels ----------------------------------------------------------

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the next emitted instruction.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0 as usize] = Some(self.insns.len());
    }

    /// Creates a label already bound to the next instruction.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    // ---- locals ----------------------------------------------------------

    /// Reserves one more local slot, returning its index.
    pub fn alloc_local(&mut self) -> u16 {
        let idx = self.max_locals;
        self.max_locals += 1;
        idx
    }

    /// Ensures at least `n` local slots exist.
    pub fn ensure_locals(&mut self, n: u16) {
        self.max_locals = self.max_locals.max(n);
    }

    /// Current number of local slots.
    pub fn max_locals(&self) -> u16 {
        self.max_locals
    }

    // ---- raw emission ----------------------------------------------------

    /// Emits an operand-less instruction.
    pub fn op(&mut self, op: Opcode) -> &mut Self {
        self.insns.push(Instruction::Simple(op));
        self
    }

    /// Emits a prebuilt instruction.
    pub fn raw(&mut self, insn: Instruction) -> &mut Self {
        self.insns.push(insn);
        self
    }

    // ---- constants -------------------------------------------------------

    /// Pushes an `int` constant using the shortest encoding.
    pub fn const_int(&mut self, v: i32) -> &mut Self {
        let insn = match v {
            -1 => Instruction::Simple(Opcode::IconstM1),
            0 => Instruction::Simple(Opcode::Iconst0),
            1 => Instruction::Simple(Opcode::Iconst1),
            2 => Instruction::Simple(Opcode::Iconst2),
            3 => Instruction::Simple(Opcode::Iconst3),
            4 => Instruction::Simple(Opcode::Iconst4),
            5 => Instruction::Simple(Opcode::Iconst5),
            v if (-128..=127).contains(&v) => Instruction::Bipush(v as i8),
            v if (-32768..=32767).contains(&v) => Instruction::Sipush(v as i16),
            v => Instruction::Ldc(self.cb.pool.integer(v).expect("pool limit")),
        };
        self.insns.push(insn);
        self
    }

    /// Pushes a `long` constant.
    pub fn const_long(&mut self, v: i64) -> &mut Self {
        let insn = match v {
            0 => Instruction::Simple(Opcode::Lconst0),
            1 => Instruction::Simple(Opcode::Lconst1),
            v => Instruction::Ldc(self.cb.pool.long(v).expect("pool limit")),
        };
        self.insns.push(insn);
        self
    }

    /// Pushes a `float` constant.
    pub fn const_float(&mut self, v: f32) -> &mut Self {
        let insn = if v.to_bits() == 0.0f32.to_bits() {
            Instruction::Simple(Opcode::Fconst0)
        } else if v == 1.0 {
            Instruction::Simple(Opcode::Fconst1)
        } else if v == 2.0 {
            Instruction::Simple(Opcode::Fconst2)
        } else {
            Instruction::Ldc(self.cb.pool.float(v).expect("pool limit"))
        };
        self.insns.push(insn);
        self
    }

    /// Pushes a `double` constant.
    pub fn const_double(&mut self, v: f64) -> &mut Self {
        let insn = if v.to_bits() == 0.0f64.to_bits() {
            Instruction::Simple(Opcode::Dconst0)
        } else if v == 1.0 {
            Instruction::Simple(Opcode::Dconst1)
        } else {
            Instruction::Ldc(self.cb.pool.double(v).expect("pool limit"))
        };
        self.insns.push(insn);
        self
    }

    /// Pushes a string literal.
    pub fn const_string(&mut self, s: &str) -> &mut Self {
        let idx = self.cb.pool.string(s).expect("pool limit");
        self.insns.push(Instruction::Ldc(idx));
        self
    }

    /// Pushes `null`.
    pub fn const_null(&mut self) -> &mut Self {
        self.op(Opcode::AconstNull)
    }

    // ---- locals access ----------------------------------------------------

    /// `iload n`
    pub fn iload(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Iload, n)
    }
    /// `lload n`
    pub fn lload(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Lload, n)
    }
    /// `fload n`
    pub fn fload(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Fload, n)
    }
    /// `dload n`
    pub fn dload(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Dload, n)
    }
    /// `aload n`
    pub fn aload(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Aload, n)
    }
    /// `istore n`
    pub fn istore(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Istore, n)
    }
    /// `lstore n`
    pub fn lstore(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Lstore, n)
    }
    /// `fstore n`
    pub fn fstore(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Fstore, n)
    }
    /// `dstore n`
    pub fn dstore(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Dstore, n)
    }
    /// `astore n`
    pub fn astore(&mut self, n: u16) -> &mut Self {
        self.local(Opcode::Astore, n)
    }

    fn local(&mut self, op: Opcode, n: u16) -> &mut Self {
        self.ensure_locals(n + 1);
        self.insns.push(Instruction::Local(op, n));
        self
    }

    /// `iinc local, delta`
    pub fn iinc(&mut self, local: u16, delta: i16) -> &mut Self {
        self.ensure_locals(local + 1);
        self.insns.push(Instruction::Iinc { local, delta });
        self
    }

    // ---- control flow ------------------------------------------------------

    /// Emits a branch to `target`.
    pub fn branch(&mut self, op: Opcode, target: Label) -> &mut Self {
        debug_assert!(op.is_branch(), "{op:?} is not a branch");
        self.insns.push(Instruction::Branch(op, target.0));
        self
    }

    /// `goto target`
    pub fn goto(&mut self, target: Label) -> &mut Self {
        self.branch(Opcode::Goto, target)
    }

    /// Emits a `tableswitch` over consecutive keys starting at `low`.
    pub fn tableswitch(&mut self, default: Label, low: i32, targets: &[Label]) -> &mut Self {
        self.insns.push(Instruction::Tableswitch {
            default: default.0,
            low,
            targets: targets.iter().map(|l| l.0).collect(),
        });
        self
    }

    /// Emits a `lookupswitch` over sorted `(key, label)` pairs.
    pub fn lookupswitch(&mut self, default: Label, pairs: &[(i32, Label)]) -> &mut Self {
        self.insns.push(Instruction::Lookupswitch {
            default: default.0,
            pairs: pairs.iter().map(|(k, l)| (*k, l.0)).collect(),
        });
        self
    }

    // ---- members ------------------------------------------------------------

    /// `getstatic class.name : descriptor`
    pub fn getstatic(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .pool
            .field_ref(class, name, descriptor)
            .expect("pool limit");
        self.insns.push(Instruction::Field(Opcode::Getstatic, idx));
        self
    }

    /// `putstatic class.name : descriptor`
    pub fn putstatic(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .pool
            .field_ref(class, name, descriptor)
            .expect("pool limit");
        self.insns.push(Instruction::Field(Opcode::Putstatic, idx));
        self
    }

    /// `getfield class.name : descriptor`
    pub fn getfield(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .pool
            .field_ref(class, name, descriptor)
            .expect("pool limit");
        self.insns.push(Instruction::Field(Opcode::Getfield, idx));
        self
    }

    /// `putfield class.name : descriptor`
    pub fn putfield(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .pool
            .field_ref(class, name, descriptor)
            .expect("pool limit");
        self.insns.push(Instruction::Field(Opcode::Putfield, idx));
        self
    }

    /// `invokevirtual class.name descriptor`
    pub fn invokevirtual(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .pool
            .method_ref(class, name, descriptor)
            .expect("pool limit");
        self.insns
            .push(Instruction::Invoke(Opcode::Invokevirtual, idx));
        self
    }

    /// `invokespecial class.name descriptor` (constructors, super calls).
    pub fn invokespecial(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .pool
            .method_ref(class, name, descriptor)
            .expect("pool limit");
        self.insns
            .push(Instruction::Invoke(Opcode::Invokespecial, idx));
        self
    }

    /// `invokestatic class.name descriptor`
    pub fn invokestatic(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .pool
            .method_ref(class, name, descriptor)
            .expect("pool limit");
        self.insns
            .push(Instruction::Invoke(Opcode::Invokestatic, idx));
        self
    }

    /// `invokeinterface class.name descriptor`
    pub fn invokeinterface(&mut self, class: &str, name: &str, descriptor: &str) -> &mut Self {
        let idx = self
            .cb
            .pool
            .interface_method_ref(class, name, descriptor)
            .expect("pool limit");
        self.insns
            .push(Instruction::Invoke(Opcode::Invokeinterface, idx));
        self
    }

    // ---- objects and arrays ---------------------------------------------------

    /// `new class`
    pub fn new_object(&mut self, class: &str) -> &mut Self {
        let idx = self.cb.pool.class(class).expect("pool limit");
        self.insns.push(Instruction::New(idx));
        self
    }

    /// `newarray <primitive>`
    pub fn newarray(&mut self, elem: BaseType) -> &mut Self {
        self.insns.push(Instruction::Newarray(elem.newarray_code()));
        self
    }

    /// `anewarray class`
    pub fn anewarray(&mut self, class: &str) -> &mut Self {
        let idx = self.cb.pool.class(class).expect("pool limit");
        self.insns.push(Instruction::Anewarray(idx));
        self
    }

    /// `checkcast class`
    pub fn checkcast(&mut self, class: &str) -> &mut Self {
        let idx = self.cb.pool.class(class).expect("pool limit");
        self.insns.push(Instruction::Checkcast(idx));
        self
    }

    /// `instanceof class`
    pub fn instanceof(&mut self, class: &str) -> &mut Self {
        let idx = self.cb.pool.class(class).expect("pool limit");
        self.insns.push(Instruction::Instanceof(idx));
        self
    }

    // ---- exception handling ------------------------------------------------

    /// Registers an exception handler for the range `[start, end)`.
    /// `catch_type: None` catches everything (`finally`).
    pub fn exception_handler(
        &mut self,
        start: Label,
        end: Label,
        handler: Label,
        catch_type: Option<&str>,
    ) -> &mut Self {
        self.handlers.push(HandlerSpec {
            start,
            end,
            handler,
            catch_type: catch_type.map(str::to_owned),
        });
        self
    }

    // ---- finish ---------------------------------------------------------------

    /// Assembles the method: resolves labels, encodes bytecode, computes
    /// `max_stack`, and appends the method to the class.
    pub fn done(self) -> Result<()> {
        let MethodBuilder {
            cb,
            name,
            descriptor,
            access,
            insns,
            labels,
            handlers,
            max_locals,
        } = self;

        if insns.is_empty() {
            return Err(ClassFileError::Builder(format!(
                "method {name} has no code"
            )));
        }

        // Pass 1: compute the byte offset of every instruction.
        let mut offsets = Vec::with_capacity(insns.len());
        let mut pc = 0u32;
        for insn in &insns {
            offsets.push(pc);
            pc += encoded_size(insn, pc);
        }
        let code_len = pc;
        if code_len > u16::MAX as u32 * 4 {
            return Err(ClassFileError::LimitExceeded("code length"));
        }

        let resolve = |label_id: u32| -> Result<u32> {
            let idx = labels
                .get(label_id as usize)
                .copied()
                .flatten()
                .ok_or_else(|| ClassFileError::Builder(format!("unbound label L{label_id}")))?;
            Ok(if idx == insns.len() {
                code_len
            } else {
                offsets[idx]
            })
        };

        // Pass 2: encode with resolved targets.
        let mut code = Vec::with_capacity(code_len as usize);
        for (i, insn) in insns.iter().enumerate() {
            encode(insn, offsets[i], &mut code, &resolve)?;
        }
        debug_assert_eq!(code.len() as u32, code_len);

        // Exception table.
        let mut exception_table = Vec::with_capacity(handlers.len());
        for h in &handlers {
            let catch_type = match &h.catch_type {
                Some(c) => cb.pool.class(c)?,
                None => 0,
            };
            exception_table.push(ExceptionTableEntry {
                start_pc: resolve(h.start.0)?,
                end_pc: resolve(h.end.0)?,
                handler_pc: resolve(h.handler.0)?,
                catch_type,
            });
        }

        // Pass 3: max_stack via worklist dataflow over the decoded stream.
        let max_stack = compute_max_stack(&code, &exception_table, &cb.pool, &name)?;

        let name_idx = cb.pool.utf8(&name)?;
        let desc_idx = cb.pool.utf8(&descriptor)?;
        cb.methods.push(MethodInfo {
            access,
            name: name_idx,
            descriptor: desc_idx,
            code: Some(Code {
                max_stack,
                max_locals,
                code,
                exception_table,
            }),
        });
        Ok(())
    }
}

/// Size in bytes of `insn` when encoded at offset `pc`.
fn encoded_size(insn: &Instruction, pc: u32) -> u32 {
    match insn {
        Instruction::Simple(_) => 1,
        Instruction::Bipush(_) => 2,
        Instruction::Sipush(_) => 3,
        Instruction::Ldc(idx) => {
            if *idx <= u8::MAX as u16 {
                2
            } else {
                3
            }
        }
        Instruction::Local(_, n) => {
            if *n <= 3 {
                1
            } else {
                2
            }
        }
        Instruction::Iinc { .. } => 3,
        Instruction::Branch(..) => 3,
        Instruction::Tableswitch { targets, .. } => {
            let pad = pad_after(pc);
            1 + pad + 12 + 4 * targets.len() as u32
        }
        Instruction::Lookupswitch { pairs, .. } => {
            let pad = pad_after(pc);
            1 + pad + 8 + 8 * pairs.len() as u32
        }
        Instruction::Field(..) => 3,
        Instruction::Invoke(op, _) => {
            if *op == Opcode::Invokeinterface {
                5
            } else {
                3
            }
        }
        Instruction::New(_) => 3,
        Instruction::Newarray(_) => 2,
        Instruction::Anewarray(_) => 3,
        Instruction::Checkcast(_) => 3,
        Instruction::Instanceof(_) => 3,
    }
}

/// Padding bytes needed after the opcode byte at `pc` to 4-align.
fn pad_after(pc: u32) -> u32 {
    (4 - ((pc + 1) % 4)) % 4
}

fn encode(
    insn: &Instruction,
    pc: u32,
    out: &mut Vec<u8>,
    resolve: &dyn Fn(u32) -> Result<u32>,
) -> Result<()> {
    let branch16 = |target: u32| -> Result<[u8; 2]> {
        let off = target as i64 - pc as i64;
        let off16 = i16::try_from(off).map_err(|_| ClassFileError::BadBranchTarget {
            at: pc,
            target: target as i64,
        })?;
        Ok((off16 as u16).to_be_bytes())
    };
    match insn {
        Instruction::Simple(op) => out.push(op.as_byte()),
        Instruction::Bipush(v) => {
            out.push(Opcode::Bipush.as_byte());
            out.push(*v as u8);
        }
        Instruction::Sipush(v) => {
            out.push(Opcode::Sipush.as_byte());
            out.extend_from_slice(&(*v as u16).to_be_bytes());
        }
        Instruction::Ldc(idx) => {
            if *idx <= u8::MAX as u16 {
                out.push(Opcode::Ldc.as_byte());
                out.push(*idx as u8);
            } else {
                out.push(Opcode::LdcW.as_byte());
                out.extend_from_slice(&idx.to_be_bytes());
            }
        }
        Instruction::Local(op, n) => {
            use Opcode as O;
            if *n <= 3 {
                let base = match op {
                    O::Iload => O::Iload0,
                    O::Lload => O::Lload0,
                    O::Fload => O::Fload0,
                    O::Dload => O::Dload0,
                    O::Aload => O::Aload0,
                    O::Istore => O::Istore0,
                    O::Lstore => O::Lstore0,
                    O::Fstore => O::Fstore0,
                    O::Dstore => O::Dstore0,
                    O::Astore => O::Astore0,
                    _ => return Err(ClassFileError::Builder(format!("bad local op {op:?}"))),
                };
                out.push(base.as_byte() + *n as u8);
            } else {
                if *n > u8::MAX as u16 {
                    return Err(ClassFileError::LimitExceeded("local index"));
                }
                out.push(op.as_byte());
                out.push(*n as u8);
            }
        }
        Instruction::Iinc { local, delta } => {
            if *local > u8::MAX as u16 {
                return Err(ClassFileError::LimitExceeded("iinc local index"));
            }
            if *delta < i8::MIN as i16 || *delta > i8::MAX as i16 {
                return Err(ClassFileError::LimitExceeded("iinc delta"));
            }
            out.push(Opcode::Iinc.as_byte());
            out.push(*local as u8);
            out.push(*delta as i8 as u8);
        }
        Instruction::Branch(op, label) => {
            let target = resolve(*label)?;
            out.push(op.as_byte());
            out.extend_from_slice(&branch16(target)?);
        }
        Instruction::Tableswitch {
            default,
            low,
            targets,
        } => {
            out.push(Opcode::Tableswitch.as_byte());
            for _ in 0..pad_after(pc) {
                out.push(0);
            }
            let d = resolve(*default)?;
            out.extend_from_slice(&(d as i64 - pc as i64).to_be_bytes()[4..]);
            out.extend_from_slice(&low.to_be_bytes());
            let high = *low + targets.len() as i32 - 1;
            out.extend_from_slice(&high.to_be_bytes());
            for t in targets {
                let t = resolve(*t)?;
                out.extend_from_slice(&((t as i64 - pc as i64) as i32).to_be_bytes());
            }
        }
        Instruction::Lookupswitch { default, pairs } => {
            out.push(Opcode::Lookupswitch.as_byte());
            for _ in 0..pad_after(pc) {
                out.push(0);
            }
            let d = resolve(*default)?;
            out.extend_from_slice(&((d as i64 - pc as i64) as i32).to_be_bytes());
            out.extend_from_slice(&(pairs.len() as u32).to_be_bytes());
            let mut sorted = pairs.clone();
            sorted.sort_by_key(|(k, _)| *k);
            for (k, t) in sorted {
                let t = resolve(t)?;
                out.extend_from_slice(&k.to_be_bytes());
                out.extend_from_slice(&((t as i64 - pc as i64) as i32).to_be_bytes());
            }
        }
        Instruction::Field(op, idx) | Instruction::Invoke(op, idx)
            if *op != Opcode::Invokeinterface =>
        {
            out.push(op.as_byte());
            out.extend_from_slice(&idx.to_be_bytes());
        }
        Instruction::Invoke(_, idx) => {
            // invokeinterface: index, count, 0 (count kept for format parity)
            out.push(Opcode::Invokeinterface.as_byte());
            out.extend_from_slice(&idx.to_be_bytes());
            out.push(0);
            out.push(0);
        }
        Instruction::Field(..) => unreachable!("covered above"),
        Instruction::New(idx) => {
            out.push(Opcode::New.as_byte());
            out.extend_from_slice(&idx.to_be_bytes());
        }
        Instruction::Newarray(atype) => {
            out.push(Opcode::Newarray.as_byte());
            out.push(*atype);
        }
        Instruction::Anewarray(idx) => {
            out.push(Opcode::Anewarray.as_byte());
            out.extend_from_slice(&idx.to_be_bytes());
        }
        Instruction::Checkcast(idx) => {
            out.push(Opcode::Checkcast.as_byte());
            out.extend_from_slice(&idx.to_be_bytes());
        }
        Instruction::Instanceof(idx) => {
            out.push(Opcode::Instanceof.as_byte());
            out.extend_from_slice(&idx.to_be_bytes());
        }
    }
    Ok(())
}

/// `(pops, pushes)` of one instruction in the single-slot model.
pub fn stack_effect(insn: &Instruction, pool: &ConstPool) -> Result<(u16, u16)> {
    use Opcode as O;
    Ok(match insn {
        Instruction::Simple(op) => match op {
            O::Nop => (0, 0),
            O::AconstNull
            | O::IconstM1
            | O::Iconst0
            | O::Iconst1
            | O::Iconst2
            | O::Iconst3
            | O::Iconst4
            | O::Iconst5
            | O::Lconst0
            | O::Lconst1
            | O::Fconst0
            | O::Fconst1
            | O::Fconst2
            | O::Dconst0
            | O::Dconst1 => (0, 1),
            O::Iaload
            | O::Laload
            | O::Faload
            | O::Daload
            | O::Aaload
            | O::Baload
            | O::Caload
            | O::Saload => (2, 1),
            O::Iastore
            | O::Lastore
            | O::Fastore
            | O::Dastore
            | O::Aastore
            | O::Bastore
            | O::Castore
            | O::Sastore => (3, 0),
            O::Pop => (1, 0),
            O::Pop2 => (2, 0),
            O::Dup => (1, 2),
            O::DupX1 => (2, 3),
            O::DupX2 => (3, 4),
            O::Dup2 => (2, 4),
            O::Dup2X1 => (3, 5),
            O::Dup2X2 => (4, 6),
            O::Swap => (2, 2),
            O::Iadd
            | O::Ladd
            | O::Fadd
            | O::Dadd
            | O::Isub
            | O::Lsub
            | O::Fsub
            | O::Dsub
            | O::Imul
            | O::Lmul
            | O::Fmul
            | O::Dmul
            | O::Idiv
            | O::Ldiv
            | O::Fdiv
            | O::Ddiv
            | O::Irem
            | O::Lrem
            | O::Frem
            | O::Drem
            | O::Ishl
            | O::Lshl
            | O::Ishr
            | O::Lshr
            | O::Iushr
            | O::Lushr
            | O::Iand
            | O::Land
            | O::Ior
            | O::Lor
            | O::Ixor
            | O::Lxor => (2, 1),
            O::Ineg | O::Lneg | O::Fneg | O::Dneg => (1, 1),
            O::I2l
            | O::I2f
            | O::I2d
            | O::L2i
            | O::L2f
            | O::L2d
            | O::F2i
            | O::F2l
            | O::F2d
            | O::D2i
            | O::D2l
            | O::D2f
            | O::I2b
            | O::I2c
            | O::I2s => (1, 1),
            O::Lcmp | O::Fcmpl | O::Fcmpg | O::Dcmpl | O::Dcmpg => (2, 1),
            O::Ireturn | O::Lreturn | O::Freturn | O::Dreturn | O::Areturn => (1, 0),
            O::Return => (0, 0),
            O::Arraylength => (1, 1),
            O::Athrow => (1, 0),
            O::Monitorenter | O::Monitorexit => (1, 0),
            other => {
                return Err(ClassFileError::Builder(format!(
                    "opcode {other:?} is not operand-less"
                )));
            }
        },
        Instruction::Bipush(_) | Instruction::Sipush(_) | Instruction::Ldc(_) => (0, 1),
        Instruction::Local(op, _) => match op {
            O::Iload | O::Lload | O::Fload | O::Dload | O::Aload => (0, 1),
            O::Istore | O::Lstore | O::Fstore | O::Dstore | O::Astore => (1, 0),
            other => {
                return Err(ClassFileError::Builder(format!("bad local op {other:?}")));
            }
        },
        Instruction::Iinc { .. } => (0, 0),
        Instruction::Branch(op, _) => match op {
            O::Goto => (0, 0),
            O::Ifeq
            | O::Ifne
            | O::Iflt
            | O::Ifge
            | O::Ifgt
            | O::Ifle
            | O::Ifnull
            | O::Ifnonnull => (1, 0),
            _ => (2, 0), // if_icmp*, if_acmp*
        },
        Instruction::Tableswitch { .. } | Instruction::Lookupswitch { .. } => (1, 0),
        Instruction::Field(op, idx) => {
            let (_, _, desc) = pool.member_ref_at(*idx)?;
            let _ = crate::descriptor::FieldType::parse(desc)?;
            match op {
                O::Getstatic => (0, 1),
                O::Putstatic => (1, 0),
                O::Getfield => (1, 1),
                O::Putfield => (2, 0),
                _ => unreachable!(),
            }
        }
        Instruction::Invoke(op, idx) => {
            let (_, _, desc) = pool.member_ref_at(*idx)?;
            let d = MethodDescriptor::parse(desc)?;
            let mut pops = d.param_slots() as u16;
            if *op != O::Invokestatic {
                pops += 1;
            }
            (pops, if d.is_void() { 0 } else { 1 })
        }
        Instruction::New(_) => (0, 1),
        Instruction::Newarray(_) | Instruction::Anewarray(_) => (1, 1),
        Instruction::Checkcast(_) => (1, 1),
        Instruction::Instanceof(_) => (1, 1),
    })
}

/// Computes `max_stack` with a worklist dataflow over the encoded code.
///
/// Also acts as a structural verifier: it rejects stack underflow and
/// inconsistent depths at join points.
pub fn compute_max_stack(
    code: &[u8],
    handlers: &[ExceptionTableEntry],
    pool: &ConstPool,
    method_name: &str,
) -> Result<u16> {
    let insns = crate::instruction::decode_all(code)?;
    let index_of: std::collections::HashMap<u32, usize> = insns
        .iter()
        .enumerate()
        .map(|(i, (off, _))| (*off, i))
        .collect();
    let lookup = |off: u32| -> Result<usize> {
        index_of
            .get(&off)
            .copied()
            .ok_or(ClassFileError::BadBranchTarget {
                at: off,
                target: off as i64,
            })
    };

    let mut depth_in: Vec<Option<i32>> = vec![None; insns.len()];
    let mut work: Vec<(usize, i32)> = vec![(0, 0)];
    // Handler entry points start with the thrown exception on the stack.
    for h in handlers {
        work.push((lookup(h.handler_pc)?, 1));
    }

    let mut max = 0i32;
    while let Some((i, depth)) = work.pop() {
        match depth_in[i] {
            Some(d) if d == depth => continue,
            Some(d) => {
                return Err(ClassFileError::Builder(format!(
                    "method {method_name}: stack depth mismatch at offset {} ({} vs {})",
                    insns[i].0, d, depth
                )));
            }
            None => depth_in[i] = Some(depth),
        }
        let (off, insn) = &insns[i];
        let (pops, pushes) = stack_effect(insn, pool)?;
        let after = depth - pops as i32 + pushes as i32;
        if depth - (pops as i32) < 0 {
            return Err(ClassFileError::Builder(format!(
                "method {method_name}: stack underflow at offset {off}"
            )));
        }
        max = max.max(after).max(depth);

        match insn {
            Instruction::Branch(op, target) => {
                work.push((lookup(*target)?, after));
                if *op != Opcode::Goto && i + 1 < insns.len() {
                    work.push((i + 1, after));
                }
            }
            Instruction::Tableswitch {
                default, targets, ..
            } => {
                work.push((lookup(*default)?, after));
                for t in targets {
                    work.push((lookup(*t)?, after));
                }
            }
            Instruction::Lookupswitch { default, pairs } => {
                work.push((lookup(*default)?, after));
                for (_, t) in pairs {
                    work.push((lookup(*t)?, after));
                }
            }
            _ if insn.opcode().ends_basic_block() => {}
            _ => {
                if i + 1 < insns.len() {
                    work.push((i + 1, after));
                } else {
                    return Err(ClassFileError::Builder(format!(
                        "method {method_name}: control flow falls off the end of the code"
                    )));
                }
            }
        }
    }

    u16::try_from(max).map_err(|_| ClassFileError::LimitExceeded("max stack"))
}

/// Builds an exception-throwing helper: `CodeBuilder` shorthand is exposed
/// as a type alias for discoverability.
pub type CodeBuilder<'a> = MethodBuilder<'a>;

#[cfg(test)]
mod tests {
    use super::*;

    fn build_add() -> ClassFile {
        let mut cb = ClassBuilder::new("T", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("add", "(II)I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.iload(0);
        m.iload(1);
        m.op(Opcode::Iadd);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
        cb.build().unwrap()
    }

    #[test]
    fn simple_method_assembles() {
        let c = build_add();
        let m = c.find_method("add", "(II)I").unwrap();
        let code = m.code.as_ref().unwrap();
        assert_eq!(code.code, vec![0x1a, 0x1b, 0x60, 0xac]);
        assert_eq!(code.max_stack, 2);
        assert_eq!(code.max_locals, 2);
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut cb = ClassBuilder::new("L", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("count", "(I)I", AccessFlags::STATIC);
        // int s = 0; while (i > 0) { s += i; i--; } return s;
        let s = m.alloc_local();
        m.const_int(0);
        m.istore(s);
        let head = m.here();
        let exit = m.new_label();
        m.iload(0);
        m.branch(Opcode::Ifle, exit);
        m.iload(s);
        m.iload(0);
        m.op(Opcode::Iadd);
        m.istore(s);
        m.iinc(0, -1);
        m.goto(head);
        m.bind(exit);
        m.iload(s);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
        let c = cb.build().unwrap();
        let code = c
            .find_method("count", "(I)I")
            .unwrap()
            .code
            .as_ref()
            .unwrap();
        assert!(code.max_stack >= 2);
        // Round-trips through the decoder.
        crate::instruction::decode_all(&code.code).unwrap();
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut cb = ClassBuilder::new("U", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("f", "()V", AccessFlags::STATIC);
        let l = m.new_label();
        m.goto(l);
        m.op(Opcode::Return);
        assert!(matches!(m.done(), Err(ClassFileError::Builder(_))));
    }

    #[test]
    fn stack_underflow_is_detected() {
        let mut cb = ClassBuilder::new("U2", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("f", "()V", AccessFlags::STATIC);
        m.op(Opcode::Pop); // nothing to pop
        m.op(Opcode::Return);
        assert!(m.done().is_err());
    }

    #[test]
    fn falling_off_the_end_is_detected() {
        let mut cb = ClassBuilder::new("U3", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("f", "()V", AccessFlags::STATIC);
        m.const_int(1);
        m.op(Opcode::Pop);
        assert!(m.done().is_err());
    }

    #[test]
    fn exception_handler_depth_is_one() {
        let mut cb = ClassBuilder::new("E", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("f", "()V", AccessFlags::STATIC);
        let start = m.here();
        m.op(Opcode::Nop);
        let end = m.here();
        m.op(Opcode::Return);
        let handler = m.here();
        m.op(Opcode::Pop); // pops the exception
        m.op(Opcode::Return);
        m.exception_handler(start, end, handler, None);
        m.done().unwrap();
        let c = cb.build().unwrap();
        let code = c.find_method("f", "()V").unwrap().code.as_ref().unwrap();
        assert_eq!(code.exception_table.len(), 1);
        assert_eq!(code.max_stack, 1);
    }

    #[test]
    fn tableswitch_assembles_and_decodes() {
        let mut cb = ClassBuilder::new("S", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("sel", "(I)I", AccessFlags::STATIC);
        let l0 = m.new_label();
        let l1 = m.new_label();
        let def = m.new_label();
        m.iload(0);
        m.tableswitch(def, 0, &[l0, l1]);
        m.bind(l0);
        m.const_int(10);
        m.op(Opcode::Ireturn);
        m.bind(l1);
        m.const_int(20);
        m.op(Opcode::Ireturn);
        m.bind(def);
        m.const_int(-1);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
        let c = cb.build().unwrap();
        let code = c.find_method("sel", "(I)I").unwrap().code.as_ref().unwrap();
        let insns = crate::instruction::decode_all(&code.code).unwrap();
        let (_, sw) = &insns[1];
        match sw {
            Instruction::Tableswitch { low, targets, .. } => {
                assert_eq!(*low, 0);
                assert_eq!(targets.len(), 2);
            }
            other => panic!("expected tableswitch, got {other:?}"),
        }
    }

    #[test]
    fn interning_reuses_pool_entries() {
        let mut cb = ClassBuilder::new("I", "java/lang/Object", AccessFlags::PUBLIC);
        let mut m = cb.method("f", "()V", AccessFlags::STATIC);
        m.const_string("hello");
        m.op(Opcode::Pop);
        m.const_string("hello");
        m.op(Opcode::Pop);
        m.op(Opcode::Return);
        m.done().unwrap();
        let c = cb.build().unwrap();
        let strings = c
            .pool
            .iter()
            .filter(|(_, e)| matches!(e, crate::constant::ConstEntry::String { .. }))
            .count();
        assert_eq!(strings, 1);
    }
}
