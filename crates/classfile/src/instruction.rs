//! Decoded instruction representation and a code-stream decoder.
//!
//! The interpreter in `ijvm-core` executes raw code bytes directly; this
//! decoded form is used by the assembler, the disassembler, the structural
//! verifier and the `max_stack` computation.

use crate::constant::CpIndex;
use crate::error::{ClassFileError, Result};
use crate::opcode::Opcode;

/// A single decoded instruction. Branch targets are absolute code offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Any opcode with no operands.
    Simple(Opcode),
    /// `bipush` — push a sign-extended byte.
    Bipush(i8),
    /// `sipush` — push a sign-extended short.
    Sipush(i16),
    /// `ldc`/`ldc_w`/`ldc2_w` — push a constant-pool literal.
    Ldc(CpIndex),
    /// Local variable load/store with an explicit index
    /// (`iload`, `astore`, …; the `_0..=_3` forms decode to this too).
    Local(Opcode, u16),
    /// `iinc local, delta`.
    Iinc { local: u16, delta: i16 },
    /// Conditional or unconditional branch to an absolute code offset.
    Branch(Opcode, u32),
    /// `tableswitch` — dense jump table.
    Tableswitch {
        /// Branch target when the key is out of range.
        default: u32,
        /// Smallest key in the table.
        low: i32,
        /// Targets for `low..=low + targets.len() - 1`.
        targets: Vec<u32>,
    },
    /// `lookupswitch` — sparse `(key, target)` pairs sorted by key.
    Lookupswitch {
        /// Branch target when no pair matches.
        default: u32,
        /// Sorted match pairs.
        pairs: Vec<(i32, u32)>,
    },
    /// Field access: `getstatic`/`putstatic`/`getfield`/`putfield`.
    Field(Opcode, CpIndex),
    /// Method invocation (`invokevirtual`/`special`/`static`/`interface`).
    Invoke(Opcode, CpIndex),
    /// `new` — allocate an instance of the referenced class.
    New(CpIndex),
    /// `newarray` — allocate a primitive array; operand is the atype code.
    Newarray(u8),
    /// `anewarray` — allocate a reference array of the referenced class.
    Anewarray(CpIndex),
    /// `checkcast`.
    Checkcast(CpIndex),
    /// `instanceof`.
    Instanceof(CpIndex),
}

impl Instruction {
    /// The opcode this instruction decodes from (canonical form; `Local`
    /// reports the explicit-index opcode).
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::Simple(op) => *op,
            Instruction::Bipush(_) => Opcode::Bipush,
            Instruction::Sipush(_) => Opcode::Sipush,
            Instruction::Ldc(_) => Opcode::LdcW,
            Instruction::Local(op, _) => *op,
            Instruction::Iinc { .. } => Opcode::Iinc,
            Instruction::Branch(op, _) => *op,
            Instruction::Tableswitch { .. } => Opcode::Tableswitch,
            Instruction::Lookupswitch { .. } => Opcode::Lookupswitch,
            Instruction::Field(op, _) => *op,
            Instruction::Invoke(op, _) => *op,
            Instruction::New(_) => Opcode::New,
            Instruction::Newarray(_) => Opcode::Newarray,
            Instruction::Anewarray(_) => Opcode::Anewarray,
            Instruction::Checkcast(_) => Opcode::Checkcast,
            Instruction::Instanceof(_) => Opcode::Instanceof,
        }
    }
}

/// Decodes the instruction at `pc`, returning it and the offset of the next
/// instruction.
pub fn decode_at(code: &[u8], pc: u32) -> Result<(Instruction, u32)> {
    let mut r = CodeCursor {
        code,
        pos: pc as usize,
    };
    let at = pc;
    let op = Opcode::from_byte(r.u8("opcode")?)?;
    use Opcode as O;
    let insn = match op {
        O::Bipush => Instruction::Bipush(r.u8("bipush operand")? as i8),
        O::Sipush => Instruction::Sipush(r.u16("sipush operand")? as i16),
        O::Ldc => Instruction::Ldc(r.u8("ldc index")? as CpIndex),
        O::LdcW | O::Ldc2W => Instruction::Ldc(r.u16("ldc_w index")?),
        O::Iload
        | O::Lload
        | O::Fload
        | O::Dload
        | O::Aload
        | O::Istore
        | O::Lstore
        | O::Fstore
        | O::Dstore
        | O::Astore => Instruction::Local(op, r.u8("local index")? as u16),
        O::Iload0 | O::Iload1 | O::Iload2 | O::Iload3 => {
            Instruction::Local(O::Iload, (op as u8 - O::Iload0 as u8) as u16)
        }
        O::Lload0 | O::Lload1 | O::Lload2 | O::Lload3 => {
            Instruction::Local(O::Lload, (op as u8 - O::Lload0 as u8) as u16)
        }
        O::Fload0 | O::Fload1 | O::Fload2 | O::Fload3 => {
            Instruction::Local(O::Fload, (op as u8 - O::Fload0 as u8) as u16)
        }
        O::Dload0 | O::Dload1 | O::Dload2 | O::Dload3 => {
            Instruction::Local(O::Dload, (op as u8 - O::Dload0 as u8) as u16)
        }
        O::Aload0 | O::Aload1 | O::Aload2 | O::Aload3 => {
            Instruction::Local(O::Aload, (op as u8 - O::Aload0 as u8) as u16)
        }
        O::Istore0 | O::Istore1 | O::Istore2 | O::Istore3 => {
            Instruction::Local(O::Istore, (op as u8 - O::Istore0 as u8) as u16)
        }
        O::Lstore0 | O::Lstore1 | O::Lstore2 | O::Lstore3 => {
            Instruction::Local(O::Lstore, (op as u8 - O::Lstore0 as u8) as u16)
        }
        O::Fstore0 | O::Fstore1 | O::Fstore2 | O::Fstore3 => {
            Instruction::Local(O::Fstore, (op as u8 - O::Fstore0 as u8) as u16)
        }
        O::Dstore0 | O::Dstore1 | O::Dstore2 | O::Dstore3 => {
            Instruction::Local(O::Dstore, (op as u8 - O::Dstore0 as u8) as u16)
        }
        O::Astore0 | O::Astore1 | O::Astore2 | O::Astore3 => {
            Instruction::Local(O::Astore, (op as u8 - O::Astore0 as u8) as u16)
        }
        O::Iinc => {
            let local = r.u8("iinc local")? as u16;
            let delta = r.u8("iinc delta")? as i8 as i16;
            Instruction::Iinc { local, delta }
        }
        O::Ifeq
        | O::Ifne
        | O::Iflt
        | O::Ifge
        | O::Ifgt
        | O::Ifle
        | O::IfIcmpeq
        | O::IfIcmpne
        | O::IfIcmplt
        | O::IfIcmpge
        | O::IfIcmpgt
        | O::IfIcmple
        | O::IfAcmpeq
        | O::IfAcmpne
        | O::Goto
        | O::Ifnull
        | O::Ifnonnull => {
            let off = r.u16("branch offset")? as i16 as i64;
            let target = at as i64 + off;
            let target = u32::try_from(target)
                .map_err(|_| ClassFileError::BadBranchTarget { at, target })?;
            Instruction::Branch(op, target)
        }
        O::Tableswitch => {
            r.align4(at)?;
            let default = r.branch32(at)?;
            let low = r.u32("tableswitch low")? as i32;
            let high = r.u32("tableswitch high")? as i32;
            if high < low || (high as i64 - low as i64) > 1 << 16 {
                return Err(ClassFileError::Malformed("tableswitch bounds"));
            }
            let n = (high - low + 1) as usize;
            let mut targets = Vec::with_capacity(n);
            for _ in 0..n {
                targets.push(r.branch32(at)?);
            }
            Instruction::Tableswitch {
                default,
                low,
                targets,
            }
        }
        O::Lookupswitch => {
            r.align4(at)?;
            let default = r.branch32(at)?;
            let npairs = r.u32("lookupswitch npairs")?;
            if npairs > 1 << 16 {
                return Err(ClassFileError::Malformed("lookupswitch npairs"));
            }
            let mut pairs = Vec::with_capacity(npairs as usize);
            for _ in 0..npairs {
                let key = r.u32("lookupswitch key")? as i32;
                let target = r.branch32(at)?;
                pairs.push((key, target));
            }
            Instruction::Lookupswitch { default, pairs }
        }
        O::Getstatic | O::Putstatic | O::Getfield | O::Putfield => {
            Instruction::Field(op, r.u16("field ref index")?)
        }
        O::Invokevirtual | O::Invokespecial | O::Invokestatic => {
            Instruction::Invoke(op, r.u16("method ref index")?)
        }
        O::Invokeinterface => {
            let idx = r.u16("interface method ref index")?;
            // count + zero byte, kept for JVM-format compatibility
            let _count = r.u8("invokeinterface count")?;
            let _zero = r.u8("invokeinterface zero")?;
            Instruction::Invoke(op, idx)
        }
        O::New => Instruction::New(r.u16("new class index")?),
        O::Newarray => Instruction::Newarray(r.u8("newarray atype")?),
        O::Anewarray => Instruction::Anewarray(r.u16("anewarray class index")?),
        O::Checkcast => Instruction::Checkcast(r.u16("checkcast class index")?),
        O::Instanceof => Instruction::Instanceof(r.u16("instanceof class index")?),
        // Everything else carries no operands.
        _ => Instruction::Simple(op),
    };
    Ok((insn, r.pos as u32))
}

/// Iterates over all instructions in `code`, yielding `(offset, instruction)`.
pub fn decode_all(code: &[u8]) -> Result<Vec<(u32, Instruction)>> {
    let mut out = Vec::new();
    let mut pc = 0u32;
    while (pc as usize) < code.len() {
        let (insn, next) = decode_at(code, pc)?;
        out.push((pc, insn));
        pc = next;
    }
    Ok(out)
}

struct CodeCursor<'a> {
    code: &'a [u8],
    pos: usize,
}

impl CodeCursor<'_> {
    fn u8(&mut self, ctx: &'static str) -> Result<u8> {
        let b = *self
            .code
            .get(self.pos)
            .ok_or(ClassFileError::UnexpectedEof { context: ctx })?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self, ctx: &'static str) -> Result<u16> {
        let hi = self.u8(ctx)? as u16;
        let lo = self.u8(ctx)? as u16;
        Ok((hi << 8) | lo)
    }

    fn u32(&mut self, ctx: &'static str) -> Result<u32> {
        let hi = self.u16(ctx)? as u32;
        let lo = self.u16(ctx)? as u32;
        Ok((hi << 16) | lo)
    }

    fn align4(&mut self, switch_at: u32) -> Result<()> {
        // Padding is relative to the offset *after* the opcode byte,
        // i.e. the next multiple of 4 after `switch_at + 1`.
        let _ = switch_at;
        while !self.pos.is_multiple_of(4) {
            self.u8("switch padding")?;
        }
        Ok(())
    }

    fn branch32(&mut self, at: u32) -> Result<u32> {
        let off = self.u32("switch target")? as i32 as i64;
        let target = at as i64 + off;
        u32::try_from(target).map_err(|_| ClassFileError::BadBranchTarget { at, target })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_simple_sequence() {
        // iconst_1; iconst_2; iadd; ireturn
        let code = [0x04, 0x05, 0x60, 0xac];
        let insns = decode_all(&code).unwrap();
        assert_eq!(insns.len(), 4);
        assert_eq!(insns[0].1, Instruction::Simple(Opcode::Iconst1));
        assert_eq!(insns[2].1, Instruction::Simple(Opcode::Iadd));
        assert_eq!(insns[3].1, Instruction::Simple(Opcode::Ireturn));
    }

    #[test]
    fn decode_short_form_locals() {
        // iload_2; astore 5
        let code = [0x1c, 0x3a, 0x05];
        let insns = decode_all(&code).unwrap();
        assert_eq!(insns[0].1, Instruction::Local(Opcode::Iload, 2));
        assert_eq!(insns[1].1, Instruction::Local(Opcode::Astore, 5));
    }

    #[test]
    fn decode_branch_targets_are_absolute() {
        // 0: goto +5 (-> 5); 3: nop; 4: nop; 5: return
        let code = [0xa7, 0x00, 0x05, 0x00, 0x00, 0xb1];
        let insns = decode_all(&code).unwrap();
        assert_eq!(insns[0].1, Instruction::Branch(Opcode::Goto, 5));
    }

    #[test]
    fn negative_branch_out_of_range_is_error() {
        // goto -10 at offset 0
        let code = [0xa7, 0xff, 0xf6];
        assert!(matches!(
            decode_at(&code, 0),
            Err(ClassFileError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn truncated_operand_is_eof() {
        let code = [0x10]; // bipush with missing operand
        assert!(matches!(
            decode_at(&code, 0),
            Err(ClassFileError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn decode_iinc() {
        let code = [0x84, 0x03, 0xff]; // iinc 3, -1
        let (insn, next) = decode_at(&code, 0).unwrap();
        assert_eq!(
            insn,
            Instruction::Iinc {
                local: 3,
                delta: -1
            }
        );
        assert_eq!(next, 3);
    }
}
