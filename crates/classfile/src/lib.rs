//! Class-file format for the ijvm virtual machine.
//!
//! This crate defines a binary class-file format closely modelled on the Java
//! Virtual Machine class-file format: a `0xCAFEBABE` magic number, a constant
//! pool, access flags, field and method tables, and per-method `Code`
//! attributes holding bytecode with exception tables.
//!
//! It provides four layers:
//!
//! * a data model ([`ClassFile`], [`ConstPool`], [`MethodInfo`], …),
//! * binary serialization ([`writer::write_class`]) and parsing
//!   ([`reader::read_class`]),
//! * a builder/assembler API ([`builder::ClassBuilder`]) with label-based
//!   branches and automatic `max_stack` computation, and
//! * a disassembler ([`disasm::disassemble`]).
//!
//! # Deviations from the JVM specification
//!
//! The format is a faithful *subset* with one deliberate simplification: the
//! slot model. Every value — including `long` and `double` — occupies exactly
//! one operand-stack slot and one local-variable slot. The `*2` stack ops
//! (`dup2`, `pop2`, …) therefore operate on two slots of category-1 values.
//! The compiler in `ijvm-minijava` and the interpreter in `ijvm-core` agree
//! on this model.

pub mod builder;
pub mod class;
pub mod constant;
pub mod descriptor;
pub mod disasm;
pub mod error;
pub mod flags;
pub mod instruction;
pub mod opcode;
pub mod reader;
pub mod writer;

pub use builder::{ClassBuilder, CodeBuilder, Label, MethodBuilder};
pub use class::{Attribute, ClassFile, ExceptionTableEntry, FieldInfo, MethodInfo};
pub use constant::{ConstEntry, ConstPool, CpIndex};
pub use descriptor::{BaseType, FieldType, MethodDescriptor};
pub use error::{ClassFileError, Result};
pub use flags::AccessFlags;
pub use instruction::Instruction;
pub use opcode::Opcode;

/// Magic number at the start of every class file.
pub const MAGIC: u32 = 0xCAFE_BABE;
/// Major version emitted by this crate ("ijvm v1").
pub const MAJOR_VERSION: u16 = 50;
/// Minor version emitted by this crate.
pub const MINOR_VERSION: u16 = 0;
