//! Access flags for classes, fields and methods.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A bit set of access and property flags.
///
/// The bit values match the JVM specification where a counterpart exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct AccessFlags(pub u16);

impl AccessFlags {
    /// Declared public; accessible from any other class.
    pub const PUBLIC: AccessFlags = AccessFlags(0x0001);
    /// Declared private; accessible only within the defining class.
    pub const PRIVATE: AccessFlags = AccessFlags(0x0002);
    /// Declared protected.
    pub const PROTECTED: AccessFlags = AccessFlags(0x0004);
    /// Declared static.
    pub const STATIC: AccessFlags = AccessFlags(0x0008);
    /// Declared final.
    pub const FINAL: AccessFlags = AccessFlags(0x0010);
    /// Method is declared `synchronized`; on a class this is ACC_SUPER (ignored).
    pub const SYNCHRONIZED: AccessFlags = AccessFlags(0x0020);
    /// Method is implemented natively by the host VM.
    pub const NATIVE: AccessFlags = AccessFlags(0x0100);
    /// An interface, not a class.
    pub const INTERFACE: AccessFlags = AccessFlags(0x0200);
    /// Declared abstract; no implementation provided.
    pub const ABSTRACT: AccessFlags = AccessFlags(0x0400);

    /// Empty flag set.
    pub const fn empty() -> AccessFlags {
        AccessFlags(0)
    }

    /// Returns `true` if every bit of `other` is set in `self`.
    pub const fn contains(self, other: AccessFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if the `STATIC` bit is set.
    pub const fn is_static(self) -> bool {
        self.contains(AccessFlags::STATIC)
    }

    /// Returns `true` if the `NATIVE` bit is set.
    pub const fn is_native(self) -> bool {
        self.contains(AccessFlags::NATIVE)
    }

    /// Returns `true` if the `ABSTRACT` bit is set.
    pub const fn is_abstract(self) -> bool {
        self.contains(AccessFlags::ABSTRACT)
    }

    /// Returns `true` if the `INTERFACE` bit is set.
    pub const fn is_interface(self) -> bool {
        self.contains(AccessFlags::INTERFACE)
    }

    /// Returns `true` if the `SYNCHRONIZED` bit is set.
    pub const fn is_synchronized(self) -> bool {
        self.contains(AccessFlags::SYNCHRONIZED)
    }
}

impl BitOr for AccessFlags {
    type Output = AccessFlags;
    fn bitor(self, rhs: AccessFlags) -> AccessFlags {
        AccessFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for AccessFlags {
    fn bitor_assign(&mut self, rhs: AccessFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for AccessFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: [(AccessFlags, &str); 9] = [
            (AccessFlags::PUBLIC, "public"),
            (AccessFlags::PRIVATE, "private"),
            (AccessFlags::PROTECTED, "protected"),
            (AccessFlags::STATIC, "static"),
            (AccessFlags::FINAL, "final"),
            (AccessFlags::SYNCHRONIZED, "synchronized"),
            (AccessFlags::NATIVE, "native"),
            (AccessFlags::INTERFACE, "interface"),
            (AccessFlags::ABSTRACT, "abstract"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    f.write_str(" ")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_or() {
        let f = AccessFlags::PUBLIC | AccessFlags::STATIC;
        assert!(f.contains(AccessFlags::PUBLIC));
        assert!(f.contains(AccessFlags::STATIC));
        assert!(!f.contains(AccessFlags::FINAL));
        assert!(f.is_static());
        assert!(!f.is_native());
    }

    #[test]
    fn display_lists_flag_names() {
        let f = AccessFlags::PUBLIC | AccessFlags::FINAL;
        assert_eq!(f.to_string(), "public final");
        assert_eq!(AccessFlags::empty().to_string(), "");
    }
}
