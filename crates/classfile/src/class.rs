//! The class-file data model: classes, fields, methods, code attributes.

use crate::constant::{ConstPool, CpIndex};
use crate::error::{ClassFileError, Result};
use crate::flags::AccessFlags;

/// One entry in a method's exception table.
///
/// If an exception of (a subclass of) `catch_type` is thrown while the pc is
/// in `[start_pc, end_pc)`, control transfers to `handler_pc`. A
/// `catch_type` of 0 catches everything (used for `finally`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExceptionTableEntry {
    /// Start of the protected range (inclusive).
    pub start_pc: u32,
    /// End of the protected range (exclusive).
    pub end_pc: u32,
    /// Handler entry point.
    pub handler_pc: u32,
    /// Constant-pool `Class` index of the caught type, or 0 for catch-all.
    pub catch_type: CpIndex,
}

/// The body of a non-native, non-abstract method.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Code {
    /// Maximum operand-stack depth (one slot per value).
    pub max_stack: u16,
    /// Number of local-variable slots, including parameters and receiver.
    pub max_locals: u16,
    /// Raw bytecode.
    pub code: Vec<u8>,
    /// Exception handlers, in priority order.
    pub exception_table: Vec<ExceptionTableEntry>,
}

/// A generic named attribute (forward compatibility; the reader preserves
/// attributes it does not understand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// `Utf8` constant-pool index of the attribute name.
    pub name: CpIndex,
    /// Raw attribute payload.
    pub data: Vec<u8>,
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Access flags (`STATIC` decides static vs. instance).
    pub access: AccessFlags,
    /// `Utf8` index of the field name.
    pub name: CpIndex,
    /// `Utf8` index of the field descriptor.
    pub descriptor: CpIndex,
}

/// A method declaration, optionally with code.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodInfo {
    /// Access flags (`NATIVE`/`ABSTRACT` methods have no code).
    pub access: AccessFlags,
    /// `Utf8` index of the method name (`<init>` for constructors,
    /// `<clinit>` for the class initializer).
    pub name: CpIndex,
    /// `Utf8` index of the method descriptor.
    pub descriptor: CpIndex,
    /// Bytecode body; `None` for native and abstract methods.
    pub code: Option<Code>,
}

/// An in-memory class file.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassFile {
    /// Minor format version.
    pub minor_version: u16,
    /// Major format version.
    pub major_version: u16,
    /// The constant pool.
    pub pool: ConstPool,
    /// Class-level access flags.
    pub access: AccessFlags,
    /// `Class` constant-pool index of this class.
    pub this_class: CpIndex,
    /// `Class` index of the superclass; 0 only for `java/lang/Object`.
    pub super_class: CpIndex,
    /// `Class` indices of directly implemented interfaces.
    pub interfaces: Vec<CpIndex>,
    /// Declared fields (static and instance).
    pub fields: Vec<FieldInfo>,
    /// Declared methods.
    pub methods: Vec<MethodInfo>,
    /// Class-level attributes (preserved, not interpreted).
    pub attributes: Vec<Attribute>,
}

impl ClassFile {
    /// Internal name of this class (e.g. `com/example/Foo`).
    pub fn name(&self) -> Result<&str> {
        self.pool.class_name_at(self.this_class)
    }

    /// Internal name of the superclass, or `None` for `java/lang/Object`.
    pub fn super_name(&self) -> Result<Option<&str>> {
        if self.super_class == 0 {
            Ok(None)
        } else {
            self.pool.class_name_at(self.super_class).map(Some)
        }
    }

    /// Internal names of the directly implemented interfaces.
    pub fn interface_names(&self) -> Result<Vec<&str>> {
        self.interfaces
            .iter()
            .map(|&i| self.pool.class_name_at(i))
            .collect()
    }

    /// Looks up a declared method by name and descriptor.
    pub fn find_method(&self, name: &str, descriptor: &str) -> Option<&MethodInfo> {
        self.methods.iter().find(|m| {
            self.pool
                .utf8_at(m.name)
                .map(|n| n == name)
                .unwrap_or(false)
                && self
                    .pool
                    .utf8_at(m.descriptor)
                    .map(|d| d == descriptor)
                    .unwrap_or(false)
        })
    }

    /// Looks up a declared field by name.
    pub fn find_field(&self, name: &str) -> Option<&FieldInfo> {
        self.fields.iter().find(|f| {
            self.pool
                .utf8_at(f.name)
                .map(|n| n == name)
                .unwrap_or(false)
        })
    }

    /// Basic structural sanity checks shared by the reader and the builder:
    /// the `this_class`/`super_class` indices resolve, every field/method
    /// name and descriptor resolves and parses, exception-table ranges are
    /// ordered and inside the code.
    pub fn validate(&self) -> Result<()> {
        self.name()?;
        self.super_name()?;
        for &i in &self.interfaces {
            self.pool.class_name_at(i)?;
        }
        for f in &self.fields {
            self.pool.utf8_at(f.name)?;
            let d = self.pool.utf8_at(f.descriptor)?;
            crate::descriptor::FieldType::parse(d)?;
        }
        for m in &self.methods {
            self.pool.utf8_at(m.name)?;
            let d = self.pool.utf8_at(m.descriptor)?;
            crate::descriptor::MethodDescriptor::parse(d)?;
            if let Some(code) = &m.code {
                if code.code.is_empty() {
                    return Err(ClassFileError::Malformed("empty code array"));
                }
                for e in &code.exception_table {
                    let len = code.code.len() as u32;
                    if e.start_pc >= e.end_pc || e.end_pc > len || e.handler_pc >= len {
                        return Err(ClassFileError::Malformed("exception table range"));
                    }
                    if e.catch_type != 0 {
                        self.pool.class_name_at(e.catch_type)?;
                    }
                }
            } else if !m.access.is_native() && !m.access.is_abstract() {
                return Err(ClassFileError::Malformed(
                    "non-native, non-abstract method without code",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_class() -> ClassFile {
        let mut pool = ConstPool::new();
        let this_class = pool.class("Foo").unwrap();
        let super_class = pool.class("java/lang/Object").unwrap();
        let name = pool.utf8("bar").unwrap();
        let desc = pool.utf8("()V").unwrap();
        ClassFile {
            minor_version: crate::MINOR_VERSION,
            major_version: crate::MAJOR_VERSION,
            pool,
            access: AccessFlags::PUBLIC,
            this_class,
            super_class,
            interfaces: vec![],
            fields: vec![],
            methods: vec![MethodInfo {
                access: AccessFlags::PUBLIC,
                name,
                descriptor: desc,
                code: Some(Code {
                    max_stack: 0,
                    max_locals: 1,
                    code: vec![0xb1], // return
                    exception_table: vec![],
                }),
            }],
            attributes: vec![],
        }
    }

    #[test]
    fn names_resolve() {
        let c = tiny_class();
        assert_eq!(c.name().unwrap(), "Foo");
        assert_eq!(c.super_name().unwrap(), Some("java/lang/Object"));
        assert!(c.find_method("bar", "()V").is_some());
        assert!(c.find_method("bar", "(I)V").is_none());
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_exception_range() {
        let mut c = tiny_class();
        c.methods[0]
            .code
            .as_mut()
            .unwrap()
            .exception_table
            .push(ExceptionTableEntry {
                start_pc: 5,
                end_pc: 2,
                handler_pc: 0,
                catch_type: 0,
            });
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_code() {
        let mut c = tiny_class();
        c.methods[0].code = None;
        assert!(c.validate().is_err());
        // …but native methods may omit code.
        c.methods[0].access |= AccessFlags::NATIVE;
        c.validate().unwrap();
    }
}
