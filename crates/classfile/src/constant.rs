//! Constant pool: the shared table of symbolic references and literals.

use crate::error::{ClassFileError, Result};
use std::collections::HashMap;

/// Index into a [`ConstPool`]. Index 0 is reserved and never valid,
/// matching the JVM convention.
pub type CpIndex = u16;

/// Constant pool entry tags (binary encoding).
pub mod tag {
    pub const UTF8: u8 = 1;
    pub const INTEGER: u8 = 3;
    pub const FLOAT: u8 = 4;
    pub const LONG: u8 = 5;
    pub const DOUBLE: u8 = 6;
    pub const CLASS: u8 = 7;
    pub const STRING: u8 = 8;
    pub const FIELDREF: u8 = 9;
    pub const METHODREF: u8 = 10;
    pub const INTERFACE_METHODREF: u8 = 11;
    pub const NAME_AND_TYPE: u8 = 12;
}

/// One entry in the constant pool.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstEntry {
    /// Modified-UTF8 string (we store plain UTF-8).
    Utf8(String),
    /// 32-bit integer literal.
    Integer(i32),
    /// 32-bit float literal.
    Float(f32),
    /// 64-bit integer literal.
    Long(i64),
    /// 64-bit float literal.
    Double(f64),
    /// Symbolic reference to a class; payload is a `Utf8` index holding the
    /// internal name (e.g. `java/lang/Object`).
    Class { name: CpIndex },
    /// String literal; payload is a `Utf8` index.
    String { utf8: CpIndex },
    /// Symbolic reference to a field.
    FieldRef {
        class: CpIndex,
        name_and_type: CpIndex,
    },
    /// Symbolic reference to a class method.
    MethodRef {
        class: CpIndex,
        name_and_type: CpIndex,
    },
    /// Symbolic reference to an interface method.
    InterfaceMethodRef {
        class: CpIndex,
        name_and_type: CpIndex,
    },
    /// Pair of name and descriptor `Utf8` indices.
    NameAndType { name: CpIndex, descriptor: CpIndex },
}

impl ConstEntry {
    /// The binary tag for this entry.
    pub fn tag(&self) -> u8 {
        match self {
            ConstEntry::Utf8(_) => tag::UTF8,
            ConstEntry::Integer(_) => tag::INTEGER,
            ConstEntry::Float(_) => tag::FLOAT,
            ConstEntry::Long(_) => tag::LONG,
            ConstEntry::Double(_) => tag::DOUBLE,
            ConstEntry::Class { .. } => tag::CLASS,
            ConstEntry::String { .. } => tag::STRING,
            ConstEntry::FieldRef { .. } => tag::FIELDREF,
            ConstEntry::MethodRef { .. } => tag::METHODREF,
            ConstEntry::InterfaceMethodRef { .. } => tag::INTERFACE_METHODREF,
            ConstEntry::NameAndType { .. } => tag::NAME_AND_TYPE,
        }
    }
}

/// The constant pool of a class file.
///
/// Entries are 1-indexed; unlike the JVM spec, `Long`/`Double` occupy a
/// single slot (the reader/writer preserve this crate's convention).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstPool {
    entries: Vec<ConstEntry>,
    // Interning maps used by the builder so identical constants share a slot.
    utf8_index: HashMap<String, CpIndex>,
}

impl ConstPool {
    /// Creates an empty pool.
    pub fn new() -> ConstPool {
        ConstPool::default()
    }

    /// Number of entries (excluding the reserved slot 0).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the pool holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(index, entry)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (CpIndex, &ConstEntry)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| ((i + 1) as CpIndex, e))
    }

    fn push(&mut self, entry: ConstEntry) -> Result<CpIndex> {
        if self.entries.len() >= u16::MAX as usize - 1 {
            return Err(ClassFileError::LimitExceeded("constant pool size"));
        }
        self.entries.push(entry);
        Ok(self.entries.len() as CpIndex)
    }

    /// Appends a raw entry without interning (used by the reader).
    pub fn push_raw(&mut self, entry: ConstEntry) -> Result<CpIndex> {
        if let ConstEntry::Utf8(s) = &entry {
            let idx = (self.entries.len() + 1) as CpIndex;
            self.utf8_index.entry(s.clone()).or_insert(idx);
        }
        self.push(entry)
    }

    /// Looks up an entry; index 0 and out-of-range indices return an error.
    pub fn get(&self, index: CpIndex) -> Result<&ConstEntry> {
        if index == 0 {
            return Err(ClassFileError::BadConstantIndex {
                index,
                expected: "non-zero entry",
            });
        }
        self.entries
            .get(index as usize - 1)
            .ok_or(ClassFileError::BadConstantIndex {
                index,
                expected: "in-range entry",
            })
    }

    /// Interns a UTF-8 constant, returning an existing slot when possible.
    pub fn utf8(&mut self, s: &str) -> Result<CpIndex> {
        if let Some(&idx) = self.utf8_index.get(s) {
            return Ok(idx);
        }
        let idx = self.push(ConstEntry::Utf8(s.to_owned()))?;
        self.utf8_index.insert(s.to_owned(), idx);
        Ok(idx)
    }

    /// Interns an integer constant.
    pub fn integer(&mut self, v: i32) -> Result<CpIndex> {
        self.find_or_push(
            |e| matches!(e, ConstEntry::Integer(x) if *x == v),
            ConstEntry::Integer(v),
        )
    }

    /// Interns a float constant (bitwise comparison).
    pub fn float(&mut self, v: f32) -> Result<CpIndex> {
        self.find_or_push(
            |e| matches!(e, ConstEntry::Float(x) if x.to_bits() == v.to_bits()),
            ConstEntry::Float(v),
        )
    }

    /// Interns a long constant.
    pub fn long(&mut self, v: i64) -> Result<CpIndex> {
        self.find_or_push(
            |e| matches!(e, ConstEntry::Long(x) if *x == v),
            ConstEntry::Long(v),
        )
    }

    /// Interns a double constant (bitwise comparison).
    pub fn double(&mut self, v: f64) -> Result<CpIndex> {
        self.find_or_push(
            |e| matches!(e, ConstEntry::Double(x) if x.to_bits() == v.to_bits()),
            ConstEntry::Double(v),
        )
    }

    /// Interns a class reference by internal name.
    pub fn class(&mut self, internal_name: &str) -> Result<CpIndex> {
        let name = self.utf8(internal_name)?;
        self.find_or_push(
            |e| matches!(e, ConstEntry::Class { name: n } if *n == name),
            ConstEntry::Class { name },
        )
    }

    /// Interns a string literal.
    pub fn string(&mut self, value: &str) -> Result<CpIndex> {
        let utf8 = self.utf8(value)?;
        self.find_or_push(
            |e| matches!(e, ConstEntry::String { utf8: u } if *u == utf8),
            ConstEntry::String { utf8 },
        )
    }

    /// Interns a `NameAndType` pair.
    pub fn name_and_type(&mut self, name: &str, descriptor: &str) -> Result<CpIndex> {
        let name = self.utf8(name)?;
        let descriptor = self.utf8(descriptor)?;
        self.find_or_push(
            |e| {
                matches!(e, ConstEntry::NameAndType { name: n, descriptor: d }
                         if *n == name && *d == descriptor)
            },
            ConstEntry::NameAndType { name, descriptor },
        )
    }

    /// Interns a field reference.
    pub fn field_ref(&mut self, class: &str, name: &str, descriptor: &str) -> Result<CpIndex> {
        let class = self.class(class)?;
        let nat = self.name_and_type(name, descriptor)?;
        self.find_or_push(
            |e| {
                matches!(e, ConstEntry::FieldRef { class: c, name_and_type: n }
                         if *c == class && *n == nat)
            },
            ConstEntry::FieldRef {
                class,
                name_and_type: nat,
            },
        )
    }

    /// Interns a class-method reference.
    pub fn method_ref(&mut self, class: &str, name: &str, descriptor: &str) -> Result<CpIndex> {
        let class = self.class(class)?;
        let nat = self.name_and_type(name, descriptor)?;
        self.find_or_push(
            |e| {
                matches!(e, ConstEntry::MethodRef { class: c, name_and_type: n }
                         if *c == class && *n == nat)
            },
            ConstEntry::MethodRef {
                class,
                name_and_type: nat,
            },
        )
    }

    /// Interns an interface-method reference.
    pub fn interface_method_ref(
        &mut self,
        class: &str,
        name: &str,
        descriptor: &str,
    ) -> Result<CpIndex> {
        let class = self.class(class)?;
        let nat = self.name_and_type(name, descriptor)?;
        self.find_or_push(
            |e| {
                matches!(e, ConstEntry::InterfaceMethodRef { class: c, name_and_type: n }
                         if *c == class && *n == nat)
            },
            ConstEntry::InterfaceMethodRef {
                class,
                name_and_type: nat,
            },
        )
    }

    fn find_or_push(
        &mut self,
        pred: impl Fn(&ConstEntry) -> bool,
        entry: ConstEntry,
    ) -> Result<CpIndex> {
        for (i, e) in self.entries.iter().enumerate() {
            if pred(e) {
                return Ok((i + 1) as CpIndex);
            }
        }
        self.push(entry)
    }

    // ---- typed accessors -------------------------------------------------

    /// Reads a `Utf8` entry as `&str`.
    pub fn utf8_at(&self, index: CpIndex) -> Result<&str> {
        match self.get(index)? {
            ConstEntry::Utf8(s) => Ok(s),
            _ => Err(ClassFileError::BadConstantIndex {
                index,
                expected: "Utf8",
            }),
        }
    }

    /// Reads a `Class` entry, returning the referenced internal name.
    pub fn class_name_at(&self, index: CpIndex) -> Result<&str> {
        match self.get(index)? {
            ConstEntry::Class { name } => self.utf8_at(*name),
            _ => Err(ClassFileError::BadConstantIndex {
                index,
                expected: "Class",
            }),
        }
    }

    /// Reads a `String` entry, returning the literal value.
    pub fn string_at(&self, index: CpIndex) -> Result<&str> {
        match self.get(index)? {
            ConstEntry::String { utf8 } => self.utf8_at(*utf8),
            _ => Err(ClassFileError::BadConstantIndex {
                index,
                expected: "String",
            }),
        }
    }

    /// Reads a `NameAndType` entry as `(name, descriptor)`.
    pub fn name_and_type_at(&self, index: CpIndex) -> Result<(&str, &str)> {
        match self.get(index)? {
            ConstEntry::NameAndType { name, descriptor } => {
                Ok((self.utf8_at(*name)?, self.utf8_at(*descriptor)?))
            }
            _ => Err(ClassFileError::BadConstantIndex {
                index,
                expected: "NameAndType",
            }),
        }
    }

    /// Reads any member reference (field, method or interface method) as
    /// `(class_name, member_name, descriptor)`.
    pub fn member_ref_at(&self, index: CpIndex) -> Result<(&str, &str, &str)> {
        let (class, nat) = match self.get(index)? {
            ConstEntry::FieldRef {
                class,
                name_and_type,
            }
            | ConstEntry::MethodRef {
                class,
                name_and_type,
            }
            | ConstEntry::InterfaceMethodRef {
                class,
                name_and_type,
            } => (*class, *name_and_type),
            _ => {
                return Err(ClassFileError::BadConstantIndex {
                    index,
                    expected: "member ref",
                });
            }
        };
        let class_name = self.class_name_at(class)?;
        let (name, desc) = self.name_and_type_at(nat)?;
        Ok((class_name, name, desc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utf8_interning_shares_slots() {
        let mut cp = ConstPool::new();
        let a = cp.utf8("hello").unwrap();
        let b = cp.utf8("hello").unwrap();
        let c = cp.utf8("world").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(cp.utf8_at(a).unwrap(), "hello");
    }

    #[test]
    fn member_refs_resolve_transitively() {
        let mut cp = ConstPool::new();
        let m = cp.method_ref("Foo", "bar", "(I)V").unwrap();
        let (c, n, d) = cp.member_ref_at(m).unwrap();
        assert_eq!((c, n, d), ("Foo", "bar", "(I)V"));
    }

    #[test]
    fn index_zero_is_invalid() {
        let cp = ConstPool::new();
        assert!(cp.get(0).is_err());
        assert!(cp.get(1).is_err());
    }

    #[test]
    fn numeric_interning() {
        let mut cp = ConstPool::new();
        assert_eq!(cp.integer(42).unwrap(), cp.integer(42).unwrap());
        assert_ne!(cp.integer(42).unwrap(), cp.integer(43).unwrap());
        assert_eq!(cp.long(1 << 40).unwrap(), cp.long(1 << 40).unwrap());
        // f32 NaN interning is bitwise.
        assert_eq!(cp.float(f32::NAN).unwrap(), cp.float(f32::NAN).unwrap());
    }

    #[test]
    fn string_entries_point_at_utf8() {
        let mut cp = ConstPool::new();
        let s = cp.string("lit").unwrap();
        assert_eq!(cp.string_at(s).unwrap(), "lit");
        // The same literal is interned.
        assert_eq!(s, cp.string("lit").unwrap());
    }
}
