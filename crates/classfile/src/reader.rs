//! Binary parsing of class files. The inverse of
//! [`write_class`](crate::writer::write_class); see that module for the
//! layout description.

use crate::class::{Attribute, ClassFile, Code, ExceptionTableEntry, FieldInfo, MethodInfo};
use crate::constant::{tag, ConstEntry, ConstPool};
use crate::error::{ClassFileError, Result};
use crate::flags::AccessFlags;

/// Parses a class file from bytes, running structural validation.
pub fn read_class(bytes: &[u8]) -> Result<ClassFile> {
    let mut r = Reader { bytes, pos: 0 };

    let magic = r.u32("magic")?;
    if magic != crate::MAGIC {
        return Err(ClassFileError::BadMagic(magic));
    }
    let minor_version = r.u16("minor version")?;
    let major_version = r.u16("major version")?;
    if major_version > crate::MAJOR_VERSION {
        return Err(ClassFileError::UnsupportedVersion {
            major: major_version,
            minor: minor_version,
        });
    }

    let const_count = r.u16("constant count")?;
    let mut pool = ConstPool::new();
    for _ in 0..const_count {
        let t = r.u8("constant tag")?;
        let entry = match t {
            tag::UTF8 => {
                let len = r.u16("utf8 length")? as usize;
                let raw = r.slice(len, "utf8 bytes")?;
                let s = std::str::from_utf8(raw).map_err(|_| ClassFileError::BadUtf8)?;
                ConstEntry::Utf8(s.to_owned())
            }
            tag::INTEGER => ConstEntry::Integer(r.u32("integer")? as i32),
            tag::FLOAT => ConstEntry::Float(f32::from_bits(r.u32("float")?)),
            tag::LONG => ConstEntry::Long(r.u64("long")? as i64),
            tag::DOUBLE => ConstEntry::Double(f64::from_bits(r.u64("double")?)),
            tag::CLASS => ConstEntry::Class {
                name: r.u16("class name index")?,
            },
            tag::STRING => ConstEntry::String {
                utf8: r.u16("string utf8 index")?,
            },
            tag::FIELDREF => ConstEntry::FieldRef {
                class: r.u16("fieldref class")?,
                name_and_type: r.u16("fieldref nat")?,
            },
            tag::METHODREF => ConstEntry::MethodRef {
                class: r.u16("methodref class")?,
                name_and_type: r.u16("methodref nat")?,
            },
            tag::INTERFACE_METHODREF => ConstEntry::InterfaceMethodRef {
                class: r.u16("interface methodref class")?,
                name_and_type: r.u16("interface methodref nat")?,
            },
            tag::NAME_AND_TYPE => ConstEntry::NameAndType {
                name: r.u16("nat name")?,
                descriptor: r.u16("nat descriptor")?,
            },
            other => return Err(ClassFileError::BadConstantTag(other)),
        };
        pool.push_raw(entry)?;
    }

    let access = AccessFlags(r.u16("class access")?);
    let this_class = r.u16("this_class")?;
    let super_class = r.u16("super_class")?;

    let interface_count = r.u16("interface count")?;
    let mut interfaces = Vec::with_capacity(interface_count as usize);
    for _ in 0..interface_count {
        interfaces.push(r.u16("interface index")?);
    }

    let field_count = r.u16("field count")?;
    let mut fields = Vec::with_capacity(field_count as usize);
    for _ in 0..field_count {
        fields.push(FieldInfo {
            access: AccessFlags(r.u16("field access")?),
            name: r.u16("field name")?,
            descriptor: r.u16("field descriptor")?,
        });
    }

    let method_count = r.u16("method count")?;
    let mut methods = Vec::with_capacity(method_count as usize);
    for _ in 0..method_count {
        let access = AccessFlags(r.u16("method access")?);
        let name = r.u16("method name")?;
        let descriptor = r.u16("method descriptor")?;
        let has_code = r.u8("has_code flag")?;
        let code = match has_code {
            0 => None,
            1 => {
                let max_stack = r.u16("max_stack")?;
                let max_locals = r.u16("max_locals")?;
                let code_len = r.u32("code length")? as usize;
                if code_len > 1 << 24 {
                    return Err(ClassFileError::LimitExceeded("code length"));
                }
                let code = r.slice(code_len, "code bytes")?.to_vec();
                let handler_count = r.u16("handler count")?;
                let mut exception_table = Vec::with_capacity(handler_count as usize);
                for _ in 0..handler_count {
                    exception_table.push(ExceptionTableEntry {
                        start_pc: r.u32("handler start")?,
                        end_pc: r.u32("handler end")?,
                        handler_pc: r.u32("handler pc")?,
                        catch_type: r.u16("handler catch type")?,
                    });
                }
                // The bytecode must decode cleanly.
                crate::instruction::decode_all(&code)?;
                Some(Code {
                    max_stack,
                    max_locals,
                    code,
                    exception_table,
                })
            }
            other => {
                let _ = other;
                return Err(ClassFileError::Malformed("has_code flag"));
            }
        };
        methods.push(MethodInfo {
            access,
            name,
            descriptor,
            code,
        });
    }

    let attr_count = r.u16("attribute count")?;
    let mut attributes = Vec::with_capacity(attr_count as usize);
    for _ in 0..attr_count {
        let name = r.u16("attribute name")?;
        let len = r.u32("attribute length")? as usize;
        if len > 1 << 24 {
            return Err(ClassFileError::LimitExceeded("attribute length"));
        }
        let data = r.slice(len, "attribute data")?.to_vec();
        attributes.push(Attribute { name, data });
    }

    if r.pos != bytes.len() {
        return Err(ClassFileError::Malformed("trailing bytes after class file"));
    }

    let cf = ClassFile {
        minor_version,
        major_version,
        pool,
        access,
        this_class,
        super_class,
        interfaces,
        fields,
        methods,
        attributes,
    };
    cf.validate()?;
    Ok(cf)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self, ctx: &'static str) -> Result<u8> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(ClassFileError::UnexpectedEof { context: ctx })?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self, ctx: &'static str) -> Result<u16> {
        Ok(((self.u8(ctx)? as u16) << 8) | self.u8(ctx)? as u16)
    }

    fn u32(&mut self, ctx: &'static str) -> Result<u32> {
        Ok(((self.u16(ctx)? as u32) << 16) | self.u16(ctx)? as u32)
    }

    fn u64(&mut self, ctx: &'static str) -> Result<u64> {
        Ok(((self.u32(ctx)? as u64) << 32) | self.u32(ctx)? as u64)
    }

    fn slice(&mut self, len: usize, ctx: &'static str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(ClassFileError::UnexpectedEof { context: ctx })?;
        if end > self.bytes.len() {
            return Err(ClassFileError::UnexpectedEof { context: ctx });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;
    use crate::opcode::Opcode;
    use crate::writer::write_class;

    fn sample_class() -> ClassFile {
        let mut cb = ClassBuilder::new("pkg/Sample", "java/lang/Object", AccessFlags::PUBLIC);
        cb.field("count", "I", AccessFlags::STATIC | AccessFlags::PUBLIC);
        cb.field("name", "Ljava/lang/String;", AccessFlags::PUBLIC);
        cb.implements("pkg/Iface");
        let mut m = cb.method("inc", "(I)I", AccessFlags::PUBLIC | AccessFlags::STATIC);
        m.iload(0);
        m.const_int(1);
        m.op(Opcode::Iadd);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
        cb.native_method("nat", "()V", AccessFlags::PUBLIC | AccessFlags::STATIC);
        cb.build().unwrap()
    }

    #[test]
    fn round_trip() {
        let c = sample_class();
        let bytes = write_class(&c).unwrap();
        let c2 = read_class(&bytes).unwrap();
        assert_eq!(c.name().unwrap(), c2.name().unwrap());
        assert_eq!(c.fields.len(), c2.fields.len());
        assert_eq!(c.methods.len(), c2.methods.len());
        assert_eq!(
            c.find_method("inc", "(I)I").unwrap().code,
            c2.find_method("inc", "(I)I").unwrap().code
        );
        assert_eq!(c.interface_names().unwrap(), c2.interface_names().unwrap());
        // Byte-for-byte stability.
        assert_eq!(bytes, write_class(&c2).unwrap());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_class(&sample_class()).unwrap();
        bytes[0] = 0;
        assert!(matches!(
            read_class(&bytes),
            Err(ClassFileError::BadMagic(_))
        ));
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let bytes = write_class(&sample_class()).unwrap();
        // Any prefix must fail cleanly, never panic.
        for len in 0..bytes.len() {
            assert!(
                read_class(&bytes[..len]).is_err(),
                "prefix of length {len} parsed"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = write_class(&sample_class()).unwrap();
        bytes.push(0xff);
        assert!(read_class(&bytes).is_err());
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = write_class(&sample_class()).unwrap();
        // major version lives at offset 6..8
        bytes[6] = 0xff;
        assert!(matches!(
            read_class(&bytes),
            Err(ClassFileError::UnsupportedVersion { .. })
        ));
    }
}
