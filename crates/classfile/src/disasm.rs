//! Textual disassembler, mainly for debugging and golden tests.

use crate::class::ClassFile;
use crate::constant::ConstPool;
use crate::error::Result;
use crate::instruction::{decode_all, Instruction};
use std::fmt::Write as _;

/// Disassembles a whole class into a `javap`-like listing.
pub fn disassemble(class: &ClassFile) -> Result<String> {
    let mut out = String::new();
    let name = class.name()?;
    writeln!(out, "{} class {}", class.access, name).unwrap();
    if let Some(sup) = class.super_name()? {
        writeln!(out, "  extends {sup}").unwrap();
    }
    for i in class.interface_names()? {
        writeln!(out, "  implements {i}").unwrap();
    }
    for f in &class.fields {
        writeln!(
            out,
            "  {} field {} : {}",
            f.access,
            class.pool.utf8_at(f.name)?,
            class.pool.utf8_at(f.descriptor)?
        )
        .unwrap();
    }
    for m in &class.methods {
        let mname = class.pool.utf8_at(m.name)?;
        let mdesc = class.pool.utf8_at(m.descriptor)?;
        writeln!(out, "  {} method {}{}", m.access, mname, mdesc).unwrap();
        if let Some(code) = &m.code {
            writeln!(
                out,
                "    // max_stack={} max_locals={}",
                code.max_stack, code.max_locals
            )
            .unwrap();
            for (pc, insn) in decode_all(&code.code)? {
                writeln!(out, "    {pc:5}: {}", format_insn(&insn, &class.pool)).unwrap();
            }
            for e in &code.exception_table {
                let ty = if e.catch_type == 0 {
                    "any".to_owned()
                } else {
                    class.pool.class_name_at(e.catch_type)?.to_owned()
                };
                writeln!(
                    out,
                    "    catch {} [{}, {}) -> {}",
                    ty, e.start_pc, e.end_pc, e.handler_pc
                )
                .unwrap();
            }
        }
    }
    Ok(out)
}

/// Formats one instruction with symbolic constant-pool operands.
pub fn format_insn(insn: &Instruction, pool: &ConstPool) -> String {
    match insn {
        Instruction::Simple(op) => op.mnemonic().to_owned(),
        Instruction::Bipush(v) => format!("bipush {v}"),
        Instruction::Sipush(v) => format!("sipush {v}"),
        Instruction::Ldc(idx) => {
            let lit = match pool.get(*idx) {
                Ok(crate::constant::ConstEntry::Integer(v)) => format!("int {v}"),
                Ok(crate::constant::ConstEntry::Long(v)) => format!("long {v}"),
                Ok(crate::constant::ConstEntry::Float(v)) => format!("float {v}"),
                Ok(crate::constant::ConstEntry::Double(v)) => format!("double {v}"),
                Ok(crate::constant::ConstEntry::String { .. }) => {
                    format!("String {:?}", pool.string_at(*idx).unwrap_or("<bad>"))
                }
                _ => format!("#{idx}"),
            };
            format!("ldc {lit}")
        }
        Instruction::Local(op, n) => format!("{} {n}", op.mnemonic()),
        Instruction::Iinc { local, delta } => format!("iinc {local}, {delta}"),
        Instruction::Branch(op, target) => format!("{} -> {target}", op.mnemonic()),
        Instruction::Tableswitch {
            default,
            low,
            targets,
        } => {
            let mut s = format!("tableswitch low={low} default->{default}");
            for (i, t) in targets.iter().enumerate() {
                write!(s, " {}->{}", *low as i64 + i as i64, t).unwrap();
            }
            s
        }
        Instruction::Lookupswitch { default, pairs } => {
            let mut s = format!("lookupswitch default->{default}");
            for (k, t) in pairs {
                write!(s, " {k}->{t}").unwrap();
            }
            s
        }
        Instruction::Field(op, idx) | Instruction::Invoke(op, idx) => {
            match pool.member_ref_at(*idx) {
                Ok((c, n, d)) => format!("{} {c}.{n}:{d}", op.mnemonic()),
                Err(_) => format!("{} #{idx}", op.mnemonic()),
            }
        }
        Instruction::New(idx) => {
            format!("new {}", pool.class_name_at(*idx).unwrap_or("<bad>"))
        }
        Instruction::Newarray(code) => {
            let ty = crate::descriptor::BaseType::from_newarray_code(*code)
                .map(|b| b.descriptor_char().to_string())
                .unwrap_or_else(|| format!("atype {code}"));
            format!("newarray {ty}")
        }
        Instruction::Anewarray(idx) => {
            format!("anewarray {}", pool.class_name_at(*idx).unwrap_or("<bad>"))
        }
        Instruction::Checkcast(idx) => {
            format!("checkcast {}", pool.class_name_at(*idx).unwrap_or("<bad>"))
        }
        Instruction::Instanceof(idx) => {
            format!("instanceof {}", pool.class_name_at(*idx).unwrap_or("<bad>"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;
    use crate::flags::AccessFlags;
    use crate::opcode::Opcode;

    #[test]
    fn disassembly_mentions_symbols() {
        let mut cb = ClassBuilder::new("D", "java/lang/Object", AccessFlags::PUBLIC);
        cb.field("x", "I", AccessFlags::STATIC);
        let mut m = cb.method("f", "()I", AccessFlags::STATIC);
        m.getstatic("D", "x", "I");
        m.op(Opcode::Ireturn);
        m.done().unwrap();
        let c = cb.build().unwrap();
        let text = disassemble(&c).unwrap();
        assert!(text.contains("class D"), "{text}");
        assert!(text.contains("getstatic D.x:I"), "{text}");
        assert!(text.contains("ireturn"), "{text}");
    }
}
