//! Binary serialization of class files.
//!
//! Layout (all integers big-endian, mirroring the JVM format):
//!
//! ```text
//! u32 magic (0xCAFEBABE)
//! u16 minor, u16 major
//! u16 constant_count (number of entries; slot 0 is implicit)
//! entries: tag u8 + payload
//! u16 access, u16 this_class, u16 super_class
//! u16 interface_count + u16 per interface
//! u16 field_count + (u16 access, u16 name, u16 descriptor) per field
//! u16 method_count + method records
//! u16 attribute_count + (u16 name, u32 len, bytes) per attribute
//! ```
//!
//! A method record is `u16 access, u16 name, u16 descriptor, u8 has_code`
//! followed, when `has_code == 1`, by `u16 max_stack, u16 max_locals,
//! u32 code_len, code bytes, u16 handler_count` and per handler
//! `u32 start, u32 end, u32 handler, u16 catch_type`.

use crate::class::ClassFile;
use crate::constant::ConstEntry;
use crate::error::Result;

/// Serializes a class file to bytes. The inverse of
/// [`read_class`](crate::reader::read_class).
pub fn write_class(class: &ClassFile) -> Result<Vec<u8>> {
    class.validate()?;
    let mut out = Vec::with_capacity(1024);
    w32(&mut out, crate::MAGIC);
    w16(&mut out, class.minor_version);
    w16(&mut out, class.major_version);

    w16(&mut out, class.pool.len() as u16);
    for (_, entry) in class.pool.iter() {
        out.push(entry.tag());
        match entry {
            ConstEntry::Utf8(s) => {
                w16(&mut out, s.len() as u16);
                out.extend_from_slice(s.as_bytes());
            }
            ConstEntry::Integer(v) => w32(&mut out, *v as u32),
            ConstEntry::Float(v) => w32(&mut out, v.to_bits()),
            ConstEntry::Long(v) => w64(&mut out, *v as u64),
            ConstEntry::Double(v) => w64(&mut out, v.to_bits()),
            ConstEntry::Class { name } => w16(&mut out, *name),
            ConstEntry::String { utf8 } => w16(&mut out, *utf8),
            ConstEntry::FieldRef {
                class,
                name_and_type,
            }
            | ConstEntry::MethodRef {
                class,
                name_and_type,
            }
            | ConstEntry::InterfaceMethodRef {
                class,
                name_and_type,
            } => {
                w16(&mut out, *class);
                w16(&mut out, *name_and_type);
            }
            ConstEntry::NameAndType { name, descriptor } => {
                w16(&mut out, *name);
                w16(&mut out, *descriptor);
            }
        }
    }

    w16(&mut out, class.access.0);
    w16(&mut out, class.this_class);
    w16(&mut out, class.super_class);

    w16(&mut out, class.interfaces.len() as u16);
    for &i in &class.interfaces {
        w16(&mut out, i);
    }

    w16(&mut out, class.fields.len() as u16);
    for f in &class.fields {
        w16(&mut out, f.access.0);
        w16(&mut out, f.name);
        w16(&mut out, f.descriptor);
    }

    w16(&mut out, class.methods.len() as u16);
    for m in &class.methods {
        w16(&mut out, m.access.0);
        w16(&mut out, m.name);
        w16(&mut out, m.descriptor);
        match &m.code {
            None => out.push(0),
            Some(code) => {
                out.push(1);
                w16(&mut out, code.max_stack);
                w16(&mut out, code.max_locals);
                w32(&mut out, code.code.len() as u32);
                out.extend_from_slice(&code.code);
                w16(&mut out, code.exception_table.len() as u16);
                for e in &code.exception_table {
                    w32(&mut out, e.start_pc);
                    w32(&mut out, e.end_pc);
                    w32(&mut out, e.handler_pc);
                    w16(&mut out, e.catch_type);
                }
            }
        }
    }

    w16(&mut out, class.attributes.len() as u16);
    for a in &class.attributes {
        w16(&mut out, a.name);
        w32(&mut out, a.data.len() as u32);
        out.extend_from_slice(&a.data);
    }

    Ok(out)
}

fn w16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn w32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn w64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}
