//! Field and method descriptors (`I`, `Ljava/lang/String;`, `(IJ)V`, …).

use crate::error::{ClassFileError, Result};
use std::fmt;

/// A primitive type as it appears in descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseType {
    /// `Z`
    Boolean,
    /// `B`
    Byte,
    /// `C`
    Char,
    /// `S`
    Short,
    /// `I`
    Int,
    /// `J`
    Long,
    /// `F`
    Float,
    /// `D`
    Double,
}

impl BaseType {
    /// The descriptor character for this type.
    pub fn descriptor_char(self) -> char {
        match self {
            BaseType::Boolean => 'Z',
            BaseType::Byte => 'B',
            BaseType::Char => 'C',
            BaseType::Short => 'S',
            BaseType::Int => 'I',
            BaseType::Long => 'J',
            BaseType::Float => 'F',
            BaseType::Double => 'D',
        }
    }

    /// The `newarray` atype operand for this type (JVM encoding).
    pub fn newarray_code(self) -> u8 {
        match self {
            BaseType::Boolean => 4,
            BaseType::Char => 5,
            BaseType::Float => 6,
            BaseType::Double => 7,
            BaseType::Byte => 8,
            BaseType::Short => 9,
            BaseType::Int => 10,
            BaseType::Long => 11,
        }
    }

    /// Inverse of [`BaseType::newarray_code`].
    pub fn from_newarray_code(code: u8) -> Option<BaseType> {
        Some(match code {
            4 => BaseType::Boolean,
            5 => BaseType::Char,
            6 => BaseType::Float,
            7 => BaseType::Double,
            8 => BaseType::Byte,
            9 => BaseType::Short,
            10 => BaseType::Int,
            11 => BaseType::Long,
            _ => return None,
        })
    }
}

/// The type of a field, parameter, return value or array element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// A primitive type.
    Base(BaseType),
    /// A class reference, holding the internal name (`java/lang/String`).
    Object(String),
    /// An array with the given element type.
    Array(Box<FieldType>),
}

impl FieldType {
    /// Convenience constructor for an object type.
    pub fn object(internal_name: &str) -> FieldType {
        FieldType::Object(internal_name.to_owned())
    }

    /// Convenience constructor for an array of `elem`.
    pub fn array(elem: FieldType) -> FieldType {
        FieldType::Array(Box::new(elem))
    }

    /// Parses a field descriptor; the whole string must be consumed.
    pub fn parse(desc: &str) -> Result<FieldType> {
        let mut chars = desc.chars().peekable();
        let t = parse_field_type(&mut chars, desc)?;
        if chars.next().is_some() {
            return Err(ClassFileError::BadDescriptor(desc.to_owned()));
        }
        Ok(t)
    }

    /// `true` for reference types (objects and arrays).
    pub fn is_reference(&self) -> bool {
        matches!(self, FieldType::Object(_) | FieldType::Array(_))
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Base(b) => write!(f, "{}", b.descriptor_char()),
            FieldType::Object(name) => write!(f, "L{name};"),
            FieldType::Array(elem) => write!(f, "[{elem}"),
        }
    }
}

fn parse_field_type(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    whole: &str,
) -> Result<FieldType> {
    let bad = || ClassFileError::BadDescriptor(whole.to_owned());
    match chars.next().ok_or_else(bad)? {
        'Z' => Ok(FieldType::Base(BaseType::Boolean)),
        'B' => Ok(FieldType::Base(BaseType::Byte)),
        'C' => Ok(FieldType::Base(BaseType::Char)),
        'S' => Ok(FieldType::Base(BaseType::Short)),
        'I' => Ok(FieldType::Base(BaseType::Int)),
        'J' => Ok(FieldType::Base(BaseType::Long)),
        'F' => Ok(FieldType::Base(BaseType::Float)),
        'D' => Ok(FieldType::Base(BaseType::Double)),
        'L' => {
            let mut name = String::new();
            loop {
                match chars.next().ok_or_else(bad)? {
                    ';' => break,
                    c => name.push(c),
                }
            }
            if name.is_empty() {
                return Err(bad());
            }
            Ok(FieldType::Object(name))
        }
        '[' => Ok(FieldType::Array(Box::new(parse_field_type(chars, whole)?))),
        _ => Err(bad()),
    }
}

/// A parsed method descriptor: parameter types and optional return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodDescriptor {
    /// Parameter types in declaration order.
    pub params: Vec<FieldType>,
    /// Return type, or `None` for `void`.
    pub ret: Option<FieldType>,
}

impl MethodDescriptor {
    /// Parses a method descriptor such as `(ILjava/lang/String;)V`.
    pub fn parse(desc: &str) -> Result<MethodDescriptor> {
        let bad = || ClassFileError::BadDescriptor(desc.to_owned());
        let mut chars = desc.chars().peekable();
        if chars.next() != Some('(') {
            return Err(bad());
        }
        let mut params = Vec::new();
        loop {
            match chars.peek() {
                Some(')') => {
                    chars.next();
                    break;
                }
                Some(_) => params.push(parse_field_type(&mut chars, desc)?),
                None => return Err(bad()),
            }
        }
        let ret = match chars.peek() {
            Some('V') => {
                chars.next();
                None
            }
            Some(_) => Some(parse_field_type(&mut chars, desc)?),
            None => return Err(bad()),
        };
        if chars.next().is_some() {
            return Err(bad());
        }
        Ok(MethodDescriptor { params, ret })
    }

    /// Number of parameter slots (one per parameter in this crate's
    /// single-slot model), not counting the receiver.
    pub fn param_slots(&self) -> usize {
        self.params.len()
    }

    /// `true` when the method returns `void`.
    pub fn is_void(&self) -> bool {
        self.ret.is_none()
    }
}

impl fmt::Display for MethodDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for p in &self.params {
            write!(f, "{p}")?;
        }
        f.write_str(")")?;
        match &self.ret {
            None => f.write_str("V"),
            Some(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_primitives() {
        assert_eq!(
            FieldType::parse("I").unwrap(),
            FieldType::Base(BaseType::Int)
        );
        assert_eq!(
            FieldType::parse("D").unwrap(),
            FieldType::Base(BaseType::Double)
        );
        assert!(FieldType::parse("Q").is_err());
        assert!(FieldType::parse("II").is_err());
    }

    #[test]
    fn parse_objects_and_arrays() {
        assert_eq!(
            FieldType::parse("Ljava/lang/String;").unwrap(),
            FieldType::object("java/lang/String")
        );
        assert_eq!(
            FieldType::parse("[[I").unwrap(),
            FieldType::array(FieldType::array(FieldType::Base(BaseType::Int)))
        );
        assert!(FieldType::parse("L;").is_err());
        assert!(FieldType::parse("Lfoo").is_err());
        assert!(FieldType::parse("[").is_err());
    }

    #[test]
    fn parse_method_descriptors() {
        let d = MethodDescriptor::parse("(ILjava/lang/String;[J)V").unwrap();
        assert_eq!(d.params.len(), 3);
        assert!(d.is_void());
        assert_eq!(d.to_string(), "(ILjava/lang/String;[J)V");

        let d = MethodDescriptor::parse("()Ljava/lang/Object;").unwrap();
        assert!(d.params.is_empty());
        assert_eq!(d.ret, Some(FieldType::object("java/lang/Object")));

        assert!(MethodDescriptor::parse("I)V").is_err());
        assert!(MethodDescriptor::parse("(I").is_err());
        assert!(MethodDescriptor::parse("(I)VV").is_err());
        assert!(MethodDescriptor::parse("(I)").is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in ["(JDF)Z", "()V", "([[Ljava/lang/Object;I)[B"] {
            let d = MethodDescriptor::parse(s).unwrap();
            assert_eq!(d.to_string(), s);
            assert_eq!(MethodDescriptor::parse(&d.to_string()).unwrap(), d);
        }
    }

    #[test]
    fn newarray_codes_round_trip() {
        for b in [
            BaseType::Boolean,
            BaseType::Byte,
            BaseType::Char,
            BaseType::Short,
            BaseType::Int,
            BaseType::Long,
            BaseType::Float,
            BaseType::Double,
        ] {
            assert_eq!(BaseType::from_newarray_code(b.newarray_code()), Some(b));
        }
        assert_eq!(BaseType::from_newarray_code(3), None);
    }
}
