//! Bytecode opcodes. Numbering follows the JVM specification.

use crate::error::{ClassFileError, Result};

/// A bytecode opcode.
///
/// The numeric values are identical to the JVM specification for every
/// opcode this crate supports. Unsupported JVM opcodes (`jsr`, `ret`,
/// `wide`, `invokedynamic`, …) are rejected by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // the mnemonics are self-describing
pub enum Opcode {
    Nop = 0x00,
    AconstNull = 0x01,
    IconstM1 = 0x02,
    Iconst0 = 0x03,
    Iconst1 = 0x04,
    Iconst2 = 0x05,
    Iconst3 = 0x06,
    Iconst4 = 0x07,
    Iconst5 = 0x08,
    Lconst0 = 0x09,
    Lconst1 = 0x0a,
    Fconst0 = 0x0b,
    Fconst1 = 0x0c,
    Fconst2 = 0x0d,
    Dconst0 = 0x0e,
    Dconst1 = 0x0f,
    Bipush = 0x10,
    Sipush = 0x11,
    Ldc = 0x12,
    LdcW = 0x13,
    Ldc2W = 0x14,
    Iload = 0x15,
    Lload = 0x16,
    Fload = 0x17,
    Dload = 0x18,
    Aload = 0x19,
    Iload0 = 0x1a,
    Iload1 = 0x1b,
    Iload2 = 0x1c,
    Iload3 = 0x1d,
    Lload0 = 0x1e,
    Lload1 = 0x1f,
    Lload2 = 0x20,
    Lload3 = 0x21,
    Fload0 = 0x22,
    Fload1 = 0x23,
    Fload2 = 0x24,
    Fload3 = 0x25,
    Dload0 = 0x26,
    Dload1 = 0x27,
    Dload2 = 0x28,
    Dload3 = 0x29,
    Aload0 = 0x2a,
    Aload1 = 0x2b,
    Aload2 = 0x2c,
    Aload3 = 0x2d,
    Iaload = 0x2e,
    Laload = 0x2f,
    Faload = 0x30,
    Daload = 0x31,
    Aaload = 0x32,
    Baload = 0x33,
    Caload = 0x34,
    Saload = 0x35,
    Istore = 0x36,
    Lstore = 0x37,
    Fstore = 0x38,
    Dstore = 0x39,
    Astore = 0x3a,
    Istore0 = 0x3b,
    Istore1 = 0x3c,
    Istore2 = 0x3d,
    Istore3 = 0x3e,
    Lstore0 = 0x3f,
    Lstore1 = 0x40,
    Lstore2 = 0x41,
    Lstore3 = 0x42,
    Fstore0 = 0x43,
    Fstore1 = 0x44,
    Fstore2 = 0x45,
    Fstore3 = 0x46,
    Dstore0 = 0x47,
    Dstore1 = 0x48,
    Dstore2 = 0x49,
    Dstore3 = 0x4a,
    Astore0 = 0x4b,
    Astore1 = 0x4c,
    Astore2 = 0x4d,
    Astore3 = 0x4e,
    Iastore = 0x4f,
    Lastore = 0x50,
    Fastore = 0x51,
    Dastore = 0x52,
    Aastore = 0x53,
    Bastore = 0x54,
    Castore = 0x55,
    Sastore = 0x56,
    Pop = 0x57,
    Pop2 = 0x58,
    Dup = 0x59,
    DupX1 = 0x5a,
    DupX2 = 0x5b,
    Dup2 = 0x5c,
    Dup2X1 = 0x5d,
    Dup2X2 = 0x5e,
    Swap = 0x5f,
    Iadd = 0x60,
    Ladd = 0x61,
    Fadd = 0x62,
    Dadd = 0x63,
    Isub = 0x64,
    Lsub = 0x65,
    Fsub = 0x66,
    Dsub = 0x67,
    Imul = 0x68,
    Lmul = 0x69,
    Fmul = 0x6a,
    Dmul = 0x6b,
    Idiv = 0x6c,
    Ldiv = 0x6d,
    Fdiv = 0x6e,
    Ddiv = 0x6f,
    Irem = 0x70,
    Lrem = 0x71,
    Frem = 0x72,
    Drem = 0x73,
    Ineg = 0x74,
    Lneg = 0x75,
    Fneg = 0x76,
    Dneg = 0x77,
    Ishl = 0x78,
    Lshl = 0x79,
    Ishr = 0x7a,
    Lshr = 0x7b,
    Iushr = 0x7c,
    Lushr = 0x7d,
    Iand = 0x7e,
    Land = 0x7f,
    Ior = 0x80,
    Lor = 0x81,
    Ixor = 0x82,
    Lxor = 0x83,
    Iinc = 0x84,
    I2l = 0x85,
    I2f = 0x86,
    I2d = 0x87,
    L2i = 0x88,
    L2f = 0x89,
    L2d = 0x8a,
    F2i = 0x8b,
    F2l = 0x8c,
    F2d = 0x8d,
    D2i = 0x8e,
    D2l = 0x8f,
    D2f = 0x90,
    I2b = 0x91,
    I2c = 0x92,
    I2s = 0x93,
    Lcmp = 0x94,
    Fcmpl = 0x95,
    Fcmpg = 0x96,
    Dcmpl = 0x97,
    Dcmpg = 0x98,
    Ifeq = 0x99,
    Ifne = 0x9a,
    Iflt = 0x9b,
    Ifge = 0x9c,
    Ifgt = 0x9d,
    Ifle = 0x9e,
    IfIcmpeq = 0x9f,
    IfIcmpne = 0xa0,
    IfIcmplt = 0xa1,
    IfIcmpge = 0xa2,
    IfIcmpgt = 0xa3,
    IfIcmple = 0xa4,
    IfAcmpeq = 0xa5,
    IfAcmpne = 0xa6,
    Goto = 0xa7,
    Tableswitch = 0xaa,
    Lookupswitch = 0xab,
    Ireturn = 0xac,
    Lreturn = 0xad,
    Freturn = 0xae,
    Dreturn = 0xaf,
    Areturn = 0xb0,
    Return = 0xb1,
    Getstatic = 0xb2,
    Putstatic = 0xb3,
    Getfield = 0xb4,
    Putfield = 0xb5,
    Invokevirtual = 0xb6,
    Invokespecial = 0xb7,
    Invokestatic = 0xb8,
    Invokeinterface = 0xb9,
    New = 0xbb,
    Newarray = 0xbc,
    Anewarray = 0xbd,
    Arraylength = 0xbe,
    Athrow = 0xbf,
    Checkcast = 0xc0,
    Instanceof = 0xc1,
    Monitorenter = 0xc2,
    Monitorexit = 0xc3,
    Ifnull = 0xc6,
    Ifnonnull = 0xc7,
}

impl Opcode {
    /// Decodes a raw opcode byte.
    pub fn from_byte(b: u8) -> Result<Opcode> {
        OPCODE_TABLE[b as usize].ok_or(ClassFileError::BadOpcode(b))
    }

    /// The raw opcode byte.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// The standard mnemonic (e.g. `"iload_0"`).
    pub fn mnemonic(self) -> &'static str {
        MNEMONICS[self as u8 as usize]
    }

    /// `true` for conditional branches and `goto`.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::Ifeq
                | Opcode::Ifne
                | Opcode::Iflt
                | Opcode::Ifge
                | Opcode::Ifgt
                | Opcode::Ifle
                | Opcode::IfIcmpeq
                | Opcode::IfIcmpne
                | Opcode::IfIcmplt
                | Opcode::IfIcmpge
                | Opcode::IfIcmpgt
                | Opcode::IfIcmple
                | Opcode::IfAcmpeq
                | Opcode::IfAcmpne
                | Opcode::Goto
                | Opcode::Ifnull
                | Opcode::Ifnonnull
        )
    }

    /// `true` for instructions that never fall through (`goto`, returns,
    /// `athrow`, switches).
    pub fn ends_basic_block(self) -> bool {
        matches!(
            self,
            Opcode::Goto
                | Opcode::Tableswitch
                | Opcode::Lookupswitch
                | Opcode::Ireturn
                | Opcode::Lreturn
                | Opcode::Freturn
                | Opcode::Dreturn
                | Opcode::Areturn
                | Opcode::Return
                | Opcode::Athrow
        )
    }
}

const fn build_table() -> [Option<Opcode>; 256] {
    let mut t: [Option<Opcode>; 256] = [None; 256];
    // Contiguous runs are filled by transmuting validated byte values; done
    // explicitly because const fns cannot loop over enum variants.
    macro_rules! set {
        ($t:ident, $($op:ident),* $(,)?) => {
            $( $t[Opcode::$op as usize] = Some(Opcode::$op); )*
        };
    }
    set!(
        t,
        Nop,
        AconstNull,
        IconstM1,
        Iconst0,
        Iconst1,
        Iconst2,
        Iconst3,
        Iconst4,
        Iconst5,
        Lconst0,
        Lconst1,
        Fconst0,
        Fconst1,
        Fconst2,
        Dconst0,
        Dconst1,
        Bipush,
        Sipush,
        Ldc,
        LdcW,
        Ldc2W,
        Iload,
        Lload,
        Fload,
        Dload,
        Aload,
        Iload0,
        Iload1,
        Iload2,
        Iload3,
        Lload0,
        Lload1,
        Lload2,
        Lload3,
        Fload0,
        Fload1,
        Fload2,
        Fload3,
        Dload0,
        Dload1,
        Dload2,
        Dload3,
        Aload0,
        Aload1,
        Aload2,
        Aload3,
        Iaload,
        Laload,
        Faload,
        Daload,
        Aaload,
        Baload,
        Caload,
        Saload,
        Istore,
        Lstore,
        Fstore,
        Dstore,
        Astore,
        Istore0,
        Istore1,
        Istore2,
        Istore3,
        Lstore0,
        Lstore1,
        Lstore2,
        Lstore3,
        Fstore0,
        Fstore1,
        Fstore2,
        Fstore3,
        Dstore0,
        Dstore1,
        Dstore2,
        Dstore3,
        Astore0,
        Astore1,
        Astore2,
        Astore3,
        Iastore,
        Lastore,
        Fastore,
        Dastore,
        Aastore,
        Bastore,
        Castore,
        Sastore,
        Pop,
        Pop2,
        Dup,
        DupX1,
        DupX2,
        Dup2,
        Dup2X1,
        Dup2X2,
        Swap,
        Iadd,
        Ladd,
        Fadd,
        Dadd,
        Isub,
        Lsub,
        Fsub,
        Dsub,
        Imul,
        Lmul,
        Fmul,
        Dmul,
        Idiv,
        Ldiv,
        Fdiv,
        Ddiv,
        Irem,
        Lrem,
        Frem,
        Drem,
        Ineg,
        Lneg,
        Fneg,
        Dneg,
        Ishl,
        Lshl,
        Ishr,
        Lshr,
        Iushr,
        Lushr,
        Iand,
        Land,
        Ior,
        Lor,
        Ixor,
        Lxor,
        Iinc,
        I2l,
        I2f,
        I2d,
        L2i,
        L2f,
        L2d,
        F2i,
        F2l,
        F2d,
        D2i,
        D2l,
        D2f,
        I2b,
        I2c,
        I2s,
        Lcmp,
        Fcmpl,
        Fcmpg,
        Dcmpl,
        Dcmpg,
        Ifeq,
        Ifne,
        Iflt,
        Ifge,
        Ifgt,
        Ifle,
        IfIcmpeq,
        IfIcmpne,
        IfIcmplt,
        IfIcmpge,
        IfIcmpgt,
        IfIcmple,
        IfAcmpeq,
        IfAcmpne,
        Goto,
        Tableswitch,
        Lookupswitch,
        Ireturn,
        Lreturn,
        Freturn,
        Dreturn,
        Areturn,
        Return,
        Getstatic,
        Putstatic,
        Getfield,
        Putfield,
        Invokevirtual,
        Invokespecial,
        Invokestatic,
        Invokeinterface,
        New,
        Newarray,
        Anewarray,
        Arraylength,
        Athrow,
        Checkcast,
        Instanceof,
        Monitorenter,
        Monitorexit,
        Ifnull,
        Ifnonnull,
    );
    t
}

/// Lookup table from opcode byte to [`Opcode`].
pub static OPCODE_TABLE: [Option<Opcode>; 256] = build_table();

const fn build_mnemonics() -> [&'static str; 256] {
    let mut m: [&'static str; 256] = ["<invalid>"; 256];
    macro_rules! name {
        ($m:ident, $($op:ident => $s:literal),* $(,)?) => {
            $( $m[Opcode::$op as usize] = $s; )*
        };
    }
    name!(
        m,
        Nop => "nop", AconstNull => "aconst_null", IconstM1 => "iconst_m1",
        Iconst0 => "iconst_0", Iconst1 => "iconst_1", Iconst2 => "iconst_2",
        Iconst3 => "iconst_3", Iconst4 => "iconst_4", Iconst5 => "iconst_5",
        Lconst0 => "lconst_0", Lconst1 => "lconst_1", Fconst0 => "fconst_0",
        Fconst1 => "fconst_1", Fconst2 => "fconst_2", Dconst0 => "dconst_0",
        Dconst1 => "dconst_1", Bipush => "bipush", Sipush => "sipush", Ldc => "ldc",
        LdcW => "ldc_w", Ldc2W => "ldc2_w", Iload => "iload", Lload => "lload",
        Fload => "fload", Dload => "dload", Aload => "aload", Iload0 => "iload_0",
        Iload1 => "iload_1", Iload2 => "iload_2", Iload3 => "iload_3", Lload0 => "lload_0",
        Lload1 => "lload_1", Lload2 => "lload_2", Lload3 => "lload_3", Fload0 => "fload_0",
        Fload1 => "fload_1", Fload2 => "fload_2", Fload3 => "fload_3", Dload0 => "dload_0",
        Dload1 => "dload_1", Dload2 => "dload_2", Dload3 => "dload_3", Aload0 => "aload_0",
        Aload1 => "aload_1", Aload2 => "aload_2", Aload3 => "aload_3", Iaload => "iaload",
        Laload => "laload", Faload => "faload", Daload => "daload", Aaload => "aaload",
        Baload => "baload", Caload => "caload", Saload => "saload", Istore => "istore",
        Lstore => "lstore", Fstore => "fstore", Dstore => "dstore", Astore => "astore",
        Istore0 => "istore_0", Istore1 => "istore_1", Istore2 => "istore_2",
        Istore3 => "istore_3", Lstore0 => "lstore_0", Lstore1 => "lstore_1",
        Lstore2 => "lstore_2", Lstore3 => "lstore_3", Fstore0 => "fstore_0",
        Fstore1 => "fstore_1", Fstore2 => "fstore_2", Fstore3 => "fstore_3",
        Dstore0 => "dstore_0", Dstore1 => "dstore_1", Dstore2 => "dstore_2",
        Dstore3 => "dstore_3", Astore0 => "astore_0", Astore1 => "astore_1",
        Astore2 => "astore_2", Astore3 => "astore_3", Iastore => "iastore",
        Lastore => "lastore", Fastore => "fastore", Dastore => "dastore",
        Aastore => "aastore", Bastore => "bastore", Castore => "castore",
        Sastore => "sastore", Pop => "pop", Pop2 => "pop2", Dup => "dup", DupX1 => "dup_x1",
        DupX2 => "dup_x2", Dup2 => "dup2", Dup2X1 => "dup2_x1", Dup2X2 => "dup2_x2",
        Swap => "swap", Iadd => "iadd", Ladd => "ladd", Fadd => "fadd", Dadd => "dadd",
        Isub => "isub", Lsub => "lsub", Fsub => "fsub", Dsub => "dsub", Imul => "imul",
        Lmul => "lmul", Fmul => "fmul", Dmul => "dmul", Idiv => "idiv", Ldiv => "ldiv",
        Fdiv => "fdiv", Ddiv => "ddiv", Irem => "irem", Lrem => "lrem", Frem => "frem",
        Drem => "drem", Ineg => "ineg", Lneg => "lneg", Fneg => "fneg", Dneg => "dneg",
        Ishl => "ishl", Lshl => "lshl", Ishr => "ishr", Lshr => "lshr", Iushr => "iushr",
        Lushr => "lushr", Iand => "iand", Land => "land", Ior => "ior", Lor => "lor",
        Ixor => "ixor", Lxor => "lxor", Iinc => "iinc", I2l => "i2l", I2f => "i2f",
        I2d => "i2d", L2i => "l2i", L2f => "l2f", L2d => "l2d", F2i => "f2i", F2l => "f2l",
        F2d => "f2d", D2i => "d2i", D2l => "d2l", D2f => "d2f", I2b => "i2b", I2c => "i2c",
        I2s => "i2s", Lcmp => "lcmp", Fcmpl => "fcmpl", Fcmpg => "fcmpg", Dcmpl => "dcmpl",
        Dcmpg => "dcmpg", Ifeq => "ifeq", Ifne => "ifne", Iflt => "iflt", Ifge => "ifge",
        Ifgt => "ifgt", Ifle => "ifle", IfIcmpeq => "if_icmpeq", IfIcmpne => "if_icmpne",
        IfIcmplt => "if_icmplt", IfIcmpge => "if_icmpge", IfIcmpgt => "if_icmpgt",
        IfIcmple => "if_icmple", IfAcmpeq => "if_acmpeq", IfAcmpne => "if_acmpne",
        Goto => "goto", Tableswitch => "tableswitch", Lookupswitch => "lookupswitch",
        Ireturn => "ireturn", Lreturn => "lreturn", Freturn => "freturn",
        Dreturn => "dreturn", Areturn => "areturn", Return => "return",
        Getstatic => "getstatic", Putstatic => "putstatic", Getfield => "getfield",
        Putfield => "putfield", Invokevirtual => "invokevirtual",
        Invokespecial => "invokespecial", Invokestatic => "invokestatic",
        Invokeinterface => "invokeinterface", New => "new", Newarray => "newarray",
        Anewarray => "anewarray", Arraylength => "arraylength", Athrow => "athrow",
        Checkcast => "checkcast", Instanceof => "instanceof",
        Monitorenter => "monitorenter", Monitorexit => "monitorexit",
        Ifnull => "ifnull", Ifnonnull => "ifnonnull",
    );
    m
}

/// Lookup table from opcode byte to mnemonic.
pub static MNEMONICS: [&str; 256] = build_mnemonics();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_supported() {
        let mut count = 0;
        for b in 0u16..=255 {
            if let Ok(op) = Opcode::from_byte(b as u8) {
                assert_eq!(op.as_byte(), b as u8);
                assert_ne!(op.mnemonic(), "<invalid>");
                count += 1;
            }
        }
        // The supported subset is large (most of the JVM instruction set).
        assert!(count > 180, "only {count} opcodes supported");
    }

    #[test]
    fn unsupported_opcodes_rejected() {
        for b in [0xa8u8, 0xa9, 0xba, 0xc4, 0xc5, 0xc8, 0xc9, 0xca, 0xff] {
            assert!(
                Opcode::from_byte(b).is_err(),
                "{b:#x} should be unsupported"
            );
        }
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Goto.is_branch());
        assert!(Opcode::Ifnull.is_branch());
        assert!(!Opcode::Iadd.is_branch());
        assert!(Opcode::Return.ends_basic_block());
        assert!(Opcode::Athrow.ends_basic_block());
        assert!(!Opcode::Ifeq.ends_basic_block());
    }
}
