//! Error type shared by the reader, writer, builder and descriptor parser.

use std::fmt;

/// Result alias used throughout `ijvm-classfile`.
pub type Result<T> = std::result::Result<T, ClassFileError>;

/// Errors raised while building, encoding or decoding a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassFileError {
    /// The input ended before a complete structure could be read.
    UnexpectedEof {
        /// What the reader was trying to decode.
        context: &'static str,
    },
    /// The file does not start with the `0xCAFEBABE` magic number.
    BadMagic(u32),
    /// The file declares a version this crate does not understand.
    UnsupportedVersion {
        /// Major version found in the file.
        major: u16,
        /// Minor version found in the file.
        minor: u16,
    },
    /// A constant-pool tag byte is unknown.
    BadConstantTag(u8),
    /// A constant-pool index is out of range or refers to the wrong kind of entry.
    BadConstantIndex {
        /// The offending index.
        index: u16,
        /// What kind of entry was expected.
        expected: &'static str,
    },
    /// A UTF-8 constant contains invalid bytes.
    BadUtf8,
    /// An opcode byte is not part of the supported instruction set.
    BadOpcode(u8),
    /// A branch target or code offset is invalid.
    BadBranchTarget {
        /// Offset of the branching instruction.
        at: u32,
        /// The invalid target.
        target: i64,
    },
    /// A field or method descriptor is malformed.
    BadDescriptor(String),
    /// The builder was asked to do something inconsistent
    /// (e.g. unbound label, stack-depth mismatch at a join point).
    Builder(String),
    /// A structural limit was exceeded (too many constants, code too long, …).
    LimitExceeded(&'static str),
    /// Generic malformed-structure error with context.
    Malformed(&'static str),
}

impl fmt::Display for ClassFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassFileError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            ClassFileError::BadMagic(m) => write!(f, "bad magic number {m:#010x}"),
            ClassFileError::UnsupportedVersion { major, minor } => {
                write!(f, "unsupported class file version {major}.{minor}")
            }
            ClassFileError::BadConstantTag(t) => write!(f, "unknown constant pool tag {t}"),
            ClassFileError::BadConstantIndex { index, expected } => {
                write!(f, "constant pool index {index} is not a valid {expected}")
            }
            ClassFileError::BadUtf8 => write!(f, "invalid UTF-8 in constant pool"),
            ClassFileError::BadOpcode(op) => write!(f, "unsupported opcode {op:#04x}"),
            ClassFileError::BadBranchTarget { at, target } => {
                write!(f, "invalid branch target {target} at code offset {at}")
            }
            ClassFileError::BadDescriptor(d) => write!(f, "malformed descriptor {d:?}"),
            ClassFileError::Builder(msg) => write!(f, "builder error: {msg}"),
            ClassFileError::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
            ClassFileError::Malformed(what) => write!(f, "malformed class file: {what}"),
        }
    }
}

impl std::error::Error for ClassFileError {}
