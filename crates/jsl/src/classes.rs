//! Class files for the system library, built with the assembler.

use ijvm_classfile::{AccessFlags, ClassBuilder, ClassFile, Opcode};
use ijvm_core::error::Result;
use ijvm_core::vm::Vm;

const PUB: AccessFlags = AccessFlags::PUBLIC;
const PUBSTATIC: AccessFlags = AccessFlags(AccessFlags::PUBLIC.0 | AccessFlags::STATIC.0);

/// `java/lang/System`: console, clock, gc, exit, arraycopy.
pub fn system_class() -> ClassFile {
    let mut cb = ClassBuilder::new(
        "java/lang/System",
        "java/lang/Object",
        PUB | AccessFlags::FINAL,
    );
    for desc in [
        "(Ljava/lang/String;)V",
        "(I)V",
        "(J)V",
        "(D)V",
        "(Z)V",
        "(C)V",
        "(Ljava/lang/Object;)V",
    ] {
        cb.native_method("println", desc, PUBSTATIC);
    }
    cb.native_method("currentTimeMillis", "()J", PUBSTATIC);
    cb.native_method("nanoTime", "()J", PUBSTATIC);
    cb.native_method("gc", "()V", PUBSTATIC);
    cb.native_method("exit", "(I)V", PUBSTATIC);
    cb.native_method(
        "arraycopy",
        "(Ljava/lang/Object;ILjava/lang/Object;II)V",
        PUBSTATIC,
    );
    cb.native_method("identityHashCode", "(Ljava/lang/Object;)I", PUBSTATIC);
    cb.build().expect("java/lang/System")
}

/// `java/lang/Runnable`.
pub fn runnable_interface() -> ClassFile {
    let mut cb = ClassBuilder::new_interface("java/lang/Runnable");
    cb.abstract_method("run", "()V", PUB);
    cb.build().expect("java/lang/Runnable")
}

/// `java/lang/Thread`: green threads charged to their creating isolate.
pub fn thread_class() -> ClassFile {
    let mut cb = ClassBuilder::new("java/lang/Thread", "java/lang/Object", PUB);
    cb.implements("java/lang/Runnable");
    cb.field("target", "Ljava/lang/Runnable;", AccessFlags::PRIVATE);
    cb.field("vmTid", "I", AccessFlags::PRIVATE);

    let mut m = cb.method("<init>", "()V", PUB);
    m.aload(0);
    m.invokespecial("java/lang/Object", "<init>", "()V");
    m.op(Opcode::Return);
    m.done().expect("Thread.<init>()");

    let mut m = cb.method("<init>", "(Ljava/lang/Runnable;)V", PUB);
    m.aload(0);
    m.invokespecial("java/lang/Object", "<init>", "()V");
    m.aload(0);
    m.aload(1);
    m.putfield("java/lang/Thread", "target", "Ljava/lang/Runnable;");
    m.op(Opcode::Return);
    m.done().expect("Thread.<init>(Runnable)");

    // run(): delegate to target when present; subclasses override this.
    let mut m = cb.method("run", "()V", PUB);
    let done = m.new_label();
    m.aload(0);
    m.getfield("java/lang/Thread", "target", "Ljava/lang/Runnable;");
    m.branch(Opcode::Ifnull, done);
    m.aload(0);
    m.getfield("java/lang/Thread", "target", "Ljava/lang/Runnable;");
    m.invokeinterface("java/lang/Runnable", "run", "()V");
    m.bind(done);
    m.op(Opcode::Return);
    m.done().expect("Thread.run");

    cb.native_method("start", "()V", PUB);
    cb.native_method("join", "()V", PUB);
    cb.native_method("interrupt", "()V", PUB);
    cb.native_method("isAlive", "()Z", PUB);
    cb.native_method("sleep", "(J)V", PUBSTATIC);
    cb.native_method("yield", "()V", PUBSTATIC);
    cb.native_method("interrupted", "()Z", PUBSTATIC);
    cb.build().expect("java/lang/Thread")
}

/// `java/lang/Math` intrinsics.
pub fn math_class() -> ClassFile {
    let mut cb = ClassBuilder::new(
        "java/lang/Math",
        "java/lang/Object",
        PUB | AccessFlags::FINAL,
    );
    for (name, desc) in [
        ("abs", "(I)I"),
        ("abs", "(J)J"),
        ("abs", "(D)D"),
        ("min", "(II)I"),
        ("max", "(II)I"),
        ("min", "(JJ)J"),
        ("max", "(JJ)J"),
        ("min", "(DD)D"),
        ("max", "(DD)D"),
        ("sqrt", "(D)D"),
        ("floor", "(D)D"),
        ("ceil", "(D)D"),
        ("pow", "(DD)D"),
        ("sin", "(D)D"),
        ("cos", "(D)D"),
        ("random", "()D"),
    ] {
        cb.native_method(name, desc, PUBSTATIC);
    }
    cb.build().expect("java/lang/Math")
}

/// `java/lang/StringBuilder` backed by a growable `[C`.
pub fn stringbuilder_class() -> ClassFile {
    let mut cb = ClassBuilder::new("java/lang/StringBuilder", "java/lang/Object", PUB);
    cb.field("buf", "[C", AccessFlags::PRIVATE);
    cb.field("len", "I", AccessFlags::PRIVATE);

    let mut m = cb.method("<init>", "()V", PUB);
    m.aload(0);
    m.invokespecial("java/lang/Object", "<init>", "()V");
    m.aload(0);
    m.const_int(16);
    m.newarray(ijvm_classfile::BaseType::Char);
    m.putfield("java/lang/StringBuilder", "buf", "[C");
    m.aload(0);
    m.const_int(0);
    m.putfield("java/lang/StringBuilder", "len", "I");
    m.op(Opcode::Return);
    m.done().expect("StringBuilder.<init>");

    let mut m = cb.method("length", "()I", PUB);
    m.aload(0);
    m.getfield("java/lang/StringBuilder", "len", "I");
    m.op(Opcode::Ireturn);
    m.done().expect("StringBuilder.length");

    let sb = "Ljava/lang/StringBuilder;";
    for desc in [
        format!("(Ljava/lang/String;){sb}"),
        format!("(I){sb}"),
        format!("(J){sb}"),
        format!("(D){sb}"),
        format!("(Z){sb}"),
        format!("(C){sb}"),
        format!("(Ljava/lang/Object;){sb}"),
    ] {
        cb.native_method("append", &desc, PUB);
    }
    cb.native_method("toString", "()Ljava/lang/String;", PUB);
    cb.build().expect("java/lang/StringBuilder")
}

/// `java/util/ArrayList` backed by a growable `Object[]`.
pub fn arraylist_class() -> ClassFile {
    let mut cb = ClassBuilder::new("java/util/ArrayList", "java/lang/Object", PUB);
    cb.field("elems", "[Ljava/lang/Object;", AccessFlags::PRIVATE);
    cb.field("size", "I", AccessFlags::PRIVATE);

    let mut m = cb.method("<init>", "()V", PUB);
    m.aload(0);
    m.invokespecial("java/lang/Object", "<init>", "()V");
    m.aload(0);
    m.const_int(8);
    m.anewarray("java/lang/Object");
    m.putfield("java/util/ArrayList", "elems", "[Ljava/lang/Object;");
    m.aload(0);
    m.const_int(0);
    m.putfield("java/util/ArrayList", "size", "I");
    m.op(Opcode::Return);
    m.done().expect("ArrayList.<init>");

    let mut m = cb.method("size", "()I", PUB);
    m.aload(0);
    m.getfield("java/util/ArrayList", "size", "I");
    m.op(Opcode::Ireturn);
    m.done().expect("ArrayList.size");

    cb.native_method("add", "(Ljava/lang/Object;)Z", PUB);
    cb.native_method("get", "(I)Ljava/lang/Object;", PUB);
    cb.native_method("set", "(ILjava/lang/Object;)Ljava/lang/Object;", PUB);
    cb.native_method("remove", "(I)Ljava/lang/Object;", PUB);
    cb.native_method("clear", "()V", PUB);
    cb.native_method("contains", "(Ljava/lang/Object;)Z", PUB);
    cb.build().expect("java/util/ArrayList")
}

/// `java/util/HashMap`: linear-probing table; string keys hash by value,
/// all other keys by identity (calling back into guest `hashCode` from a
/// native is deliberately unsupported).
pub fn hashmap_class() -> ClassFile {
    let mut cb = ClassBuilder::new("java/util/HashMap", "java/lang/Object", PUB);
    cb.field("keys", "[Ljava/lang/Object;", AccessFlags::PRIVATE);
    cb.field("vals", "[Ljava/lang/Object;", AccessFlags::PRIVATE);
    cb.field("size", "I", AccessFlags::PRIVATE);

    let mut m = cb.method("<init>", "()V", PUB);
    m.aload(0);
    m.invokespecial("java/lang/Object", "<init>", "()V");
    m.aload(0);
    m.const_int(16);
    m.anewarray("java/lang/Object");
    m.putfield("java/util/HashMap", "keys", "[Ljava/lang/Object;");
    m.aload(0);
    m.const_int(16);
    m.anewarray("java/lang/Object");
    m.putfield("java/util/HashMap", "vals", "[Ljava/lang/Object;");
    m.aload(0);
    m.const_int(0);
    m.putfield("java/util/HashMap", "size", "I");
    m.op(Opcode::Return);
    m.done().expect("HashMap.<init>");

    let mut m = cb.method("size", "()I", PUB);
    m.aload(0);
    m.getfield("java/util/HashMap", "size", "I");
    m.op(Opcode::Ireturn);
    m.done().expect("HashMap.size");

    cb.native_method(
        "put",
        "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;",
        PUB,
    );
    cb.native_method("get", "(Ljava/lang/Object;)Ljava/lang/Object;", PUB);
    cb.native_method("remove", "(Ljava/lang/Object;)Ljava/lang/Object;", PUB);
    cb.native_method("containsKey", "(Ljava/lang/Object;)Z", PUB);
    cb.build().expect("java/util/HashMap")
}

/// `org/ijvm/VConnection`: a simulated connection (file/socket stand-in).
/// Opening charges a connection to the opening isolate; reads and writes
/// charge I/O bytes (paper §3.2).
pub fn vconnection_class() -> ClassFile {
    let mut cb = ClassBuilder::new("org/ijvm/VConnection", "java/lang/Object", PUB);
    cb.field("open", "Z", AccessFlags::PRIVATE);
    cb.native_method("connect", "()Lorg/ijvm/VConnection;", PUBSTATIC);
    cb.native_method("read", "(I)I", PUB);
    cb.native_method("write", "(I)I", PUB);
    cb.native_method("close", "()V", PUB);
    cb.build().expect("org/ijvm/VConnection")
}

/// Installs all JSL classes (natives must already be registered).
pub fn install_all(vm: &mut Vm) -> Result<()> {
    vm.install_system_class(&system_class())?;
    vm.install_system_class(&runnable_interface())?;
    vm.install_system_class(&thread_class())?;
    vm.install_system_class(&math_class())?;
    vm.install_system_class(&stringbuilder_class())?;
    vm.install_system_class(&arraylist_class())?;
    vm.install_system_class(&hashmap_class())?;
    vm.install_system_class(&vconnection_class())?;
    Ok(())
}
