//! Native implementations backing the system-library classes.

use ijvm_core::heap::ObjBody;
use ijvm_core::ids::{LoaderId, ThreadId};
use ijvm_core::natives::NativeResult;
use ijvm_core::thread::ThreadState;
use ijvm_core::value::{GcRef, Value};
use ijvm_core::vm::Vm;
use std::sync::Arc;
use std::sync::Mutex;

/// Registers every JSL native. Idempotent (re-registering replaces).
pub fn register_all(vm: &mut Vm) {
    register_system(vm);
    register_thread(vm);
    register_math(vm);
    register_stringbuilder(vm);
    register_arraylist(vm);
    register_hashmap(vm);
    register_vconnection(vm);
}

fn ret(v: Value) -> NativeResult {
    NativeResult::Return(Some(v))
}

fn ret_void() -> NativeResult {
    NativeResult::Return(None)
}

fn oom(what: &str) -> NativeResult {
    NativeResult::Throw {
        class_name: "java/lang/OutOfMemoryError",
        message: what.to_owned(),
    }
}

/// Formats a value for `println`, mirroring Java's `String.valueOf`.
fn display_value(vm: &Vm, v: Value) -> String {
    match v {
        Value::Int(x) => x.to_string(),
        Value::Long(x) => x.to_string(),
        Value::Float(x) => format!("{x}"),
        Value::Double(x) => format!("{x}"),
        Value::Null => "null".to_owned(),
        Value::Ref(r) => match vm.read_string(r) {
            Some(s) => s,
            None => {
                let name = vm.class(vm.heap().get(r).class).name.to_string();
                format!("{name}@{}", r.0)
            }
        },
    }
}

fn register_system(vm: &mut Vm) {
    let sys = "java/lang/System";
    for desc in ["(Ljava/lang/String;)V", "(Ljava/lang/Object;)V"] {
        vm.register_native(
            sys,
            "println",
            desc,
            Arc::new(|vm, _tid, args| {
                let line = display_value(vm, args[0]);
                vm.console_print(line);
                ret_void()
            }),
        );
    }
    for desc in ["(I)V", "(J)V", "(D)V"] {
        vm.register_native(
            sys,
            "println",
            desc,
            Arc::new(|vm, _tid, args| {
                let line = display_value(vm, args[0]);
                vm.console_print(line);
                ret_void()
            }),
        );
    }
    vm.register_native(
        sys,
        "println",
        "(Z)V",
        Arc::new(|vm, _tid, args| {
            let line = if args[0].as_int() != 0 {
                "true"
            } else {
                "false"
            };
            vm.console_print(line.to_owned());
            ret_void()
        }),
    );
    vm.register_native(
        sys,
        "println",
        "(C)V",
        Arc::new(|vm, _tid, args| {
            let c = char::from_u32(args[0].as_int() as u32).unwrap_or('?');
            vm.console_print(c.to_string());
            ret_void()
        }),
    );
    vm.register_native(
        sys,
        "currentTimeMillis",
        "()J",
        Arc::new(|vm, _tid, _args| ret(Value::Long((vm.vclock() / 1_000_000) as i64))),
    );
    vm.register_native(
        sys,
        "nanoTime",
        "()J",
        Arc::new(|vm, _tid, _args| ret(Value::Long(vm.vclock() as i64))),
    );
    vm.register_native(
        sys,
        "gc",
        "()V",
        Arc::new(|vm, tid, _args| {
            let iso = vm.current_isolate(tid);
            vm.collect_garbage(Some(iso));
            ret_void()
        }),
    );
    // Paper §3.4 rule 2: System.exit is a privileged resource; only
    // Isolate0 (the OSGi runtime) may shut the platform down.
    vm.register_native(
        sys,
        "exit",
        "(I)V",
        Arc::new(|vm, tid, args| {
            let iso = vm.current_isolate(tid);
            if vm.is_isolated() && !iso.is_privileged() {
                return NativeResult::Throw {
                    class_name: "java/lang/SecurityException",
                    message: format!("System.exit denied to {iso}"),
                };
            }
            vm.request_exit(args[0].as_int());
            ret_void()
        }),
    );
    vm.register_native(
        sys,
        "identityHashCode",
        "(Ljava/lang/Object;)I",
        Arc::new(|_vm, _tid, args| {
            let h = match args[0] {
                Value::Ref(r) => r.0 as i32,
                _ => 0,
            };
            ret(Value::Int(h))
        }),
    );
    vm.register_native(
        sys,
        "arraycopy",
        "(Ljava/lang/Object;ILjava/lang/Object;II)V",
        Arc::new(|vm, _tid, args| {
            let (Some(src), Some(dst)) = (args[0].as_ref(), args[2].as_ref()) else {
                return NativeResult::Throw {
                    class_name: "java/lang/NullPointerException",
                    message: "arraycopy".to_owned(),
                };
            };
            let (spos, dpos, len) = (
                args[1].as_int() as usize,
                args[3].as_int() as usize,
                args[4].as_int() as usize,
            );
            match copy_array(vm, src, spos, dst, dpos, len) {
                Ok(()) => ret_void(),
                Err(msg) => NativeResult::Throw {
                    class_name: "java/lang/ArrayIndexOutOfBoundsException",
                    message: msg,
                },
            }
        }),
    );
}

fn copy_array(
    vm: &mut Vm,
    src: GcRef,
    spos: usize,
    dst: GcRef,
    dpos: usize,
    len: usize,
) -> Result<(), String> {
    macro_rules! copy_kind {
        ($variant:ident) => {{
            let data: Vec<_> = match &vm.heap().get(src).body {
                ObjBody::$variant(a) => {
                    if spos + len > a.len() {
                        return Err(format!("src range {spos}+{len} > {}", a.len()));
                    }
                    a[spos..spos + len].to_vec()
                }
                _ => return Err("mismatched array kinds".to_owned()),
            };
            match &mut vm.heap_mut().get_mut(dst).body {
                ObjBody::$variant(a) => {
                    if dpos + len > a.len() {
                        return Err(format!("dst range {dpos}+{len} > {}", a.len()));
                    }
                    a[dpos..dpos + len].copy_from_slice(&data);
                    Ok(())
                }
                _ => Err("mismatched array kinds".to_owned()),
            }
        }};
    }
    let kind = std::mem::discriminant(&vm.heap().get(src).body);
    if kind != std::mem::discriminant(&vm.heap().get(dst).body) {
        return Err("mismatched array kinds".to_owned());
    }
    match &vm.heap().get(src).body {
        ObjBody::ArrBool(_) => copy_kind!(ArrBool),
        ObjBody::ArrByte(_) => copy_kind!(ArrByte),
        ObjBody::ArrChar(_) => copy_kind!(ArrChar),
        ObjBody::ArrShort(_) => copy_kind!(ArrShort),
        ObjBody::ArrInt(_) => copy_kind!(ArrInt),
        ObjBody::ArrLong(_) => copy_kind!(ArrLong),
        ObjBody::ArrFloat(_) => copy_kind!(ArrFloat),
        ObjBody::ArrDouble(_) => copy_kind!(ArrDouble),
        ObjBody::ArrRef { data, .. } => {
            if spos + len > data.len() {
                return Err("src range".to_owned());
            }
            let slice = data[spos..spos + len].to_vec();
            match &mut vm.heap_mut().get_mut(dst).body {
                ObjBody::ArrRef { data, .. } => {
                    if dpos + len > data.len() {
                        return Err("dst range".to_owned());
                    }
                    data[dpos..dpos + len].copy_from_slice(&slice);
                    Ok(())
                }
                _ => Err("mismatched array kinds".to_owned()),
            }
        }
        ObjBody::Fields(_) => Err("arraycopy on non-array".to_owned()),
    }
}

fn register_thread(vm: &mut Vm) {
    let th = "java/lang/Thread";
    vm.register_native(
        th,
        "start",
        "()V",
        Arc::new(|vm, tid, args| {
            let receiver = args[0].as_ref().expect("receiver");
            // Threads are charged to the isolate that creates them
            // (paper §3.2); they may then execute anywhere.
            let creator = vm.current_isolate(tid);
            if !vm.can_spawn_thread() {
                return oom("unable to create new native thread");
            }
            match vm.spawn_thread_on("java-thread", receiver, "run", "()V", creator) {
                Ok(new_tid) => {
                    vm.set_field(receiver, "vmTid", Value::Int(new_tid.0 as i32 + 1));
                    ret_void()
                }
                Err(e) => NativeResult::Fail(e),
            }
        }),
    );
    vm.register_native(
        th,
        "sleep",
        "(J)V",
        Arc::new(|vm, tid, args| {
            if vm.take_interrupted(tid) {
                return NativeResult::Throw {
                    class_name: "java/lang/InterruptedException",
                    message: "sleep interrupted".to_owned(),
                };
            }
            let ms = args[0].as_long().max(0) as u64;
            // 1 interpreted instruction ≈ 1 virtual ns.
            vm.native_sleep(tid, ms.saturating_mul(1_000_000).max(1));
            NativeResult::BlockReturn(None)
        }),
    );
    vm.register_native(th, "yield", "()V", Arc::new(|_vm, _tid, _args| ret_void()));
    vm.register_native(
        th,
        "join",
        "()V",
        Arc::new(|vm, tid, args| {
            let receiver = args[0].as_ref().expect("receiver");
            let vm_tid = vm
                .get_field(receiver, "vmTid")
                .map(|v| v.as_int())
                .unwrap_or(0);
            if vm_tid <= 0 {
                return ret_void(); // never started
            }
            if vm.native_join(tid, ThreadId(vm_tid as u32 - 1)) {
                NativeResult::BlockReturn(None)
            } else {
                ret_void()
            }
        }),
    );
    vm.register_native(
        th,
        "interrupt",
        "()V",
        Arc::new(|vm, _tid, args| {
            let receiver = args[0].as_ref().expect("receiver");
            let vm_tid = vm
                .get_field(receiver, "vmTid")
                .map(|v| v.as_int())
                .unwrap_or(0);
            if vm_tid > 0 {
                vm.interrupt(ThreadId(vm_tid as u32 - 1));
            }
            ret_void()
        }),
    );
    vm.register_native(
        th,
        "isAlive",
        "()Z",
        Arc::new(|vm, _tid, args| {
            let receiver = args[0].as_ref().expect("receiver");
            let vm_tid = vm
                .get_field(receiver, "vmTid")
                .map(|v| v.as_int())
                .unwrap_or(0);
            let alive = vm_tid > 0
                && vm
                    .thread_state_of(ThreadId(vm_tid as u32 - 1))
                    .map(|s| s != ThreadState::Terminated)
                    .unwrap_or(false);
            ret(Value::Int(alive as i32))
        }),
    );
    vm.register_native(
        th,
        "interrupted",
        "()Z",
        Arc::new(|vm, tid, _args| ret(Value::Int(vm.take_interrupted(tid) as i32))),
    );
}

fn register_math(vm: &mut Vm) {
    let math = "java/lang/Math";
    vm.register_native(
        math,
        "abs",
        "(I)I",
        Arc::new(|_v, _t, a| ret(Value::Int(a[0].as_int().wrapping_abs()))),
    );
    vm.register_native(
        math,
        "abs",
        "(J)J",
        Arc::new(|_v, _t, a| ret(Value::Long(a[0].as_long().wrapping_abs()))),
    );
    vm.register_native(
        math,
        "abs",
        "(D)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().abs()))),
    );
    vm.register_native(
        math,
        "min",
        "(II)I",
        Arc::new(|_v, _t, a| ret(Value::Int(a[0].as_int().min(a[1].as_int())))),
    );
    vm.register_native(
        math,
        "max",
        "(II)I",
        Arc::new(|_v, _t, a| ret(Value::Int(a[0].as_int().max(a[1].as_int())))),
    );
    vm.register_native(
        math,
        "min",
        "(JJ)J",
        Arc::new(|_v, _t, a| ret(Value::Long(a[0].as_long().min(a[1].as_long())))),
    );
    vm.register_native(
        math,
        "max",
        "(JJ)J",
        Arc::new(|_v, _t, a| ret(Value::Long(a[0].as_long().max(a[1].as_long())))),
    );
    vm.register_native(
        math,
        "min",
        "(DD)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().min(a[1].as_double())))),
    );
    vm.register_native(
        math,
        "max",
        "(DD)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().max(a[1].as_double())))),
    );
    vm.register_native(
        math,
        "sqrt",
        "(D)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().sqrt()))),
    );
    vm.register_native(
        math,
        "floor",
        "(D)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().floor()))),
    );
    vm.register_native(
        math,
        "ceil",
        "(D)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().ceil()))),
    );
    vm.register_native(
        math,
        "pow",
        "(DD)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().powf(a[1].as_double())))),
    );
    vm.register_native(
        math,
        "sin",
        "(D)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().sin()))),
    );
    vm.register_native(
        math,
        "cos",
        "(D)D",
        Arc::new(|_v, _t, a| ret(Value::Double(a[0].as_double().cos()))),
    );
    // Deterministic xorshift so runs are reproducible.
    let seed = Mutex::new(0x9E3779B97F4A7C15u64);
    vm.register_native(
        math,
        "random",
        "()D",
        Arc::new(move |_vm, _tid, _args| {
            let mut s = seed.lock().unwrap();
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            ret(Value::Double((*s >> 11) as f64 / (1u64 << 53) as f64))
        }),
    );
}

/// Reads the `buf`/`len` pair of a `StringBuilder`.
fn sb_state(vm: &Vm, sb: GcRef) -> (GcRef, i32) {
    let buf = vm
        .get_field(sb, "buf")
        .and_then(|v| v.as_ref())
        .expect("StringBuilder.buf");
    let len = vm.get_field(sb, "len").map(|v| v.as_int()).unwrap_or(0);
    (buf, len)
}

/// Appends UTF-16 units to a `StringBuilder`, growing its buffer.
fn sb_append_chars(
    vm: &mut Vm,
    tid: ThreadId,
    sb: GcRef,
    chars: &[u16],
) -> Result<(), NativeResult> {
    let (buf, len) = sb_state(vm, sb);
    let cap = match &vm.heap().get(buf).body {
        ObjBody::ArrChar(a) => a.len(),
        _ => 0,
    };
    let needed = len as usize + chars.len();
    let target_buf = if needed > cap {
        let mut new_cap = cap.max(16);
        while new_cap < needed {
            new_cap *= 2;
        }
        let iso = vm.current_isolate(tid);
        let old: Vec<u16> = match &vm.heap().get(buf).body {
            ObjBody::ArrChar(a) => a[..len as usize].to_vec(),
            _ => Vec::new(),
        };
        let mut grown = vec![0u16; new_cap];
        grown[..old.len()].copy_from_slice(&old);
        let new_buf = vm
            .alloc_chars(iso, &grown)
            .ok_or_else(|| oom("StringBuilder buffer"))?;
        vm.set_field(sb, "buf", Value::Ref(new_buf));
        new_buf
    } else {
        buf
    };
    if let ObjBody::ArrChar(a) = &mut vm.heap_mut().get_mut(target_buf).body {
        a[len as usize..needed].copy_from_slice(chars);
    }
    vm.set_field(sb, "len", Value::Int(needed as i32));
    Ok(())
}

fn register_stringbuilder(vm: &mut Vm) {
    let sbc = "java/lang/StringBuilder";
    let sbd = "Ljava/lang/StringBuilder;";
    let append = |fmt: fn(&Vm, Value) -> String| {
        move |vm: &mut Vm, tid: ThreadId, args: &[Value]| {
            let sb = args[0].as_ref().expect("receiver");
            let text = fmt(vm, args[1]);
            let chars: Vec<u16> = text.encode_utf16().collect();
            match sb_append_chars(vm, tid, sb, &chars) {
                Ok(()) => ret(Value::Ref(sb)),
                Err(e) => e,
            }
        }
    };
    for desc in [
        format!("(Ljava/lang/String;){sbd}"),
        format!("(I){sbd}"),
        format!("(J){sbd}"),
        format!("(D){sbd}"),
        format!("(Ljava/lang/Object;){sbd}"),
    ] {
        vm.register_native(sbc, "append", &desc, Arc::new(append(display_value)));
    }
    vm.register_native(
        sbc,
        "append",
        &format!("(Z){sbd}"),
        Arc::new(append(|_vm, v| {
            if v.as_int() != 0 {
                "true".into()
            } else {
                "false".into()
            }
        })),
    );
    vm.register_native(
        sbc,
        "append",
        &format!("(C){sbd}"),
        Arc::new(append(|_vm, v| {
            char::from_u32(v.as_int() as u32).unwrap_or('?').to_string()
        })),
    );
    vm.register_native(
        sbc,
        "toString",
        "()Ljava/lang/String;",
        Arc::new(|vm, tid, args| {
            let sb = args[0].as_ref().expect("receiver");
            let (buf, len) = sb_state(vm, sb);
            let s = match &vm.heap().get(buf).body {
                ObjBody::ArrChar(a) => String::from_utf16_lossy(&a[..len as usize]),
                _ => String::new(),
            };
            let iso = vm.current_isolate(tid);
            let out = vm.new_string(iso, &s);
            ret(Value::Ref(out))
        }),
    );
}

/// Equality used by collections: string value equality when both sides
/// are strings, reference identity otherwise.
fn values_equal(vm: &Vm, a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Ref(x), Value::Ref(y)) => {
            if x == y {
                return true;
            }
            match (vm.read_string(x), vm.read_string(y)) {
                (Some(sx), Some(sy)) => sx == sy,
                _ => false,
            }
        }
        _ => a.ref_eq(b),
    }
}

fn register_arraylist(vm: &mut Vm) {
    let al = "java/util/ArrayList";
    vm.register_native(
        al,
        "add",
        "(Ljava/lang/Object;)Z",
        Arc::new(|vm, tid, args| {
            let list = args[0].as_ref().expect("receiver");
            let elems = vm
                .get_field(list, "elems")
                .and_then(|v| v.as_ref())
                .expect("ArrayList.elems");
            let size = vm.get_field(list, "size").map(|v| v.as_int()).unwrap_or(0) as usize;
            let cap = vm.heap().get(elems).body.array_len().unwrap_or(0);
            let target = if size >= cap {
                let iso = vm.current_isolate(tid);
                let Some(grown) = vm.alloc_ref_array(iso, "Ljava/lang/Object;", (cap * 2).max(8))
                else {
                    return oom("ArrayList grow");
                };
                let old: Vec<Value> = match &vm.heap().get(elems).body {
                    ObjBody::ArrRef { data, .. } => data.to_vec(),
                    _ => Vec::new(),
                };
                if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(grown).body {
                    data[..old.len()].copy_from_slice(&old);
                }
                vm.set_field(list, "elems", Value::Ref(grown));
                grown
            } else {
                elems
            };
            if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(target).body {
                data[size] = args[1];
            }
            vm.set_field(list, "size", Value::Int(size as i32 + 1));
            ret(Value::Int(1))
        }),
    );
    vm.register_native(
        al,
        "get",
        "(I)Ljava/lang/Object;",
        Arc::new(|vm, _tid, args| {
            let list = args[0].as_ref().expect("receiver");
            let idx = args[1].as_int();
            let size = vm.get_field(list, "size").map(|v| v.as_int()).unwrap_or(0);
            if idx < 0 || idx >= size {
                return NativeResult::Throw {
                    class_name: "java/lang/ArrayIndexOutOfBoundsException",
                    message: format!("index {idx}, size {size}"),
                };
            }
            let elems = vm
                .get_field(list, "elems")
                .and_then(|v| v.as_ref())
                .expect("elems");
            let v = match &vm.heap().get(elems).body {
                ObjBody::ArrRef { data, .. } => data[idx as usize],
                _ => Value::Null,
            };
            ret(v)
        }),
    );
    vm.register_native(
        al,
        "set",
        "(ILjava/lang/Object;)Ljava/lang/Object;",
        Arc::new(|vm, _tid, args| {
            let list = args[0].as_ref().expect("receiver");
            let idx = args[1].as_int();
            let size = vm.get_field(list, "size").map(|v| v.as_int()).unwrap_or(0);
            if idx < 0 || idx >= size {
                return NativeResult::Throw {
                    class_name: "java/lang/ArrayIndexOutOfBoundsException",
                    message: format!("index {idx}, size {size}"),
                };
            }
            let elems = vm
                .get_field(list, "elems")
                .and_then(|v| v.as_ref())
                .expect("elems");
            let old = match &mut vm.heap_mut().get_mut(elems).body {
                ObjBody::ArrRef { data, .. } => {
                    let old = data[idx as usize];
                    data[idx as usize] = args[2];
                    old
                }
                _ => Value::Null,
            };
            ret(old)
        }),
    );
    vm.register_native(
        al,
        "remove",
        "(I)Ljava/lang/Object;",
        Arc::new(|vm, _tid, args| {
            let list = args[0].as_ref().expect("receiver");
            let idx = args[1].as_int();
            let size = vm.get_field(list, "size").map(|v| v.as_int()).unwrap_or(0);
            if idx < 0 || idx >= size {
                return NativeResult::Throw {
                    class_name: "java/lang/ArrayIndexOutOfBoundsException",
                    message: format!("index {idx}, size {size}"),
                };
            }
            let elems = vm
                .get_field(list, "elems")
                .and_then(|v| v.as_ref())
                .expect("elems");
            let old = match &mut vm.heap_mut().get_mut(elems).body {
                ObjBody::ArrRef { data, .. } => {
                    let old = data[idx as usize];
                    data.copy_within(idx as usize + 1..size as usize, idx as usize);
                    data[size as usize - 1] = Value::Null;
                    old
                }
                _ => Value::Null,
            };
            vm.set_field(list, "size", Value::Int(size - 1));
            ret(old)
        }),
    );
    vm.register_native(
        al,
        "clear",
        "()V",
        Arc::new(|vm, _tid, args| {
            let list = args[0].as_ref().expect("receiver");
            let elems = vm
                .get_field(list, "elems")
                .and_then(|v| v.as_ref())
                .expect("elems");
            if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(elems).body {
                data.fill(Value::Null);
            }
            vm.set_field(list, "size", Value::Int(0));
            ret_void()
        }),
    );
    vm.register_native(
        al,
        "contains",
        "(Ljava/lang/Object;)Z",
        Arc::new(|vm, _tid, args| {
            let list = args[0].as_ref().expect("receiver");
            let size = vm.get_field(list, "size").map(|v| v.as_int()).unwrap_or(0) as usize;
            let elems = vm
                .get_field(list, "elems")
                .and_then(|v| v.as_ref())
                .expect("elems");
            let found = match &vm.heap().get(elems).body {
                ObjBody::ArrRef { data, .. } => {
                    data[..size].iter().any(|&v| values_equal(vm, v, args[1]))
                }
                _ => false,
            };
            ret(Value::Int(found as i32))
        }),
    );
}

/// Hash for map keys: string value hash for strings, identity otherwise.
fn key_hash(vm: &Vm, key: Value) -> u64 {
    match key {
        Value::Ref(r) => match vm.read_string(r) {
            Some(s) => {
                let mut h: u64 = 1469598103934665603;
                for b in s.as_bytes() {
                    h ^= *b as u64;
                    h = h.wrapping_mul(1099511628211);
                }
                h
            }
            None => (r.0 as u64).wrapping_mul(0x9E3779B97F4A7C15),
        },
        _ => 0,
    }
}

fn map_arrays(vm: &Vm, map: GcRef) -> (GcRef, GcRef, usize) {
    let keys = vm
        .get_field(map, "keys")
        .and_then(|v| v.as_ref())
        .expect("HashMap.keys");
    let vals = vm
        .get_field(map, "vals")
        .and_then(|v| v.as_ref())
        .expect("HashMap.vals");
    let cap = vm.heap().get(keys).body.array_len().unwrap_or(0);
    (keys, vals, cap)
}

fn map_probe(vm: &Vm, map: GcRef, key: Value) -> (GcRef, GcRef, usize, Option<usize>) {
    let (keys, vals, cap) = map_arrays(vm, map);
    let mut idx = (key_hash(vm, key) % cap as u64) as usize;
    for _ in 0..cap {
        let k = match &vm.heap().get(keys).body {
            ObjBody::ArrRef { data, .. } => data[idx],
            _ => Value::Null,
        };
        if matches!(k, Value::Null) {
            return (keys, vals, idx, None);
        }
        if values_equal(vm, k, key) {
            return (keys, vals, idx, Some(idx));
        }
        idx = (idx + 1) % cap;
    }
    (keys, vals, idx, None)
}

fn map_grow(vm: &mut Vm, tid: ThreadId, map: GcRef) -> Result<(), NativeResult> {
    let (keys, vals, cap) = map_arrays(vm, map);
    let entries: Vec<(Value, Value)> = {
        let kd = match &vm.heap().get(keys).body {
            ObjBody::ArrRef { data, .. } => data.to_vec(),
            _ => Vec::new(),
        };
        let vd = match &vm.heap().get(vals).body {
            ObjBody::ArrRef { data, .. } => data.to_vec(),
            _ => Vec::new(),
        };
        kd.into_iter()
            .zip(vd)
            .filter(|(k, _)| !matches!(k, Value::Null))
            .collect()
    };
    let iso = vm.current_isolate(tid);
    let new_cap = (cap * 2).max(16);
    let nk = vm
        .alloc_ref_array(iso, "Ljava/lang/Object;", new_cap)
        .ok_or_else(|| oom("HashMap grow"))?;
    let nv = vm
        .alloc_ref_array(iso, "Ljava/lang/Object;", new_cap)
        .ok_or_else(|| oom("HashMap grow"))?;
    vm.set_field(map, "keys", Value::Ref(nk));
    vm.set_field(map, "vals", Value::Ref(nv));
    for (k, v) in entries {
        let (keys, vals, idx, found) = map_probe(vm, map, k);
        let slot = found.unwrap_or(idx);
        if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(keys).body {
            data[slot] = k;
        }
        if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(vals).body {
            data[slot] = v;
        }
    }
    Ok(())
}

fn register_hashmap(vm: &mut Vm) {
    let hm = "java/util/HashMap";
    vm.register_native(
        hm,
        "put",
        "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;",
        Arc::new(|vm, tid, args| {
            let map = args[0].as_ref().expect("receiver");
            let size = vm.get_field(map, "size").map(|v| v.as_int()).unwrap_or(0) as usize;
            let (_, _, cap) = map_arrays(vm, map);
            if (size + 1) * 4 >= cap * 3 {
                if let Err(e) = map_grow(vm, tid, map) {
                    return e;
                }
            }
            let (keys, vals, idx, found) = map_probe(vm, map, args[1]);
            let slot = found.unwrap_or(idx);
            let old = match &vm.heap().get(vals).body {
                ObjBody::ArrRef { data, .. } => data[slot],
                _ => Value::Null,
            };
            if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(keys).body {
                data[slot] = args[1];
            }
            if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(vals).body {
                data[slot] = args[2];
            }
            if found.is_none() {
                vm.set_field(map, "size", Value::Int(size as i32 + 1));
                ret(Value::Null)
            } else {
                ret(old)
            }
        }),
    );
    vm.register_native(
        hm,
        "get",
        "(Ljava/lang/Object;)Ljava/lang/Object;",
        Arc::new(|vm, _tid, args| {
            let map = args[0].as_ref().expect("receiver");
            let (_, vals, _, found) = map_probe(vm, map, args[1]);
            let v = match found {
                Some(slot) => match &vm.heap().get(vals).body {
                    ObjBody::ArrRef { data, .. } => data[slot],
                    _ => Value::Null,
                },
                None => Value::Null,
            };
            ret(v)
        }),
    );
    vm.register_native(
        hm,
        "containsKey",
        "(Ljava/lang/Object;)Z",
        Arc::new(|vm, _tid, args| {
            let map = args[0].as_ref().expect("receiver");
            let (_, _, _, found) = map_probe(vm, map, args[1]);
            ret(Value::Int(found.is_some() as i32))
        }),
    );
    vm.register_native(
        hm,
        "remove",
        "(Ljava/lang/Object;)Ljava/lang/Object;",
        Arc::new(|vm, tid, args| {
            let map = args[0].as_ref().expect("receiver");
            let (keys, vals, _, found) = map_probe(vm, map, args[1]);
            let Some(slot) = found else {
                return ret(Value::Null);
            };
            let old = match &vm.heap().get(vals).body {
                ObjBody::ArrRef { data, .. } => data[slot],
                _ => Value::Null,
            };
            if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(keys).body {
                data[slot] = Value::Null;
            }
            if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(vals).body {
                data[slot] = Value::Null;
            }
            let size = vm.get_field(map, "size").map(|v| v.as_int()).unwrap_or(1);
            vm.set_field(map, "size", Value::Int(size - 1));
            // Rehash the cluster after the removed slot so probing stays
            // correct (linear probing without tombstones).
            if map_grow(vm, tid, map).is_err() {
                return oom("HashMap rehash");
            }
            ret(old)
        }),
    );
}

fn register_vconnection(vm: &mut Vm) {
    let vc = "org/ijvm/VConnection";
    vm.register_native(
        vc,
        "connect",
        "()Lorg/ijvm/VConnection;",
        Arc::new(|vm, tid, _args| {
            let iso = vm.current_isolate(tid);
            let class = vm
                .find_class(LoaderId::BOOTSTRAP, "org/ijvm/VConnection")
                .expect("VConnection installed");
            let Some(conn) = vm.alloc_object(class, iso) else {
                return oom("connection");
            };
            vm.mark_connection(conn, iso);
            vm.set_field(conn, "open", Value::Int(1));
            ret(Value::Ref(conn))
        }),
    );
    vm.register_native(
        vc,
        "read",
        "(I)I",
        Arc::new(|vm, tid, args| {
            let n = args[1].as_int().max(0) as u64;
            let iso = vm.current_isolate(tid);
            if vm.take_interrupted(tid) {
                return NativeResult::Throw {
                    class_name: "java/io/IOException",
                    message: "read interrupted".to_owned(),
                };
            }
            vm.charge_io(iso, n, 0);
            ret(Value::Int(n as i32))
        }),
    );
    vm.register_native(
        vc,
        "write",
        "(I)I",
        Arc::new(|vm, tid, args| {
            let n = args[1].as_int().max(0) as u64;
            let iso = vm.current_isolate(tid);
            vm.charge_io(iso, 0, n);
            ret(Value::Int(n as i32))
        }),
    );
    vm.register_native(
        vc,
        "close",
        "()V",
        Arc::new(|vm, _tid, args| {
            let conn = args[0].as_ref().expect("receiver");
            vm.set_field(conn, "open", Value::Int(0));
            ret_void()
        }),
    );
}
