//! # ijvm-jsl — the Java System Library for the ijvm VM
//!
//! Installs the bootstrap classes from `ijvm_core::bootstrap` plus the
//! runtime classes OSGi bundles and the paper's workloads need:
//!
//! * `java/lang/System` — console printing, virtual clock, `gc`, `exit`
//!   (privileged), `arraycopy`;
//! * `java/lang/Thread` / `java/lang/Runnable` — green threads charged to
//!   their creating isolate (paper §3.2);
//! * `java/lang/Math` — arithmetic intrinsics and a deterministic
//!   `random()`;
//! * `java/lang/StringBuilder` — string assembly used by compiled
//!   concatenation;
//! * `java/util/ArrayList`, `java/util/HashMap` — the collections the
//!   SPEC-analogue workloads exercise;
//! * `org/ijvm/VConnection` — a simulated connection whose reads and
//!   writes are charged to the performing isolate, JRes-style (paper
//!   §3.2).
//!
//! System-library classes live in the bootstrap loader, so they execute in
//! the *calling* isolate and their resource use is charged to the caller
//! (paper §3.1/§3.2).
//!
//! Call [`install`] on a fresh [`Vm`] before loading application classes.

pub mod classes;
pub mod natives;

use ijvm_core::error::Result;
use ijvm_core::vm::Vm;

/// Installs the complete system library (bootstrap + JSL) into `vm`.
pub fn install(vm: &mut Vm) -> Result<()> {
    ijvm_core::bootstrap::install(vm)?;
    natives::register_all(vm);
    classes::install_all(vm)?;
    Ok(())
}

/// Registers exactly the natives [`install`] would — bootstrap, port and
/// JSL — without installing any class. This is the natives hook for
/// restoring a checkpoint image of a JSL-booted VM
/// (`ijvm_core::checkpoint::restore`, `Cluster::submit_image`): the image
/// carries every installed class's bytes, so restore replays the class
/// definitions and only the host-side native table must be rebuilt.
pub fn install_natives(vm: &mut Vm) {
    ijvm_core::bootstrap::install_natives(vm);
    natives::register_all(vm);
}

/// Convenience: a fully booted VM with the given options.
pub fn boot(options: ijvm_core::vm::VmOptions) -> Vm {
    let mut vm = Vm::new(options);
    install(&mut vm).expect("system library installation cannot fail on a fresh VM");
    vm
}

#[cfg(test)]
mod tests {
    use super::*;
    use ijvm_core::prelude::*;

    #[test]
    fn boot_installs_everything() {
        let vm = boot(VmOptions::isolated());
        for name in [
            "java/lang/Object",
            "java/lang/String",
            "java/lang/System",
            "java/lang/Thread",
            "java/lang/Runnable",
            "java/lang/Math",
            "java/lang/StringBuilder",
            "java/util/ArrayList",
            "java/util/HashMap",
            "org/ijvm/VConnection",
            "org/ijvm/StoppedIsolateException",
            "org/ijvm/ServiceRevokedException",
            "ijvm/Service",
            "ijvm/Port",
        ] {
            assert!(
                vm.find_class(LoaderId::BOOTSTRAP, name).is_some(),
                "{name} should be installed"
            );
        }
    }

    #[test]
    fn boot_shared_mode_works_too() {
        let vm = boot(VmOptions::shared());
        assert!(!vm.is_isolated());
        assert!(vm
            .find_class(LoaderId::BOOTSTRAP, "java/lang/System")
            .is_some());
    }
}
