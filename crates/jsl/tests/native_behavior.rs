//! Behavioural tests of the system-library natives through compiled code.

use ijvm_core::prelude::*;
use ijvm_core::vm::Vm;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

fn run(source: &str, class: &str, method: &str, args: Vec<Value>) -> (Vm, Option<Value>) {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    // The first isolate is the privileged Isolate0 (the runtime's); the
    // code under test runs as an ordinary bundle isolate.
    let _isolate0 = vm.create_isolate("runtime");
    let iso = vm.create_isolate("jsl-test");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(source, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let cid = vm.load_class(loader, class).unwrap();
    let desc = format!("({})I", "I".repeat(args.len()));
    let out = vm.call_static(cid, method, &desc, args).unwrap();
    (vm, out)
}

#[test]
fn arraycopy_all_primitive_kinds() {
    let src = r#"
        class Copy {
            static int f(int n) {
                int[] a = new int[8];
                for (int i = 0; i < 8; i++) a[i] = i * 10;
                int[] b = new int[8];
                System.arraycopy(a, 2, b, 0, 4);
                long[] la = new long[4];
                la[0] = 5L;
                la[3] = 9L;
                long[] lb = new long[4];
                System.arraycopy(la, 0, lb, 0, 4);
                char[] ca = new char[3];
                ca[0] = 'x';
                char[] cbuf = new char[3];
                System.arraycopy(ca, 0, cbuf, 0, 3);
                return b[0] + b[3] + (int) lb[3] + cbuf[0];
            }
        }
    "#;
    // b[0]=20, b[3]=50, lb[3]=9, cbuf[0]='x'=120
    let (_, out) = run(src, "Copy", "f", vec![Value::Int(0)]);
    assert_eq!(out, Some(Value::Int(20 + 50 + 9 + 120)));
}

#[test]
fn arraycopy_out_of_range_throws() {
    let src = r#"
        class Copy {
            static int f(int n) {
                int[] a = new int[4];
                int[] b = new int[4];
                try {
                    System.arraycopy(a, 2, b, 0, 4);
                    return -1;
                } catch (ArrayIndexOutOfBoundsException e) {
                    return 1;
                }
            }
        }
    "#;
    let (_, out) = run(src, "Copy", "f", vec![Value::Int(0)]);
    assert_eq!(out, Some(Value::Int(1)));
}

#[test]
fn hashmap_grows_past_initial_capacity() {
    let src = r#"
        class Grow {
            static int f(int n) {
                HashMap m = new HashMap();
                for (int i = 0; i < n; i++) {
                    m.put("key-" + i, "val-" + i);
                }
                int hits = 0;
                for (int i = 0; i < n; i++) {
                    String v = (String) m.get("key-" + i);
                    if (v != null && v.equals("val-" + i)) hits++;
                }
                return m.size() * 1000 + hits;
            }
        }
    "#;
    let (_, out) = run(src, "Grow", "f", vec![Value::Int(100)]);
    assert_eq!(out, Some(Value::Int(100 * 1000 + 100)));
}

#[test]
fn hashmap_remove_keeps_probe_chains_valid() {
    let src = r#"
        class Rm {
            static int f(int n) {
                HashMap m = new HashMap();
                for (int i = 0; i < 20; i++) m.put("k" + i, "v" + i);
                for (int i = 0; i < 20; i += 2) m.remove("k" + i);
                int alive = 0;
                for (int i = 0; i < 20; i++) {
                    if (m.containsKey("k" + i)) alive++;
                }
                return m.size() * 100 + alive;
            }
        }
    "#;
    let (_, out) = run(src, "Rm", "f", vec![Value::Int(0)]);
    assert_eq!(out, Some(Value::Int(10 * 100 + 10)));
}

#[test]
fn stringbuilder_grows_without_losing_prefix() {
    let src = r#"
        class Sb {
            static int f(int n) {
                StringBuilder sb = new StringBuilder();
                for (int i = 0; i < n; i++) sb.append('x');
                sb.append(123).append(true).append(4.5);
                String s = sb.toString();
                int xs = 0;
                for (int i = 0; i < s.length(); i++) {
                    if (s.charAt(i) == 'x') xs++;
                }
                return xs * 1000 + s.length();
            }
        }
    "#;
    // 200 x's + "123" + "true" + "4.5" = 200*1000 + 210
    let (_, out) = run(src, "Sb", "f", vec![Value::Int(200)]);
    assert_eq!(out, Some(Value::Int(200 * 1000 + 210)));
}

#[test]
fn arraylist_remove_shifts_elements() {
    let src = r#"
        class Al {
            static int f(int n) {
                ArrayList xs = new ArrayList();
                for (int i = 0; i < 5; i++) xs.add("e" + i);
                xs.remove(1);
                xs.remove(0);
                String first = (String) xs.get(0);
                if (!first.equals("e2")) return -1;
                return xs.size();
            }
        }
    "#;
    let (_, out) = run(src, "Al", "f", vec![Value::Int(0)]);
    assert_eq!(out, Some(Value::Int(3)));
}

#[test]
fn thread_is_alive_and_join_semantics() {
    let src = r#"
        class Sleeper implements Runnable {
            public void run() { Thread.sleep(5); }
        }
        class Th {
            static int f(int n) {
                Thread t = new Thread(new Sleeper());
                int before = 0;
                if (!t.isAlive()) before = 1; // not started yet
                t.start();
                int during = 0;
                if (t.isAlive()) during = 2;
                t.join();
                int after = 0;
                if (!t.isAlive()) after = 4;
                return before + during + after;
            }
        }
    "#;
    let (_, out) = run(src, "Th", "f", vec![Value::Int(0)]);
    assert_eq!(out, Some(Value::Int(7)));
}

#[test]
fn exit_denied_to_ordinary_bundles_in_isolated_mode() {
    let src = r#"
        class Ex {
            static int f(int n) {
                try {
                    System.exit(3);
                    return -1;
                } catch (SecurityException e) {
                    return 1;
                }
            }
        }
    "#;
    let (vm, out) = run(src, "Ex", "f", vec![Value::Int(0)]);
    assert_eq!(out, Some(Value::Int(1)));
    assert_eq!(vm.exit_code(), None, "exit must not have happened");
}

#[test]
fn math_random_is_deterministic_per_vm() {
    let src = r#"
        class Rng {
            static int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    double r = Math.random();
                    if (r >= 0.0 && r < 1.0) acc++;
                }
                return acc;
            }
        }
    "#;
    let (_, out1) = run(src, "Rng", "f", vec![Value::Int(50)]);
    let (_, out2) = run(src, "Rng", "f", vec![Value::Int(50)]);
    assert_eq!(out1, Some(Value::Int(50)), "all samples in [0,1)");
    assert_eq!(out1, out2, "same seed, same VM construction, same stream");
}

#[test]
fn current_time_reflects_virtual_clock() {
    let src = r#"
        class Clock {
            static int f(int n) {
                long t0 = System.nanoTime();
                int s = 0;
                for (int i = 0; i < n; i++) s += i;
                long t1 = System.nanoTime();
                if (t1 > t0) return 1;
                return 0;
            }
        }
    "#;
    let (_, out) = run(src, "Clock", "f", vec![Value::Int(10_000)]);
    assert_eq!(out, Some(Value::Int(1)));
}
