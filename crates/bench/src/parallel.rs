//! Multi-core scalability of the cluster scheduler: the same
//! multi-isolate workload (N independent arithmetic/field units, each a
//! full `Send` VM) executed by the parallel work-stealing scheduler at
//! increasing worker counts.
//!
//! The measured quantity is end-to-end wall time of [`Cluster::run`];
//! unit construction (boot, compile, class loading, pre-decode warm-up)
//! happens outside the timed region, so the ratio between worker counts
//! isolates exactly what the scheduler adds: parallel slice execution
//! minus queue/steal/accounting-drain overhead. Scaling is reported as
//! `wall(1 worker) / wall(n workers)` — on a single-core host it
//! honestly hovers around 1.0 (there is nothing to scale onto), which is
//! why the committed JSON records `host_cpus` and the CI gate only
//! enforces the scalability floor on ≥ 4-core runners.

use crate::engine::ARITH_FIELD_SRC;
use ijvm_core::sched::{Cluster, SchedulerKind};
use ijvm_core::value::Value;
use ijvm_core::vm::{Vm, VmOptions};
use std::time::{Duration, Instant};

/// Worker counts measured, in row order.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// The scalability contract CI enforces on multi-core runners: going
/// from 1 worker to 4 must speed the workload up by at least this
/// factor. (Eight independent units leave plenty of parallel slack; a
/// miss means the scheduler itself serializes.)
pub const SCALING_FLOOR_4W: f64 = 1.5;

/// One `(worker count, wall time)` measurement.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Parallel workers used.
    pub workers: usize,
    /// Best-of-runs wall time for the whole unit set.
    pub wall: Duration,
}

/// The full scalability dataset.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Units (independent isolate groups) in the workload.
    pub units: usize,
    /// Guest iterations each unit spins.
    pub iterations: i32,
    /// CPUs available to this process when measured (scaling beyond
    /// this is physically impossible).
    pub host_cpus: usize,
    /// One row per entry of [`WORKER_COUNTS`].
    pub rows: Vec<ScalingRow>,
    /// Work steals observed in the widest-worker run (sanity signal
    /// that stealing actually engages).
    pub steals: u64,
}

impl ScalingReport {
    /// `wall(1 worker) / wall(n workers)` for the row with `workers`.
    pub fn scaling_vs_one(&self, workers: usize) -> f64 {
        let one = self.rows.iter().find(|r| r.workers == 1);
        let n = self.rows.iter().find(|r| r.workers == workers);
        match (one, n) {
            (Some(a), Some(b)) => {
                a.wall.as_secs_f64() / b.wall.as_secs_f64().max(f64::MIN_POSITIVE)
            }
            _ => 1.0,
        }
    }

    /// The gated 1→4-worker throughput scaling.
    pub fn scaling_1_to_4(&self) -> f64 {
        self.scaling_vs_one(4)
    }
}

/// Builds one ready-to-run unit: a booted VM with the arithmetic/field
/// workload loaded, pre-decoded (via a small warm-up call) and an entry
/// thread spawned for the measured iteration count.
fn build_unit(iterations: i32) -> Vm {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    let compiled =
        ijvm_minijava::compile_to_bytes(ARITH_FIELD_SRC, &ijvm_minijava::CompileEnv::new())
            .unwrap();
    for (name, bytes) in compiled {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, "ArithField").unwrap();
    vm.call_static_as(class, "spin", "(I)I", vec![Value::Int(64)], iso)
        .expect("warmup run");
    let index = vm.class(class).find_method("spin", "(I)I").unwrap();
    let mref = ijvm_core::ids::MethodRef { class, index };
    vm.spawn_thread("spin", mref, vec![Value::Int(iterations)], iso)
        .unwrap();
    vm
}

/// Runs the unit set once under `workers`, returning wall time and the
/// steal count.
fn run_once(units: usize, iterations: i32, workers: usize) -> (Duration, u64) {
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Parallel(workers))
        .build();
    for _ in 0..units {
        cluster.submit(build_unit(iterations));
    }
    let start = Instant::now();
    let outcome = cluster.run();
    let wall = start.elapsed();
    assert_eq!(outcome.units.len(), units, "every unit must finish");
    (wall, outcome.steals)
}

/// Measures the workload at every worker count, best of `runs` rounds.
pub fn measure_scaling(units: usize, iterations: i32, runs: u32) -> ScalingReport {
    let mut best = vec![Duration::MAX; WORKER_COUNTS.len()];
    let mut steals = 0;
    for _ in 0..runs.max(1) {
        for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
            let (wall, s) = run_once(units, iterations, workers);
            if wall < best[i] {
                best[i] = wall;
            }
            if workers == *WORKER_COUNTS.last().unwrap() {
                steals = steals.max(s);
            }
        }
    }
    ScalingReport {
        units,
        iterations,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows: WORKER_COUNTS
            .iter()
            .zip(best)
            .map(|(&workers, wall)| ScalingRow { workers, wall })
            .collect(),
        steals,
    }
}

/// Pretty-prints the scalability table.
pub fn print_scaling_table(report: &ScalingReport) {
    println!(
        "\n== Parallel scheduler scaling ({} units × {} iterations, {} host cpus) ==",
        report.units, report.iterations, report.host_cpus
    );
    println!("{:<10} {:>14} {:>10}", "workers", "wall", "vs 1w");
    for r in &report.rows {
        println!(
            "{:<10} {:>14} {:>9.2}x",
            r.workers,
            format!("{:.3?}", r.wall),
            report.scaling_vs_one(r.workers),
        );
    }
    println!(
        "steals in widest run: {}; CI floor on ≥4-core hosts: {:.2}x",
        report.steals, SCALING_FLOOR_4W
    );
}

/// Serializes the report as the `"parallel"` section of
/// `BENCH_engine.json` (hand-rolled, like the rest — no serde offline).
pub fn scaling_to_json(report: &ScalingReport) -> String {
    let mut out = String::from("  \"parallel\": {\n");
    out.push_str("    \"workload\": \"multi-isolate arith+field\",\n");
    out.push_str(&format!("    \"units\": {},\n", report.units));
    out.push_str(&format!("    \"iterations\": {},\n", report.iterations));
    out.push_str(&format!("    \"host_cpus\": {},\n", report.host_cpus));
    out.push_str(&format!("    \"steals\": {},\n", report.steals));
    out.push_str("    \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"workers\": {}, \"wall_ns\": {}, \"scaling_vs_1w\": {:.4}}}{}\n",
            r.workers,
            r.wall.as_nanos(),
            report.scaling_vs_one(r.workers),
            if i + 1 < report.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"scaling_1_to_4\": {:.4},\n",
        report.scaling_1_to_4()
    ));
    out.push_str(&format!("    \"scaling_floor_4w\": {SCALING_FLOOR_4W}\n"));
    out.push_str("  }");
    out
}
