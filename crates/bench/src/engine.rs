//! Execution-engine comparison: raw vs quickened vs threaded.
//!
//! Runs the Figure 1 micro-benchmarks (plus a field-access loop and a
//! deep call chain) on the same VM configuration with only [`EngineKind`]
//! varied, so the measured deltas isolate exactly the dispatch cost each
//! engine removes: the quickened engine drops per-instruction opcode
//! table lookups, operand re-reads, branch-offset arithmetic and
//! constant-pool indirections; the threaded engine additionally drops the
//! opcode `match` itself (an indirect handler call per instruction).

use crate::micro::{run_once_with, Micro};
use ijvm_core::engine::EngineKind;
use ijvm_core::vm::VmOptions;
use std::time::Duration;

/// One benchmark measured under all three engines.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Wall time under [`EngineKind::Raw`].
    pub raw: Duration,
    /// Wall time under [`EngineKind::Quickened`].
    pub quickened: Duration,
    /// Wall time under [`EngineKind::Threaded`].
    pub threaded: Duration,
    /// Guest instructions executed (identical under all engines).
    pub insns: u64,
}

impl EngineRow {
    /// How many times faster the quickened engine runs than raw (>1 is
    /// faster).
    pub fn speedup(&self) -> f64 {
        self.raw.as_secs_f64() / self.quickened.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// How many times faster the threaded engine runs than raw.
    pub fn threaded_speedup(&self) -> f64 {
        self.raw.as_secs_f64() / self.threaded.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// The benchmarks compared: the four Figure 1 micros. Their loop bodies
/// cover calls, allocation, instance-field access (`Remote.step` reads
/// `this`), and static access.
pub const ENGINE_MICROS: [Micro; 4] = Micro::ALL;

/// The engines compared, in row-field order.
const ENGINES: [EngineKind; 3] = [EngineKind::Raw, EngineKind::Quickened, EngineKind::Threaded];

/// Measures one micro under all engines, alternating `runs` rounds and
/// keeping the fastest time per engine (minimum is robust against
/// scheduler and frequency noise).
pub fn compare_engines(micro: Micro, iterations: i32, runs: u32) -> EngineRow {
    let mut best = [Duration::MAX; 3];
    let mut insns = 0;
    for _ in 0..runs.max(1) {
        let mut seen = [0u64; 3];
        for (i, &engine) in ENGINES.iter().enumerate() {
            let (d, n) =
                run_once_with(micro, VmOptions::isolated().with_engine(engine), iterations);
            best[i] = best[i].min(d);
            seen[i] = n;
        }
        assert!(
            seen.iter().all(|&n| n == seen[0]),
            "engines must execute identical instruction streams"
        );
        insns = seen[0];
    }
    EngineRow {
        name: micro.name(),
        raw: best[0],
        quickened: best[1],
        threaded: best[2],
        insns,
    }
}

/// The acceptance workload for the dispatch engines: a tight loop of
/// instance-field reads/writes and integer arithmetic, where dispatch
/// overhead dominates (no allocation, no calls, no statics).
pub(crate) const ARITH_FIELD_SRC: &str = r#"
    class Vec2 {
        int x;
        int y;
        Vec2(int x, int y) { this.x = x; this.y = y; }
    }
    class ArithField {
        static int spin(int n) {
            Vec2 v = new Vec2(1, 2);
            int acc = 0;
            for (int i = 0; i < n; i++) {
                v.x = v.x + i;
                v.y = v.y ^ (v.x >> 3);
                acc += (v.x & 65535) + (v.y % 8191) - i * 3;
            }
            return acc;
        }
    }
"#;

/// The call-path acceptance workload: a three-deep static call chain with
/// multi-argument frames, where frame setup/teardown (locals carving,
/// allocation, metadata reads) dominates — exactly what the frame pool
/// and the fused invoke forms attack.
const DEEP_CALL_SRC: &str = r#"
    class DeepCall {
        static int leaf(int a, int b, int c) { return a + b * 2 - c; }
        static int mid(int a, int b) { return leaf(a, b, a - b) + leaf(b, a, 1); }
        static int spin(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                acc += mid(i, acc & 1023);
            }
            return acc;
        }
    }
"#;

/// Runs a one-class `spin(I)I` workload once under `engine`, returning
/// wall time and guest instructions (after a warm-up run that pays class
/// loading, pre-decoding and quickening).
fn run_spin_class(src: &str, entry: &str, engine: EngineKind, iterations: i32) -> (Duration, u64) {
    run_spin_class_with(
        src,
        entry,
        VmOptions::isolated().with_engine(engine),
        iterations,
    )
}

/// [`run_spin_class`] with full [`VmOptions`] control — the trace
/// overhead rows re-run the arithmetic loop with only the flight
/// recorder toggled.
pub(crate) fn run_spin_class_with(
    src: &str,
    entry: &str,
    options: VmOptions,
    iterations: i32,
) -> (Duration, u64) {
    use ijvm_core::value::Value;
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("bench");
    let loader = vm.loader_of(iso).unwrap();
    let compiled = ijvm_minijava::compile_to_bytes(src, &ijvm_minijava::CompileEnv::new()).unwrap();
    for (name, bytes) in compiled {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, entry).unwrap();
    vm.call_static_as(
        class,
        "spin",
        "(I)I",
        vec![Value::Int((iterations / 10).max(8))],
        iso,
    )
    .expect("warmup run");
    let before = vm.vclock();
    let start = std::time::Instant::now();
    vm.call_static_as(class, "spin", "(I)I", vec![Value::Int(iterations)], iso)
        .expect("measured run");
    (start.elapsed(), vm.vclock() - before)
}

/// Runs the arithmetic/field-access loop once under `engine`.
pub fn run_arith_field(engine: EngineKind, iterations: i32) -> (Duration, u64) {
    run_spin_class(ARITH_FIELD_SRC, "ArithField", engine, iterations)
}

/// Runs the deep static call chain once under `engine`.
pub fn run_deep_call(engine: EngineKind, iterations: i32) -> (Duration, u64) {
    run_spin_class(DEEP_CALL_SRC, "DeepCall", engine, iterations)
}

/// Measures a one-class `spin` workload under all engines.
fn compare_spin_class(
    name: &'static str,
    src: &str,
    entry: &str,
    iterations: i32,
    runs: u32,
) -> EngineRow {
    let mut best = [Duration::MAX; 3];
    let mut insns = 0;
    for _ in 0..runs.max(1) {
        let mut seen = [0u64; 3];
        for (i, &engine) in ENGINES.iter().enumerate() {
            let (d, n) = run_spin_class(src, entry, engine, iterations);
            best[i] = best[i].min(d);
            seen[i] = n;
        }
        assert!(
            seen.iter().all(|&n| n == seen[0]),
            "engines must execute identical instruction streams"
        );
        insns = seen[0];
    }
    EngineRow {
        name,
        raw: best[0],
        quickened: best[1],
        threaded: best[2],
        insns,
    }
}

/// Measures the arithmetic/field-access loop under all engines.
pub fn compare_arith_field(iterations: i32, runs: u32) -> EngineRow {
    compare_spin_class(
        "arith+field loop",
        ARITH_FIELD_SRC,
        "ArithField",
        iterations,
        runs,
    )
}

/// Measures the deep static call chain under all engines.
pub fn compare_deep_call(iterations: i32, runs: u32) -> EngineRow {
    compare_spin_class(
        "deep call chain",
        DEEP_CALL_SRC,
        "DeepCall",
        iterations,
        runs,
    )
}

/// The full engine-comparison dataset: the arithmetic/field-access loop
/// first, then the four Figure 1 micros (the intra-/inter-isolate call
/// micros are the rows the call fast path is judged on), then the deep
/// call chain.
pub fn engine_comparison(iterations: i32, runs: u32) -> Vec<EngineRow> {
    let mut rows = vec![compare_arith_field(iterations, runs)];
    rows.extend(
        ENGINE_MICROS
            .iter()
            .map(|&m| compare_engines(m, iterations, runs)),
    );
    rows.push(compare_deep_call(iterations, runs));
    rows
}

/// Pretty-prints the comparison.
pub fn print_engine_table(rows: &[EngineRow]) {
    println!("\n== Execution engine: raw vs quickened vs threaded (Isolated mode) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>8} {:>8} {:>14}",
        "benchmark", "raw", "quickened", "threaded", "q-spd", "t-spd", "guest insns"
    );
    for r in rows {
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>7.2}x {:>7.2}x {:>14}",
            r.name,
            format!("{:.3?}", r.raw),
            format!("{:.3?}", r.quickened),
            format!("{:.3?}", r.threaded),
            r.speedup(),
            r.threaded_speedup(),
            r.insns,
        );
    }
}

/// Serializes the rows as the `BENCH_engine.json` document (hand-rolled:
/// the workspace builds offline, without serde). Each row carries both
/// the quickened-vs-raw (`speedup`) and threaded-vs-raw
/// (`threaded_speedup`) ratios; the CI bench gate enforces floors on
/// both. When supplied, the parallel-scheduler scalability report and
/// the cross-unit call-cost report are appended as the `"parallel"` and
/// `"cross_unit"` sections the gate also reads, and the flight-recorder
/// overhead report as the `"trace"` section (trace-on vs trace-off
/// ratios, gated as ceilings). The saturation report (plus, when
/// measured, the unit-count scaling sweep) lands in the `"saturation"`
/// section, whose flat ratio the gate reads as a ceiling. The
/// checkpoint/restore cost model lands in the `"checkpoint"` section,
/// whose `restore_speedup` the gate reads as a floor.
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    rows: &[EngineRow],
    iterations: i32,
    parallel: Option<&crate::parallel::ScalingReport>,
    cross_unit: Option<&crate::xunit::CrossUnitReport>,
    trace: Option<&crate::trace::TraceOverheadReport>,
    saturation: Option<&crate::saturation::SaturationReport>,
    sat_scaling: Option<&crate::saturation::SaturationScaling>,
    checkpoint: Option<&crate::checkpoint::CheckpointReport>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"engine_raw_vs_quickened_vs_threaded\",\n");
    out.push_str("  \"mode\": \"Isolated\",\n");
    out.push_str(&format!("  \"iterations\": {iterations},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"raw_ns\": {}, \"quickened_ns\": {}, \"threaded_ns\": {}, \"speedup\": {:.4}, \"threaded_speedup\": {:.4}, \"guest_insns\": {}}}{}\n",
            r.name,
            r.raw.as_nanos(),
            r.quickened.as_nanos(),
            r.threaded.as_nanos(),
            r.speedup(),
            r.threaded_speedup(),
            r.insns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let mut sections: Vec<String> = Vec::new();
    if let Some(report) = parallel {
        sections.push(crate::parallel::scaling_to_json(report));
    }
    if let Some(report) = cross_unit {
        sections.push(crate::xunit::cross_unit_to_json(report));
    }
    if let Some(report) = trace {
        sections.push(crate::trace::trace_to_json(report));
    }
    if let Some(report) = saturation {
        sections.push(crate::saturation::saturation_to_json(report, sat_scaling));
    }
    if let Some(report) = checkpoint {
        sections.push(crate::checkpoint::checkpoint_to_json(report));
    }
    if sections.is_empty() {
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("  ],\n");
        out.push_str(&sections.join(",\n"));
        out.push_str("\n}\n");
    }
    out
}
