//! Flight-recorder overhead: the same micro measured trace-off vs
//! trace-on ([`TraceConfig::Full`]), everything else identical.
//!
//! Two rows, chosen to bracket the recorder's cost profile:
//!
//! * **arith+field loop** — the trace-off side exercises only the
//!   cached `trace_enabled` branch on the quantum/charge paths (the
//!   hot dispatch loop itself carries no per-instruction check); the
//!   trace-on side additionally bumps the profiling counters on every
//!   method entry and backward branch. This is the "tracing off must
//!   be free" witness: the engine rows gated against the committed
//!   floors are measured trace-off, so any trace-off regression already
//!   trips those floors.
//! * **cross-unit call micro** — the same workload the `cross_unit`
//!   ceiling is gated on, re-run with the recorder on. Every call
//!   crosses the hub (CallSend/CallDeliver/ReplySend/ReplyDeliver
//!   events plus latency histogram plus CPU-charge events at the copy
//!   sites), so this is the recorder's worst published case; the gated
//!   contract is `trace-on ≤ TRACE_CALL_MAX_RATIO × trace-off`.
//!
//! The ratios (not wall times) are what `bench_gate` reads, so
//! runner-speed variance cancels: both sides of each ratio run on the
//! same box, back to back, alternating rounds.

use crate::engine::{run_spin_class_with, ARITH_FIELD_SRC};
use ijvm_comm::models::measure_cross_unit_with;
use ijvm_core::trace::TraceConfig;
use ijvm_core::vm::VmOptions;

/// The gated ceiling: with the flight recorder on, the cross-unit call
/// micro may cost at most this many times its trace-off run.
pub const TRACE_CALL_MAX_RATIO: f64 = 1.5;

/// One measurement of flight-recorder overhead: best-of-runs wall times
/// for both micros, trace-off and trace-on.
#[derive(Debug, Clone)]
pub struct TraceOverheadReport {
    /// Iterations of the arithmetic/field loop.
    pub iterations: i32,
    /// Calls in the cross-unit batch.
    pub calls: u32,
    /// Best arith+field wall time with tracing off.
    pub arith_off_ns: f64,
    /// Best arith+field wall time with tracing on.
    pub arith_on_ns: f64,
    /// Best cross-unit ns/call with tracing off.
    pub call_off_ns: f64,
    /// Best cross-unit ns/call with tracing on.
    pub call_on_ns: f64,
}

impl TraceOverheadReport {
    /// `trace-on / trace-off` on the arithmetic loop (1.0 = free).
    pub fn arith_ratio(&self) -> f64 {
        self.arith_on_ns / self.arith_off_ns.max(f64::MIN_POSITIVE)
    }

    /// `trace-on / trace-off` on the cross-unit call micro — the gated
    /// ratio.
    pub fn call_ratio(&self) -> f64 {
        self.call_on_ns / self.call_off_ns.max(f64::MIN_POSITIVE)
    }
}

/// Options for one side of the comparison: the default (threaded)
/// engine, isolated mode, recorder toggled.
fn side_options(traced: bool) -> VmOptions {
    let options = VmOptions::isolated();
    if traced {
        options.with_trace(TraceConfig::Full)
    } else {
        options
    }
}

/// Measures both micros trace-off and trace-on, alternating `runs`
/// rounds and keeping the fastest of each side (minimum is robust
/// against scheduler and frequency noise).
pub fn measure_trace_overhead(iterations: i32, calls: u32, runs: u32) -> TraceOverheadReport {
    let mut best = [f64::MAX; 4];
    for _ in 0..runs.max(1) {
        for (i, traced) in [false, true].into_iter().enumerate() {
            let (d, _) = run_spin_class_with(
                ARITH_FIELD_SRC,
                "ArithField",
                side_options(traced),
                iterations,
            );
            best[i] = best[i].min(d.as_nanos() as f64);
            let call = measure_cross_unit_with(calls, side_options(traced));
            best[2 + i] = best[2 + i].min(call.ns_per_call());
        }
    }
    TraceOverheadReport {
        iterations,
        calls,
        arith_off_ns: best[0],
        arith_on_ns: best[1],
        call_off_ns: best[2],
        call_on_ns: best[3],
    }
}

/// Pretty-prints the report.
pub fn print_trace_overhead(report: &TraceOverheadReport) {
    println!(
        "\n== Flight-recorder overhead: trace-off vs trace-on ({} iterations / {} calls) ==",
        report.iterations, report.calls
    );
    println!(
        "{:<22} {:>14} {:>14} {:>8}",
        "micro", "trace-off", "trace-on", "ratio"
    );
    println!(
        "{:<22} {:>14} {:>14} {:>7.3}x",
        "arith+field loop",
        format!("{:.0} ns", report.arith_off_ns),
        format!("{:.0} ns", report.arith_on_ns),
        report.arith_ratio(),
    );
    println!(
        "{:<22} {:>14} {:>14} {:>7.3}x (gated ceiling {:.1}x)",
        "cross-unit call",
        format!("{:.0} ns/call", report.call_off_ns),
        format!("{:.0} ns/call", report.call_on_ns),
        report.call_ratio(),
        TRACE_CALL_MAX_RATIO,
    );
}

/// Serializes the report as the `"trace"` section of
/// `BENCH_engine.json` (hand-rolled, like the rest — no serde offline).
/// The keys are flat and `trace_`-prefixed so `bench_gate`'s
/// whole-document key lookup finds them without a structural parser;
/// none of these lines carries both `"name"` and `"speedup"`, so they
/// stay out of the per-row floor gate.
pub fn trace_to_json(report: &TraceOverheadReport) -> String {
    let mut out = String::from("  \"trace\": {\n");
    out.push_str(&format!(
        "    \"trace_iterations\": {},\n",
        report.iterations
    ));
    out.push_str(&format!("    \"trace_calls\": {},\n", report.calls));
    out.push_str(&format!(
        "    \"trace_arith_off_ns\": {:.1},\n",
        report.arith_off_ns
    ));
    out.push_str(&format!(
        "    \"trace_arith_on_ns\": {:.1},\n",
        report.arith_on_ns
    ));
    out.push_str(&format!(
        "    \"trace_arith_ratio\": {:.4},\n",
        report.arith_ratio()
    ));
    out.push_str(&format!(
        "    \"trace_call_off_ns\": {:.1},\n",
        report.call_off_ns
    ));
    out.push_str(&format!(
        "    \"trace_call_on_ns\": {:.1},\n",
        report.call_on_ns
    ));
    out.push_str(&format!(
        "    \"trace_call_ratio\": {:.4},\n",
        report.call_ratio()
    ));
    out.push_str(&format!(
        "    \"trace_call_max_ratio\": {TRACE_CALL_MAX_RATIO}\n"
    ));
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gated ratio is on-over-off, and the JSON section carries the
    /// ceiling constant next to the measurement.
    #[test]
    fn ratios_and_json_shape() {
        let report = TraceOverheadReport {
            iterations: 1000,
            calls: 100,
            arith_off_ns: 1000.0,
            arith_on_ns: 1100.0,
            call_off_ns: 2000.0,
            call_on_ns: 2500.0,
        };
        assert!((report.arith_ratio() - 1.1).abs() < 1e-9);
        assert!((report.call_ratio() - 1.25).abs() < 1e-9);
        let json = trace_to_json(&report);
        assert!(json.contains("\"trace_call_ratio\": 1.2500"));
        assert!(json.contains("\"trace_call_max_ratio\": 1.5"));
        // Must never be picked up by bench_gate's per-row floor parser.
        for line in json.lines() {
            assert!(!(line.contains("\"name\"") && line.contains("\"speedup\"")));
        }
    }

    /// A tiny end-to-end measurement: both sides run, ratios are finite
    /// and positive (no perf assertion — that's the CI gate's job on
    /// release builds).
    #[test]
    fn measures_smoke() {
        let report = measure_trace_overhead(2_000, 40, 1);
        assert!(report.arith_ratio().is_finite() && report.arith_ratio() > 0.0);
        assert!(report.call_ratio().is_finite() && report.call_ratio() > 0.0);
    }
}
