//! Ablation: which part of I-JVM's overhead comes from *accounting* and
//! which from *isolation itself* (mirrors + migration)?
//!
//! Three configurations over the Figure 1 micro-benchmarks:
//! baseline (Shared), isolation without accounting, full I-JVM.
//! The paper bundles both under "I-JVM"; this harness separates them —
//! the ablation DESIGN.md calls out for the resource-accounting choice
//! (§3.2 rejects call/write barriers because of exactly this cost).

use ijvm_bench::micro::{run_once_with, Micro};
use ijvm_core::vm::{IsolationMode, VmOptions};
use std::time::Duration;

fn options(mode: IsolationMode, accounting: bool) -> VmOptions {
    let mut o = match mode {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    };
    o.accounting = accounting;
    o
}

fn median_of(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn main() {
    let iterations = 250_000;
    let rounds = 5;
    println!(
        "Ablation — isolation vs accounting cost ({iterations} iterations, median of {rounds})\n"
    );
    println!(
        "{:<22} {:>12} {:>18} {:>12}",
        "benchmark", "baseline", "isolated-no-acct", "full I-JVM"
    );
    for micro in Micro::ALL {
        let mut base = Vec::new();
        let mut noacct = Vec::new();
        let mut full = Vec::new();
        for _ in 0..rounds {
            let (b, _) = run_once_with(micro, options(IsolationMode::Shared, false), iterations);
            let (n, _) = run_once_with(micro, options(IsolationMode::Isolated, false), iterations);
            let (f, _) = run_once_with(micro, options(IsolationMode::Isolated, true), iterations);
            base.push(b.as_secs_f64());
            noacct.push(n.as_secs_f64() / b.as_secs_f64());
            full.push(f.as_secs_f64() / b.as_secs_f64());
        }
        let b = Duration::from_secs_f64(median_of(base));
        let n = median_of(noacct);
        let f = median_of(full);
        println!(
            "{:<22} {:>12} {:>16.3}x {:>11.3}x",
            micro.name(),
            format!("{b:.3?}"),
            n,
            f,
        );
    }
    println!("\n(isolated-no-acct isolates the mirror/migration cost; the gap to");
    println!(" full I-JVM is the per-allocation/per-call accounting the paper");
    println!(" accepted instead of write barriers)");
}
