//! Regenerates **Table 1**: cost of 200 inter-bundle calls, depending on
//! the communication model.
//!
//! Paper (Pentium D 3 GHz, JIT): local 20 µs, RMI 90 ms, Incommunicado
//! 9 ms, I-JVM 24 µs. The claim to reproduce is the *shape*: I-JVM within
//! a small factor of a plain local call, and an order of magnitude (or
//! more) below copying/marshalling models.

use ijvm_comm::models::{table1, Model};

fn main() {
    let calls = 200;
    println!("Table 1 — cost of {calls} inter-bundle calls per communication model");
    println!("(paper: local 20us | RMI 90ms | Incommunicado 9ms | I-JVM 24us)\n");
    println!(
        "{:<26} {:>14} {:>14} {:>16}",
        "model", "total", "per call", "guest insns"
    );
    let reports = table1(calls);
    for r in &reports {
        println!(
            "{:<26} {:>14} {:>13.0}ns {:>16}",
            r.model.name(),
            format!("{:.3?}", r.wall),
            r.ns_per_call(),
            r.guest_instructions
        );
    }
    let get = |m: Model| {
        reports
            .iter()
            .find(|r| r.model == m)
            .map(|r| r.ns_per_call())
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nratios: I-JVM/local = {:.2}x,  links/I-JVM = {:.1}x,  RMI/I-JVM = {:.1}x,  cross-unit/I-JVM = {:.1}x",
        get(Model::IJvm) / get(Model::Local),
        get(Model::Links) / get(Model::IJvm),
        get(Model::Rmi) / get(Model::IJvm),
        get(Model::CrossUnit) / get(Model::IJvm),
    );
}
