//! A/B/C comparison of the execution engines: the raw byte interpreter
//! vs the quickened match dispatch vs the direct-threaded handler
//! dispatch, on identical bytecode and VM configuration. Writes the rows
//! as JSON (default `BENCH_engine.json`; pass a path as the first
//! argument, as the CI bench gate does to keep the committed baseline
//! intact).

use ijvm_bench::checkpoint::{measure_checkpoint, print_checkpoint};
use ijvm_bench::engine::{engine_comparison, print_engine_table, to_json};
use ijvm_bench::parallel::{measure_scaling, print_scaling_table};
use ijvm_bench::saturation::{
    measure_saturation, measure_saturation_scaling, print_saturation, print_saturation_scaling,
    SAT_CLIENTS, SAT_SERVERS, SAT_WINDOWS,
};
use ijvm_bench::trace::{measure_trace_overhead, print_trace_overhead};
use ijvm_bench::xunit::{measure_cross_unit_ratio, print_cross_unit};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_owned());
    let iterations = 200_000;
    let runs = 5;
    println!(
        "Execution engine comparison — raw vs quickened vs threaded ({iterations} iterations, best of {runs})"
    );
    let rows = engine_comparison(iterations, runs);
    print_engine_table(&rows);
    let scaling = measure_scaling(8, 150_000, 3);
    print_scaling_table(&scaling);
    let cross_unit = measure_cross_unit_ratio(4_000, 3);
    print_cross_unit(&cross_unit);
    let trace = measure_trace_overhead(iterations, 4_000, 3);
    print_trace_overhead(&trace);
    let saturation = measure_saturation(SAT_CLIENTS, SAT_SERVERS, SAT_WINDOWS);
    print_saturation(&saturation);
    let sat_scaling = measure_saturation_scaling();
    print_saturation_scaling(&sat_scaling);
    let checkpoint = measure_checkpoint(8, 3);
    print_checkpoint(&checkpoint);
    let json = to_json(
        &rows,
        iterations,
        Some(&scaling),
        Some(&cross_unit),
        Some(&trace),
        Some(&saturation),
        Some(&sat_scaling),
        Some(&checkpoint),
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("\ncould not write {path}: {e}");
            std::process::exit(1);
        }
    }
}
