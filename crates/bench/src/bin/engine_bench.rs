//! A/B comparison of the execution engines: the raw byte interpreter vs
//! the quickened pre-decoded dispatch, on identical bytecode and VM
//! configuration. Writes `BENCH_engine.json` next to the working
//! directory for downstream tooling.

use ijvm_bench::engine::{engine_comparison, print_engine_table, to_json};

fn main() {
    let iterations = 200_000;
    let runs = 5;
    println!(
        "Execution engine comparison — raw vs quickened ({iterations} iterations, best of {runs})"
    );
    let rows = engine_comparison(iterations, runs);
    print_engine_table(&rows);
    let json = to_json(&rows, iterations);
    let path = "BENCH_engine.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
