//! Regenerates the **§4.4 accounting-limit experiments**: where I-JVM's
//! sampled / first-referencer accounting mischarges.
//!
//! Paper: (1) with M calling A a million times, ~75% of the CPU is
//! charged to A and ~25% to M; (2) collections forced by M's call storm
//! are charged to A, which allocates; (3) a 100 MB object returned by M
//! is charged to the caller that holds it.

use ijvm_attacks::limits;

fn main() {
    println!("Accounting limits (section 4.4)\n");

    let cpu = limits::cpu_mischarge(100_000);
    println!("1. CPU — M calls A.work() 100k times:");
    println!(
        "   sampled:  A {:>12} ({:.0}%)   M {:>12} ({:.0}%)",
        cpu.callee_sampled,
        cpu.callee_share() * 100.0,
        cpu.caller_sampled,
        (1.0 - cpu.callee_share()) * 100.0
    );
    println!(
        "   exact:    A {:>12}          M {:>12}   (paper: ~75% / ~25%)",
        cpu.callee_exact, cpu.caller_exact
    );

    let gc = limits::gc_mischarge(200_000);
    println!("\n2. GC activations — M's call storm makes A allocate:");
    println!(
        "   charged to A (callee): {}   charged to M (caller): {}",
        gc.callee_gc, gc.caller_gc
    );

    let mem = limits::memory_mischarge();
    println!("\n3. Memory — a large object returned by M, held by the caller:");
    println!(
        "   charged to holder: {} bytes   charged to producer M: {} bytes",
        mem.holder_bytes, mem.producer_bytes
    );
    println!("\n(the imprecision is the price of thread migration + object sharing;");
    println!(" the paper leaves more precise accounting as future work)");
}
