//! Regenerates **Figure 1**: performance of I-JVM for the
//! micro-benchmarks, relative to the unmodified baseline VM.
//!
//! Paper: intra-bundle call +14%, inter-bundle call +16%, object
//! allocation +18%, static access +46% without compiler optimizations
//! (<1% with them — an interpreter never hoists, so this harness matches
//! the *unoptimized* static-access configuration).

use ijvm_bench::micro::figure1;
use ijvm_bench::print_overhead_table;

fn main() {
    let iterations = 250_000; // x4 unrolled bodies = 1M measured operations
    println!("Figure 1 — micro-benchmark overhead of I-JVM vs baseline ({iterations} iterations)");
    println!("(paper: intra +14% | inter +16% | allocation +18% | static access +46% unoptimized)");
    let rows = figure1(iterations);
    print_overhead_table("Figure 1", &rows);
    println!("\nguest-instruction view (hardware-independent):");
    for r in &rows {
        let pct = (r.isolated_insns as f64 / r.shared_insns.max(1) as f64 - 1.0) * 100.0;
        println!("  {:<22} +{:.1}% instructions", r.name, pct);
    }
}
