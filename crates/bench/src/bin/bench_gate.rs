//! The bench-regression gate: compares a fresh `engine_bench` run against
//! the committed `BENCH_engine.json` floors and fails (exit 1) when any
//! baseline row's speedup ratio regressed beyond the tolerance. Usage:
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [tolerance]
//! ```
//!
//! Each row carries up to two gated metrics: `speedup` (quickened vs
//! raw) and `threaded_speedup` (threaded vs raw); a metric present in
//! the baseline must hold its floor in the fresh run. `tolerance` is the
//! allowed relative slack below a baseline ratio and defaults to
//! [`ijvm_bench::GATE_TOLERANCE`] (−10%) — one constant shared with the
//! CI workflow and the docs so they cannot drift. Rows present only in
//! the fresh file (newly added benchmarks) are reported but never gate;
//! rows missing from the fresh file fail, so a benchmark cannot silently
//! disappear. The parser is hand-rolled against the one-row-per-line
//! format `engine_bench` writes — the workspace builds offline, without
//! serde.

use std::process::ExitCode;

/// One parsed benchmark row.
#[derive(Debug, Clone)]
struct Row {
    name: String,
    speedup: f64,
    threaded_speedup: Option<f64>,
}

/// Extracts the string value of `"key": "..."` from a JSON row line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

/// Extracts the numeric value of `"key": ...` from a JSON row line. The
/// search tag includes the opening quote, so `"speedup"` cannot match
/// inside `"threaded_speedup"` (no quote precedes the `speedup` suffix
/// there) — asserted by `speedup_key_is_boundary_checked`.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_rows(json: &str) -> Vec<Row> {
    json.lines()
        .filter(|l| l.contains("\"name\"") && l.contains("\"speedup\""))
        .filter_map(|l| {
            Some(Row {
                name: str_field(l, "name")?,
                speedup: num_field(l, "speedup")?,
                threaded_speedup: num_field(l, "threaded_speedup"),
            })
        })
        .collect()
}

fn load_json(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("could not read {path}: {e}"))
}

/// Extracts the numeric value of the first `"key": ...` anywhere in the
/// document (used for the flat `"parallel"` section keys).
fn doc_num(json: &str, key: &str) -> Option<f64> {
    json.lines().find_map(|l| num_field(l, key))
}

/// Renders one row's full ratio set, for the offending-row summary.
fn describe_row(r: &Row) -> String {
    match r.threaded_speedup {
        Some(t) => format!("speedup {:.4}x, threaded_speedup {t:.4}x", r.speedup),
        None => format!("speedup {:.4}x", r.speedup),
    }
}

/// Gates one metric of one row. Returns `true` on failure.
fn gate_metric(
    name: &str,
    metric: &str,
    baseline: f64,
    fresh: Option<f64>,
    tolerance: f64,
) -> bool {
    let floor = baseline * (1.0 - tolerance);
    match fresh {
        Some(f) if f >= floor => {
            println!(
                "  ok   {name:<22} {metric:<17} {f:.4}x (floor {floor:.4}x, baseline {baseline:.4}x)"
            );
            false
        }
        Some(f) => {
            println!(
                "  FAIL {name:<22} {metric:<17} {f:.4}x below floor {floor:.4}x (baseline {baseline:.4}x)"
            );
            true
        }
        None => {
            println!("  FAIL {name:<22} {metric:<17} missing from the fresh run");
            true
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(fresh_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json> [tolerance]");
        return ExitCode::FAILURE;
    };
    let tolerance: f64 = args
        .next()
        .map(|t| t.parse().expect("tolerance must be a number"))
        .unwrap_or(ijvm_bench::GATE_TOLERANCE);

    let baseline_json = load_json(&baseline_path);
    let fresh_json = load_json(&fresh_path);
    let baseline = parse_rows(&baseline_json);
    let fresh = parse_rows(&fresh_json);
    assert!(
        !baseline.is_empty(),
        "{baseline_path} contains no benchmark rows"
    );
    assert!(!fresh.is_empty(), "{fresh_path} contains no benchmark rows");

    println!(
        "bench gate: {fresh_path} vs floors in {baseline_path} (tolerance −{:.0}%)",
        tolerance * 100.0
    );
    let mut failures = 0u32;
    // Offending rows, re-listed at the end with *both* ratios so a CI
    // log tail alone attributes the regression.
    let mut offenders: Vec<String> = Vec::new();
    for b in &baseline {
        match fresh.iter().find(|f| f.name == b.name) {
            Some(f) => {
                let mut row_failed =
                    gate_metric(&b.name, "speedup", b.speedup, Some(f.speedup), tolerance);
                if let Some(bt) = b.threaded_speedup {
                    row_failed |= gate_metric(
                        &b.name,
                        "threaded_speedup",
                        bt,
                        f.threaded_speedup,
                        tolerance,
                    );
                }
                if row_failed {
                    failures += 1;
                    offenders.push(format!(
                        "{}: fresh {} | baseline {}",
                        b.name,
                        describe_row(f),
                        describe_row(b)
                    ));
                }
            }
            None => {
                println!("  FAIL {:<22} missing from {fresh_path}", b.name);
                failures += 1;
                offenders.push(format!("{}: missing from the fresh run", b.name));
            }
        }
    }
    for f in &fresh {
        if !baseline.iter().any(|b| b.name == f.name) {
            println!(
                "  new  {:<22} {:.4}x (not gated; add to the baseline)",
                f.name, f.speedup
            );
        }
    }

    // Parallel-scheduler scalability gate: the committed floor applies
    // only where scaling is physically possible (>= 4 host cores —
    // single-core containers measure ~1.0x by definition).
    if let Some(floor) = doc_num(&baseline_json, "scaling_floor_4w") {
        let cpus = doc_num(&fresh_json, "host_cpus").unwrap_or(1.0);
        match doc_num(&fresh_json, "scaling_1_to_4") {
            Some(scaling) if cpus >= 4.0 => {
                if scaling >= floor {
                    println!(
                        "  ok   parallel scaling 1→4 workers: {scaling:.4}x (floor {floor:.2}x, {cpus} cpus)"
                    );
                } else {
                    println!(
                        "  FAIL parallel scaling 1→4 workers: {scaling:.4}x below floor {floor:.2}x ({cpus} cpus)"
                    );
                    failures += 1;
                    offenders.push(format!(
                        "parallel scaling 1→4 workers: fresh {scaling:.4}x, floor {floor:.2}x"
                    ));
                }
            }
            Some(scaling) => {
                println!(
                    "  skip parallel scaling 1→4 workers: {scaling:.4}x measured on {cpus} cpu(s); floor {floor:.2}x gated on >=4-core runners only"
                );
            }
            None => {
                println!("  FAIL parallel scaling section missing from {fresh_path}");
                failures += 1;
                offenders.push("parallel scaling: missing from the fresh run".to_owned());
            }
        }
    }

    // Cross-unit call-cost gate: the inter-unit service layer must stay
    // within the committed ceiling of an intra-VM cross-isolate call
    // (same box, same run, one worker — a pure mechanism ratio). This is
    // a *ceiling*, so the tolerance is applied upward.
    if let Some(max_ratio) = doc_num(&baseline_json, "cross_unit_max_ratio") {
        let ceiling = max_ratio * (1.0 + tolerance);
        match doc_num(&fresh_json, "cross_unit_ratio") {
            Some(ratio) if ratio <= ceiling => {
                println!(
                    "  ok   cross-unit call cost: {ratio:.4}x inter-isolate (ceiling {ceiling:.2}x)"
                );
            }
            Some(ratio) => {
                println!(
                    "  FAIL cross-unit call cost: {ratio:.4}x inter-isolate above ceiling {ceiling:.2}x"
                );
                failures += 1;
                offenders.push(format!(
                    "cross-unit call cost: fresh {ratio:.4}x, ceiling {ceiling:.2}x"
                ));
            }
            None => {
                println!("  FAIL cross-unit section missing from {fresh_path}");
                failures += 1;
                offenders.push("cross-unit call cost: missing from the fresh run".to_owned());
            }
        }
    }

    // Flight-recorder overhead gate: turning tracing on may slow the
    // cross-unit call micro (the recorder's worst published case — every
    // call emits hub events plus latency and CPU-charge records) by at
    // most the committed ceiling relative to the trace-off run. Another
    // ceiling, so the tolerance is applied upward. The trace-off side
    // needs no extra gate: the per-row floors above are measured with
    // tracing off, so trace-off overhead regressions already trip them.
    if let Some(max_ratio) = doc_num(&baseline_json, "trace_call_max_ratio") {
        let ceiling = max_ratio * (1.0 + tolerance);
        match doc_num(&fresh_json, "trace_call_ratio") {
            Some(ratio) if ratio <= ceiling => {
                println!(
                    "  ok   trace-on call overhead: {ratio:.4}x trace-off (ceiling {ceiling:.2}x)"
                );
            }
            Some(ratio) => {
                println!(
                    "  FAIL trace-on call overhead: {ratio:.4}x trace-off above ceiling {ceiling:.2}x"
                );
                failures += 1;
                offenders.push(format!(
                    "trace-on call overhead: fresh {ratio:.4}x, ceiling {ceiling:.2}x"
                ));
            }
            None => {
                println!("  FAIL trace section missing from {fresh_path}");
                failures += 1;
                offenders.push("trace-on call overhead: missing from the fresh run".to_owned());
            }
        }
    }

    // Saturation-latency gate: the p99 cross-unit round-trip under the
    // quota-bounded saturation workload, in *deterministic vclock
    // ticks*. Unlike the wall-clock sections this number cannot drift
    // with runner speed — the deterministic scheduler replays the same
    // delivery/coalescing schedule on every box — so a fresh p99 above
    // the ceiling means the flow-control or batching behavior itself
    // changed, not that CI was slow. Still a ceiling, so the shared
    // tolerance is applied upward.
    if let Some(max_ticks) = doc_num(&baseline_json, "sat_p99_max_ticks") {
        let ceiling = max_ticks * (1.0 + tolerance);
        match doc_num(&fresh_json, "sat_p99_ticks") {
            Some(p99) if p99 <= ceiling => {
                println!(
                    "  ok   saturation p99 round-trip: {p99:.0} ticks (ceiling {ceiling:.0} ticks)"
                );
            }
            Some(p99) => {
                println!(
                    "  FAIL saturation p99 round-trip: {p99:.0} ticks above ceiling {ceiling:.0} ticks"
                );
                failures += 1;
                offenders.push(format!(
                    "saturation p99 round-trip: fresh {p99:.0} ticks, ceiling {ceiling:.0} ticks"
                ));
            }
            None => {
                println!("  FAIL saturation section missing from {fresh_path}");
                failures += 1;
                offenders.push("saturation p99 round-trip: missing from the fresh run".to_owned());
            }
        }
    }

    // Hub-scaling flat-ratio gate: the unit-count sweep (8 → 1000+
    // units at identical per-shard pressure) must keep cross-unit wall
    // ns/call flat — the worst row over the best stays under the
    // committed ceiling. A hub whose per-message cost walked a global
    // registry or swept every mailbox would scale with unit count and
    // trip this at the 1000-unit row. Wall-clock based, so the shared
    // upward tolerance applies on top of the already-generous ceiling.
    if let Some(max_ratio) = doc_num(&baseline_json, "sat_scaling_max_ratio") {
        let ceiling = max_ratio * (1.0 + tolerance);
        match doc_num(&fresh_json, "sat_scaling_ratio") {
            Some(ratio) if ratio <= ceiling => {
                println!("  ok   hub scaling flat ratio: {ratio:.2}x (ceiling {ceiling:.2}x)");
            }
            Some(ratio) => {
                println!("  FAIL hub scaling flat ratio: {ratio:.2}x above ceiling {ceiling:.2}x");
                failures += 1;
                offenders.push(format!(
                    "hub scaling flat ratio: fresh {ratio:.2}x, ceiling {ceiling:.2}x"
                ));
            }
            None => {
                println!("  FAIL hub scaling sweep missing from {fresh_path}");
                failures += 1;
                offenders.push("hub scaling flat ratio: missing from the fresh run".to_owned());
            }
        }
    }

    // Checkpoint elasticity gate: restoring a warmed image must beat
    // the cold boot (class load + `<clinit>` + warmup) it replaces by
    // the committed floor. A floor, so the shared tolerance is applied
    // downward, like the engine speedups: both sides of the ratio run
    // back to back on the same box, cancelling runner-speed variance.
    if let Some(floor) = doc_num(&baseline_json, "restore_min_speedup") {
        let gated_floor = floor * (1.0 - tolerance);
        match doc_num(&fresh_json, "restore_speedup") {
            Some(speedup) if speedup >= gated_floor => {
                println!(
                    "  ok   checkpoint restore vs cold boot: {speedup:.2}x (floor {gated_floor:.2}x)"
                );
            }
            Some(speedup) => {
                println!(
                    "  FAIL checkpoint restore vs cold boot: {speedup:.2}x below floor {gated_floor:.2}x"
                );
                failures += 1;
                offenders.push(format!(
                    "checkpoint restore vs cold boot: fresh {speedup:.2}x, floor {gated_floor:.2}x"
                ));
            }
            None => {
                println!("  FAIL checkpoint section missing from {fresh_path}");
                failures += 1;
                offenders.push("checkpoint restore speedup: missing from the fresh run".to_owned());
            }
        }
    }

    if failures > 0 {
        eprintln!("bench gate: {failures} metric(s) regressed; offending rows:");
        for o in &offenders {
            eprintln!("  - {o}");
        }
        ExitCode::FAILURE
    } else {
        println!("bench gate: all metrics at or above their floors");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "rows": [
    {"name": "intra-isolate call", "raw_ns": 10, "quickened_ns": 8, "threaded_ns": 7, "speedup": 1.2500, "threaded_speedup": 1.4286, "guest_insns": 42},
    {"name": "static access", "raw_ns": 10, "quickened_ns": 6, "speedup": 1.6667, "guest_insns": 42}
  ]
}"#;

    #[test]
    fn parses_rows() {
        let rows = parse_rows(SAMPLE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "intra-isolate call");
        assert!((rows[0].speedup - 1.25).abs() < 1e-9);
        assert!((rows[0].threaded_speedup.unwrap() - 1.4286).abs() < 1e-9);
        assert!((rows[1].speedup - 1.6667).abs() < 1e-9);
        assert_eq!(rows[1].threaded_speedup, None);
    }

    /// The flat `"parallel"` section keys parse from anywhere in the
    /// document, and row keys never shadow them.
    #[test]
    fn parallel_section_keys_parse() {
        let doc = r#"{
  "rows": [
    {"name": "x", "speedup": 1.5, "guest_insns": 2}
  ],
  "parallel": {
    "host_cpus": 4,
    "rows": [
      {"workers": 1, "wall_ns": 100, "scaling_vs_1w": 1.0000},
      {"workers": 4, "wall_ns": 40, "scaling_vs_1w": 2.5000}
    ],
    "scaling_1_to_4": 2.5000,
    "scaling_floor_4w": 1.5
  }
}"#;
        assert_eq!(doc_num(doc, "host_cpus"), Some(4.0));
        assert_eq!(doc_num(doc, "scaling_1_to_4"), Some(2.5));
        assert_eq!(doc_num(doc, "scaling_floor_4w"), Some(1.5));
        assert_eq!(doc_num(doc, "absent_key"), None);
    }

    /// `"cross_unit_ratio"` must not match inside
    /// `"cross_unit_max_ratio"` and vice versa (the quote-anchored tag
    /// keeps them apart regardless of field order).
    #[test]
    fn cross_unit_keys_parse_independently() {
        let doc = r#"{
  "cross_unit": {
    "calls": 4000,
    "intra_vm_ns_per_call": 130.0,
    "cross_unit_ns_per_call": 1290.0,
    "cross_unit_max_ratio": 10.0,
    "cross_unit_ratio": 9.9231
  }
}"#;
        assert!((doc_num(doc, "cross_unit_ratio").unwrap() - 9.9231).abs() < 1e-9);
        assert!((doc_num(doc, "cross_unit_max_ratio").unwrap() - 10.0).abs() < 1e-9);
    }

    /// Same independence for the `"trace"` section keys: the
    /// quote-anchored tag keeps `"trace_call_ratio"` from matching
    /// inside `"trace_call_max_ratio"` regardless of field order.
    #[test]
    fn trace_keys_parse_independently() {
        let doc = r#"{
  "trace": {
    "trace_iterations": 200000,
    "trace_call_max_ratio": 1.5,
    "trace_call_ratio": 1.2345,
    "trace_arith_ratio": 1.0123
  }
}"#;
        assert!((doc_num(doc, "trace_call_ratio").unwrap() - 1.2345).abs() < 1e-9);
        assert!((doc_num(doc, "trace_call_max_ratio").unwrap() - 1.5).abs() < 1e-9);
        assert!((doc_num(doc, "trace_arith_ratio").unwrap() - 1.0123).abs() < 1e-9);
    }

    /// Same independence for the `"saturation"` section keys:
    /// `"sat_p99_ticks"` must not match inside `"sat_p99_max_ticks"`
    /// regardless of field order.
    #[test]
    fn saturation_keys_parse_independently() {
        let doc = r#"{
  "saturation": {
    "sat_units": 200,
    "sat_p99_max_ticks": 4096,
    "sat_p99_ticks": 2048,
    "sat_p50_ticks": 2048
  }
}"#;
        assert!((doc_num(doc, "sat_p99_ticks").unwrap() - 2048.0).abs() < 1e-9);
        assert!((doc_num(doc, "sat_p99_max_ticks").unwrap() - 4096.0).abs() < 1e-9);
        assert!((doc_num(doc, "sat_p50_ticks").unwrap() - 2048.0).abs() < 1e-9);
    }

    /// The scaling-sweep keys follow the same discipline:
    /// `"sat_scaling_ratio"` must not match inside
    /// `"sat_scaling_max_ratio"`, and the `sweep_`-prefixed per-row
    /// keys inside the `sat_scaling` array can never shadow a scalar.
    #[test]
    fn scaling_sweep_keys_parse_independently() {
        let doc = r#"{
  "saturation": {
    "sat_scaling": [
      { "sweep_units": 8, "sweep_ns_per_msg": 750.0 },
      { "sweep_units": 1000, "sweep_ns_per_msg": 800.0 }
    ],
    "sat_scaling_max_ratio": 3.00,
    "sat_scaling_ratio": 1.067
  }
}"#;
        assert!((doc_num(doc, "sat_scaling_ratio").unwrap() - 1.067).abs() < 1e-9);
        assert!((doc_num(doc, "sat_scaling_max_ratio").unwrap() - 3.0).abs() < 1e-9);
    }

    /// `"speedup"` must not match the tail of `"threaded_speedup"`, even
    /// if a writer reorders the fields.
    #[test]
    fn speedup_key_is_boundary_checked() {
        let line = r#"{"name": "x", "threaded_speedup": 2.0, "speedup": 1.5}"#;
        assert!((num_field(line, "speedup").unwrap() - 1.5).abs() < 1e-9);
        assert!((num_field(line, "threaded_speedup").unwrap() - 2.0).abs() < 1e-9);
    }
}
