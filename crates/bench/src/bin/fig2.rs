//! Regenerates **Figure 2**: overhead of I-JVM on the SPEC JVM98
//! analogues, relative to the baseline VM. The workloads run inside
//! Isolate0, exactly as the paper runs SPEC.
//!
//! Paper: all benchmarks below 20% overhead.

use ijvm_bench::{print_overhead_table, OverheadRow};
use ijvm_core::vm::IsolationMode;
use ijvm_workloads::{run_workload, spec};

fn main() {
    println!("Figure 2 — SPEC JVM98 analogue overhead of I-JVM vs baseline");
    println!("(paper: every benchmark below 20% overhead)\n");
    let rounds = 3;
    let mut rows = Vec::new();
    for w in spec::all() {
        let mut ratios = Vec::new();
        let mut best_shared = std::time::Duration::MAX;
        let mut shared_insns = 0;
        let mut isolated_insns = 0;
        for _ in 0..rounds {
            let shared = run_workload(&w, IsolationMode::Shared);
            let isolated = run_workload(&w, IsolationMode::Isolated);
            assert_eq!(shared.result, isolated.result, "{} diverged", w.name);
            ratios.push(isolated.wall.as_secs_f64() / shared.wall.as_secs_f64());
            best_shared = best_shared.min(shared.wall);
            shared_insns = shared.instructions;
            isolated_insns = isolated.instructions;
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = ratios[ratios.len() / 2];
        rows.push(OverheadRow {
            name: w.name,
            shared: best_shared,
            isolated: std::time::Duration::from_secs_f64(best_shared.as_secs_f64() * median),
            shared_insns,
            isolated_insns,
        });
    }
    print_overhead_table("Figure 2", &rows);
    let max = rows
        .iter()
        .map(|r| r.overhead_pct())
        .fold(f64::MIN, f64::max);
    println!("\nmax overhead: {max:.1}%");
}
