//! Regenerates **Figure 3**: memory consumption of I-JVM vs the baseline
//! when running the Felix-like (3 management bundles) and Equinox-like
//! (22 management bundles) base configurations.
//!
//! Paper: the memory overhead of the task-class-mirror arrays plus the
//! per-isolate string maps and statistics stays below 16%.

use ijvm_core::vm::IsolationMode;
use ijvm_osgi::profiles;

fn measure(mode: IsolationMode, bundles: &[&str]) -> (usize, usize, usize) {
    let options = match mode {
        IsolationMode::Shared => ijvm_core::vm::VmOptions::shared(),
        IsolationMode::Isolated => ijvm_core::vm::VmOptions::isolated(),
    };
    let (mut fw, _) = profiles::boot_profile(options, bundles).expect("profile boots");
    fw.vm_mut().collect_garbage(None);
    let heap = fw.vm().heap_used();
    let metadata = fw.vm().metadata_bytes();
    // Engine metadata (pre-decoded instruction streams) is mode-independent
    // and reported separately so the isolation ratio stays comparable to
    // the paper's Figure 3.
    let engine = fw.vm().engine_metadata_bytes();
    println!("  [engine streams: {engine}B, identical in both modes]");
    (heap, metadata, heap + metadata)
}

fn main() {
    println!("Figure 3 — memory consumption on OSGi base configurations");
    println!("(paper: overhead below 16% for both Felix and Equinox)\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "configuration", "baseline", "I-JVM", "delta", "overhead"
    );
    for (name, bundles) in [
        ("felix-base (3)", profiles::FELIX_BUNDLES),
        ("equinox-base (22)", profiles::EQUINOX_BUNDLES),
    ] {
        let (_, _, shared_total) = measure(IsolationMode::Shared, bundles);
        let (_, _, iso_total) = measure(IsolationMode::Isolated, bundles);
        let overhead = (iso_total as f64 / shared_total.max(1) as f64 - 1.0) * 100.0;
        println!(
            "{:<22} {:>11}B {:>11}B {:>11}B {:>9.1}%",
            name,
            shared_total,
            iso_total,
            iso_total as i64 - shared_total as i64,
            overhead
        );
    }
}
