//! Regenerates the **§4.3 robustness matrix**: every attack A1–A8 run
//! against the Shared baseline (the "Sun JVM" column) and against I-JVM.
//!
//! Paper: all eight compromise the baseline; I-JVM contains all eight
//! (relying on the administrator for the resource attacks).

use ijvm_attacks::{run_attack, AttackId};
use ijvm_core::vm::IsolationMode;

fn main() {
    println!("Robustness matrix (section 4.3): attacks A1..A8\n");
    println!(
        "{:<4} {:<44} {:<12} {:<12}",
        "id", "attack", "baseline", "I-JVM"
    );
    let mut baseline_ok = true;
    let mut ijvm_ok = true;
    for id in AttackId::ALL {
        let shared = run_attack(id, IsolationMode::Shared);
        let isolated = run_attack(id, IsolationMode::Isolated);
        baseline_ok &= shared.compromised;
        ijvm_ok &= !isolated.compromised;
        println!(
            "{:<4} {:<44} {:<12} {:<12}",
            id.label(),
            id.description(),
            if shared.compromised {
                "COMPROMISED"
            } else {
                "survived?!"
            },
            if isolated.compromised {
                "BREACHED?!"
            } else {
                "contained"
            },
        );
    }
    println!();
    for id in AttackId::ALL {
        let isolated = run_attack(id, IsolationMode::Isolated);
        println!("{}: {}", id.label(), isolated.detail);
    }
    println!(
        "\nsummary: baseline vulnerable to all 8: {baseline_ok}; I-JVM contains all 8: {ijvm_ok}"
    );
    if !(baseline_ok && ijvm_ok) {
        std::process::exit(1);
    }
}
