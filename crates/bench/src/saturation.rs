//! Hub saturation: hundreds of cluster units pushing ~10⁶ `Service.post`
//! messages through quota-bounded mailboxes, measuring per-call
//! round-trip latency at the p50/p99 quantiles.
//!
//! The workload is deliberately the worst case for the flow-control
//! path: every client pipelines a full window of futures at once, and
//! each echo shard serves far more clients than its mailbox quota
//! admits, so senders continuously park on quota and get woken by the
//! drain path. The gated quantiles are read from the flight recorder's
//! [`LatencyHistogram`](ijvm_core::trace::VmMetrics) in **vclock
//! ticks** — guest instructions between a post and its reply delivery.
//! Under the deterministic scheduler those ticks are bit-identical from
//! run to run and box to box, so unlike the wall-clock sections the
//! ceiling can be tight: a p99 shift means the delivery/coalescing
//! schedule itself changed (replies arriving in more boundary batches,
//! quota wakeups landing later), not that the runner was slow. Wall time
//! is still reported, but only as an informative throughput figure.

use ijvm_core::sched::{Cluster, SchedulerKind};
use ijvm_core::trace::TraceConfig;
use ijvm_core::value::Value;
use ijvm_core::vm::{Vm, VmOptions};
use std::time::{Duration, Instant};

/// Echo shards (server units) the clients are striped across.
pub const SAT_SERVERS: usize = 8;
/// Client units; together with the shards this is the "hundreds of
/// units" scale the saturation lane exists to exercise.
pub const SAT_CLIENTS: usize = 192;
/// Futures each client keeps in flight per window.
pub const SAT_WINDOW: i32 = 64;
/// Windows each client drives: `192 × 82 × 64 ≈ 1.0 M` messages.
pub const SAT_WINDOWS: i32 = 82;
/// Per-unit mailbox quota (messages): far below the `clients/shard ×
/// window` posts that would otherwise be outstanding, so quota parking
/// engages continuously.
pub const SAT_QUOTA_MSGS: u32 = 256;
/// Per-unit mailbox quota (bytes).
pub const SAT_QUOTA_BYTES: u64 = 4 << 20;

/// The gated ceiling on the deterministic p99 round-trip latency, in
/// vclock ticks. The histogram is power-of-two bucketed, so quantiles
/// snap to bucket bounds and don't drift with runner speed; the ceiling
/// sits exactly one bucket above the committed measurement (2048), so a
/// legitimate schedule-shaping change (quantum retuning, delivery
/// batching) fits without touching this constant while a ≥4× latency
/// regression trips the gate.
pub const SAT_P99_MAX_TICKS: u64 = 4096;

/// Unit counts the scaling sweep measures. The shape at every count is
/// the same — one echo shard per 8 units, 7 clients striped onto each
/// shard, identical per-shard quota pressure — so the only variable is
/// how many shards, rings and wake words the hub carries; a flat
/// ns/call across the rows is direct evidence the sharded registry and
/// the batched sweeps stay O(1) per message as the topology grows.
pub const SAT_SCALING_COUNTS: [usize; 4] = [8, 64, 256, 1000];

/// Futures each scaling-sweep client keeps in flight per window.
pub const SAT_SCALING_WINDOW: i32 = 16;

/// Windows each scaling-sweep client drives. Constant *per client* —
/// not derived from a global message budget — so every row does the
/// same per-unit work and the one-time per-unit costs (class loading,
/// quickening warm-up, service export) are amortized over the same
/// number of messages at every count. A fixed global budget would
/// charge 1000 units' warm-up to the same message count as 8 units'
/// and report super-linear scaling the hub doesn't have.
pub const SAT_SCALING_WINDOWS: i32 = 64;

/// Per-unit quota for the sweep: below the 7 clients × 16 futures a
/// shard would otherwise have outstanding, so parking engages at every
/// count.
pub const SAT_SCALING_QUOTA_MSGS: u32 = 32;

/// The gated ceiling on the sweep's flat ratio (worst per-message wall
/// cost across the counts over the best). Wall-clock based, so it gets
/// generous headroom: the small rows run in ~10 ms and jitter ±40% on
/// a busy host, and at 1000 live VMs the working set falls out of the
/// last-level cache, which costs a real (but bounded, machine-level)
/// 2–3× per message. The ceiling gates the *algorithmic* property —
/// a hub that walked a global map or scanned every mailbox per message
/// would scale with unit count and land at 10–100× here, not 4×.
pub const SAT_SCALING_MAX_RATIO: f64 = 4.0;

/// One row of the unit-count scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Total cluster units (clients + echo shards).
    pub units: usize,
    /// Echo shards among them.
    pub servers: usize,
    /// Posted messages (each also produces a reply).
    pub messages: u64,
    /// Wall time of the cluster run (excludes VM boot and submission).
    pub wall: Duration,
}

impl ScalingRow {
    /// Cross-unit wall cost per posted message.
    pub fn ns_per_msg(&self) -> f64 {
        self.wall.as_nanos() as f64 / (self.messages as f64).max(1.0)
    }
}

/// The unit-count scaling sweep: one [`ScalingRow`] per entry of
/// [`SAT_SCALING_COUNTS`].
#[derive(Debug, Clone)]
pub struct SaturationScaling {
    /// One row per measured unit count, in sweep order.
    pub rows: Vec<ScalingRow>,
}

impl SaturationScaling {
    /// Worst per-message cost across the counts over the best — the
    /// flat-ratio criterion `bench_gate` holds the sweep to.
    pub fn flat_ratio(&self) -> f64 {
        let costs: Vec<f64> = self.rows.iter().map(ScalingRow::ns_per_msg).collect();
        let max = costs.iter().cloned().fold(f64::MIN, f64::max);
        let min = costs.iter().cloned().fold(f64::MAX, f64::min);
        if min > 0.0 {
            max / min
        } else {
            1.0
        }
    }
}

/// One saturation measurement.
#[derive(Debug, Clone)]
pub struct SaturationReport {
    /// Total cluster units (clients + echo shards).
    pub units: usize,
    /// Posted messages (each also produces a reply).
    pub messages: u64,
    /// Round-trip latency median, in deterministic vclock ticks.
    pub p50_ticks: u64,
    /// Round-trip latency 99th percentile, in deterministic vclock ticks.
    pub p99_ticks: u64,
    /// Quota parks observed (sanity signal that flow control engaged).
    pub quota_parks: u64,
    /// Wall time of the whole cluster run (informative only).
    pub wall: Duration,
}

impl SaturationReport {
    /// Informative wall-clock throughput: ns per posted message.
    pub fn ns_per_msg(&self) -> f64 {
        self.wall.as_nanos() as f64 / (self.messages as f64).max(1.0)
    }
}

fn sat_options() -> VmOptions {
    let mut options = VmOptions::isolated().with_trace(TraceConfig::Full);
    options.quantum = 20_000;
    options
}

fn sat_vm(src: &str, entry: &str, method: &str, arg: i32) -> Vm {
    let mut vm = ijvm_jsl::boot(sat_options());
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in
        ijvm_minijava::compile_to_bytes(src, &ijvm_minijava::CompileEnv::new()).unwrap()
    {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, entry).unwrap();
    let index = vm.class(class).find_method(method, "(I)I").unwrap();
    let mref = ijvm_core::ids::MethodRef { class, index };
    vm.spawn_thread(method, mref, vec![Value::Int(arg)], iso)
        .unwrap();
    vm
}

fn client_src(shard: usize, window: i32) -> String {
    format!(
        r#"
        class Client {{
            static int drive(int n) {{
                int acc = 0;
                Future[] fs = new Future[{window}];
                for (int w = 0; w < n; w++) {{
                    for (int i = 0; i < {window}; i++) {{
                        fs[i] = Service.post("echo{shard}", i);
                    }}
                    for (int i = 0; i < {window}; i++) {{
                        acc += fs[i].get();
                    }}
                }}
                return acc;
            }}
        }}
        "#
    )
}

fn server_src(shard: usize) -> String {
    format!(
        r#"
        class Echo {{
            int handle(int x) {{ return x + 1; }}
        }}
        class Boot {{
            static int start(int n) {{
                Service.export("echo{shard}", new Echo());
                return n;
            }}
        }}
        "#
    )
}

/// Runs the saturation workload once under the deterministic scheduler
/// and returns the latency quantiles. `clients`, `servers` and
/// `windows` let the CI differential lane run a downsized copy of the
/// same topology; the committed JSON always uses the `SAT_*` defaults.
pub fn measure_saturation(clients: usize, servers: usize, windows: i32) -> SaturationReport {
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Deterministic)
        .slice(100_000)
        .mailbox_quota(SAT_QUOTA_MSGS, SAT_QUOTA_BYTES)
        .build();
    let mut server_handles = Vec::with_capacity(servers);
    for s in 0..servers {
        server_handles.push(cluster.submit(sat_vm(&server_src(s), "Boot", "start", 1)));
    }
    let mut client_handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let src = client_src(c % servers, SAT_WINDOW);
        client_handles.push(cluster.submit(sat_vm(&src, "Client", "drive", windows)));
    }
    let start = Instant::now();
    let outcome = cluster.run();
    let wall = start.elapsed();

    // Every window item echoes back `i + 1`: a silent wrong answer here
    // would make the latency rows meaningless, so verify the checksum
    // before reporting anything.
    let per_client = windows as i64 * (0..SAT_WINDOW as i64).map(|i| i + 1).sum::<i64>();
    for handle in &client_handles {
        let got = outcome
            .unit(handle)
            .vm
            .thread_result(ijvm_core::ids::ThreadId(0))
            .map(|v| v.as_int() as i64)
            .expect("client finished");
        assert_eq!(got, per_client, "saturation client checksum");
    }

    let metrics = outcome.metrics.expect("tracing was on");
    SaturationReport {
        units: clients + servers,
        messages: clients as u64 * windows as u64 * SAT_WINDOW as u64,
        p50_ticks: metrics.totals.call_latency.quantile(0.5),
        p99_ticks: metrics.totals.call_latency.quantile(0.99),
        quota_parks: metrics.totals.quota_parks,
        wall,
    }
}

/// Runs the quota-saturated topology once at `units` total units under
/// the deterministic scheduler and returns its scaling row.
fn measure_scaling_row(units: usize) -> ScalingRow {
    let servers = (units / 8).max(1);
    let clients = units - servers;
    let windows = SAT_SCALING_WINDOWS;
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Deterministic)
        .slice(100_000)
        .mailbox_quota(SAT_SCALING_QUOTA_MSGS, SAT_QUOTA_BYTES)
        .build();
    for s in 0..servers {
        cluster.submit(sat_vm(&server_src(s), "Boot", "start", 1));
    }
    let mut client_handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let src = client_src(c % servers, SAT_SCALING_WINDOW);
        client_handles.push(cluster.submit(sat_vm(&src, "Client", "drive", windows)));
    }
    let start = Instant::now();
    let outcome = cluster.run();
    let wall = start.elapsed();
    let per_client_sum =
        windows as i64 * (0..SAT_SCALING_WINDOW as i64).map(|i| i + 1).sum::<i64>();
    for handle in &client_handles {
        let got = outcome
            .unit(handle)
            .vm
            .thread_result(ijvm_core::ids::ThreadId(0))
            .map(|v| v.as_int() as i64)
            .expect("scaling client finished");
        assert_eq!(got, per_client_sum, "scaling client checksum");
    }
    ScalingRow {
        units,
        servers,
        messages: clients as u64 * windows as u64 * SAT_SCALING_WINDOW as u64,
        wall,
    }
}

/// The unit-count scaling sweep over [`SAT_SCALING_COUNTS`]: the same
/// per-shard pressure at every count, measuring cross-unit wall
/// ns/call as the hub's shard, ring and wake-word population grows.
/// Each row keeps the faster of two runs — the small rows finish in
/// ~10 ms, where a single descheduling event would otherwise dominate
/// the flat ratio.
pub fn measure_saturation_scaling() -> SaturationScaling {
    SaturationScaling {
        rows: SAT_SCALING_COUNTS
            .iter()
            .map(|&units| {
                let a = measure_scaling_row(units);
                let b = measure_scaling_row(units);
                if a.wall <= b.wall {
                    a
                } else {
                    b
                }
            })
            .collect(),
    }
}

/// Pretty-prints the scaling sweep.
pub fn print_saturation_scaling(scaling: &SaturationScaling) {
    println!("\n== Hub scaling — cross-unit ns/call as the topology grows ==");
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>12}",
        "units", "shards", "messages", "wall ms", "ns/call"
    );
    for row in &scaling.rows {
        println!(
            "{:<8} {:>8} {:>10} {:>12.1} {:>12.0}",
            row.units,
            row.servers,
            row.messages,
            row.wall.as_secs_f64() * 1e3,
            row.ns_per_msg(),
        );
    }
    println!(
        "flat ratio {:.2}x (gated ceiling {SAT_SCALING_MAX_RATIO:.2}x)",
        scaling.flat_ratio()
    );
}

/// Pretty-prints the report.
pub fn print_saturation(report: &SaturationReport) {
    println!(
        "\n== Hub saturation — {} units, {} posts through quota-bounded mailboxes ==",
        report.units, report.messages
    );
    println!(
        "{:<28} {:>12}\n{:<28} {:>12}\n{:<28} {:>12}\n{:<28} {:>12}",
        "p50 round-trip",
        format!("{} ticks", report.p50_ticks),
        "p99 round-trip",
        format!(
            "{} ticks (gated ceiling {})",
            report.p99_ticks, SAT_P99_MAX_TICKS
        ),
        "quota parks",
        report.quota_parks,
        "throughput",
        format!("{:.0} ns/msg (informative)", report.ns_per_msg()),
    );
}

/// Serializes the report (and, when measured, the unit-count scaling
/// sweep) as the `"saturation"` section of `BENCH_engine.json`. Keys
/// carry a `sat_` prefix so the gate's first-occurrence scanner can
/// never collide with another section; the per-row keys inside
/// `sat_scaling` carry a `sweep_` prefix for the same reason.
pub fn saturation_to_json(
    report: &SaturationReport,
    scaling: Option<&SaturationScaling>,
) -> String {
    let mut out = String::from("  \"saturation\": {\n");
    out.push_str(&format!("    \"sat_units\": {},\n", report.units));
    out.push_str(&format!("    \"sat_messages\": {},\n", report.messages));
    out.push_str(&format!("    \"sat_p50_ticks\": {},\n", report.p50_ticks));
    out.push_str(&format!("    \"sat_p99_ticks\": {},\n", report.p99_ticks));
    out.push_str(&format!(
        "    \"sat_p99_max_ticks\": {SAT_P99_MAX_TICKS},\n"
    ));
    out.push_str(&format!(
        "    \"sat_quota_parks\": {},\n",
        report.quota_parks
    ));
    out.push_str(&format!(
        "    \"sat_wall_ns\": {},\n",
        report.wall.as_nanos()
    ));
    out.push_str(&format!(
        "    \"sat_ns_per_msg\": {:.1}",
        report.ns_per_msg()
    ));
    if let Some(scaling) = scaling {
        out.push_str(",\n    \"sat_scaling\": [\n");
        for (i, row) in scaling.rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"sweep_units\": {}, \"sweep_servers\": {}, \
                 \"sweep_messages\": {}, \"sweep_wall_ns\": {}, \
                 \"sweep_ns_per_msg\": {:.1} }}{}\n",
                row.units,
                row.servers,
                row.messages,
                row.wall.as_nanos(),
                row.ns_per_msg(),
                if i + 1 < scaling.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("    ],\n");
        out.push_str(&format!(
            "    \"sat_scaling_ratio\": {:.3},\n",
            scaling.flat_ratio()
        ));
        out.push_str(&format!(
            "    \"sat_scaling_max_ratio\": {SAT_SCALING_MAX_RATIO:.2}\n"
        ));
    } else {
        out.push('\n');
    }
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsized_saturation_reports_latency() {
        let report = measure_saturation(6, 2, 3);
        assert_eq!(report.units, 8);
        assert_eq!(report.messages, 6 * 3 * SAT_WINDOW as u64);
        assert!(report.p50_ticks > 0, "histogram recorded round trips");
        assert!(report.p99_ticks >= report.p50_ticks);
        let json = saturation_to_json(&report, None);
        assert!(json.contains("\"sat_p99_ticks\""));
        assert!(json.contains("\"sat_p99_max_ticks\""));
        assert!(!json.contains("\"sat_scaling\""));
    }

    #[test]
    fn scaling_row_checksums_and_serializes() {
        // One downsized row (the sweep's smallest shape) keeps the test
        // fast while exercising the checksum and the JSON emission.
        let row = measure_scaling_row(8);
        assert_eq!(row.units, 8);
        assert_eq!(row.servers, 1);
        assert_eq!(
            row.messages,
            7 * SAT_SCALING_WINDOWS as u64 * SAT_SCALING_WINDOW as u64
        );
        assert!(row.ns_per_msg() > 0.0);
        let scaling = SaturationScaling {
            rows: vec![row.clone(), row],
        };
        assert_eq!(scaling.flat_ratio(), 1.0);
        let report = measure_saturation(6, 2, 3);
        let json = saturation_to_json(&report, Some(&scaling));
        assert!(json.contains("\"sat_scaling\""));
        assert!(json.contains("\"sweep_ns_per_msg\""));
        assert!(json.contains("\"sat_scaling_ratio\": 1.000"));
        assert!(json.contains("\"sat_scaling_max_ratio\""));
    }
}
