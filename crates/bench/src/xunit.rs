//! The cross-unit Table 1 row: cost of a cluster service call
//! (`ijvm_core::port`) relative to an intra-VM cross-isolate direct call
//! (the I-JVM mechanism the paper measures), both on one worker.
//!
//! The paper's point is that I-JVM's direct calls beat copying models by
//! orders of magnitude. The cluster's cross-unit calls *are* a copying
//! model — serialize → mailbox → pump dispatch → serialize the reply —
//! so they can never match a direct call; the contract enforced here is
//! that the whole machinery (wire codec, hub routing, park/unpark,
//! pump dispatch, sender-pays accounting) stays within a small constant
//! factor of the direct call instead of drifting into RMI territory:
//! `cross_unit ≤ MAX_CROSS_UNIT_RATIO × inter-isolate` is gated by
//! `bench_gate` against the committed `BENCH_engine.json`.

use ijvm_comm::models::{measure, Model};

/// The gated ceiling: a cross-unit call may cost at most this many
/// intra-VM cross-isolate calls (single worker, same box, same run).
///
/// Raised from 10.0 when the hub was sharded for 1000+ units: the
/// sharded path pays a fixed extra ~150–250 ns per call (registry shard
/// lock + table read guard + per-ring mutex where the global-mutex hub
/// paid one lock) in exchange for per-message cost that stays flat as
/// the topology grows — which is gated separately and much more tightly
/// by `SAT_SCALING_MAX_RATIO`. Measured 11.4–11.5× on the reference
/// runner; the margin to 13 covers the intra-VM denominator's jitter
/// (±10% on a 1-cpu host moves the ratio by a full point).
pub const MAX_CROSS_UNIT_RATIO: f64 = 13.0;

/// One measurement of the cross-unit/intra-VM cost ratio.
#[derive(Debug, Clone)]
pub struct CrossUnitReport {
    /// Calls per batch.
    pub calls: u32,
    /// Best-of-runs ns per intra-VM cross-isolate call (Table 1's
    /// "I-JVM" row).
    pub intra_vm_ns: f64,
    /// Best-of-runs ns per cross-unit cluster call.
    pub cross_unit_ns: f64,
}

impl CrossUnitReport {
    /// `cross_unit_ns / intra_vm_ns` — the gated ratio.
    pub fn ratio(&self) -> f64 {
        self.cross_unit_ns / self.intra_vm_ns.max(f64::MIN_POSITIVE)
    }
}

/// Measures both sides, alternating `runs` rounds and keeping the
/// fastest of each (minimum is robust against scheduler noise).
pub fn measure_cross_unit_ratio(calls: u32, runs: u32) -> CrossUnitReport {
    let mut intra = f64::MAX;
    let mut cross = f64::MAX;
    for _ in 0..runs.max(1) {
        intra = intra.min(measure(Model::IJvm, calls).ns_per_call());
        cross = cross.min(measure(Model::CrossUnit, calls).ns_per_call());
    }
    CrossUnitReport {
        calls,
        intra_vm_ns: intra,
        cross_unit_ns: cross,
    }
}

/// Pretty-prints the report.
pub fn print_cross_unit(report: &CrossUnitReport) {
    println!(
        "\n== Cross-unit service call vs intra-VM cross-isolate call ({} calls) ==",
        report.calls
    );
    println!(
        "{:<28} {:>12}\n{:<28} {:>12}\n{:<28} {:>11.2}x (gated ceiling {:.1}x)",
        "intra-VM cross-isolate",
        format!("{:.0} ns/call", report.intra_vm_ns),
        "cross-unit (cluster)",
        format!("{:.0} ns/call", report.cross_unit_ns),
        "ratio",
        report.ratio(),
        MAX_CROSS_UNIT_RATIO,
    );
}

/// Serializes the report as the `"cross_unit"` section of
/// `BENCH_engine.json` (hand-rolled, like the rest — no serde offline).
pub fn cross_unit_to_json(report: &CrossUnitReport) -> String {
    let mut out = String::from("  \"cross_unit\": {\n");
    out.push_str(&format!("    \"calls\": {},\n", report.calls));
    out.push_str(&format!(
        "    \"intra_vm_ns_per_call\": {:.1},\n",
        report.intra_vm_ns
    ));
    out.push_str(&format!(
        "    \"cross_unit_ns_per_call\": {:.1},\n",
        report.cross_unit_ns
    ));
    out.push_str(&format!(
        "    \"cross_unit_ratio\": {:.4},\n",
        report.ratio()
    ));
    out.push_str(&format!(
        "    \"cross_unit_max_ratio\": {MAX_CROSS_UNIT_RATIO}\n"
    ));
    out.push_str("  }");
    out
}
