//! Checkpoint/restore cost model: snapshot size, capture and restore
//! latency, and the elasticity payoff — how much faster a warmed unit
//! comes up from an image than from a cold boot that re-runs class
//! loading and `<clinit>`, and how that advantage amortizes across an
//! N-way snapshot fork (`Cluster::submit_image_n`).
//!
//! The gated contract is `restore_speedup`: restoring a warmed image
//! must beat the cold boot it replaces by at least
//! [`RESTORE_MIN_SPEEDUP`] (checked by `bench_gate` against the
//! committed `BENCH_engine.json`). Restore replays class *definitions*
//! from the embedded bytes but skips verification-order re-discovery,
//! `<clinit>` execution and warmup entirely — if it ever stopped
//! beating the cold path, snapshot-fork scale-out would be pointless.

use ijvm_core::checkpoint::{restore, UnitImage};
use ijvm_core::prelude::*;
use std::time::Instant;

/// The gated floor: restoring a warmed image must be at least this many
/// times faster than a cold boot (boot + class load + `<clinit>` +
/// warmup) of the same unit. Measured 15–30× on the reference runner
/// (the warmup loop dominates the cold side; the restore side is one
/// validated pass over a ~16 KB image), so 3× leaves a wide margin for
/// slow runners while still failing if restore ever re-ran init work.
pub const RESTORE_MIN_SPEEDUP: f64 = 3.0;

/// The warmed template: an expensive, observable `<clinit>` plus an
/// exported service — the unit shape snapshot-fork exists for.
const WARM_SRC: &str = r#"
    class Table {
        static int sum = fill();
        static int fill() {
            int s = 0;
            for (int i = 0; i < 120000; i++) s = s + i % 97;
            return s;
        }
    }
    class Lookup {
        int handle(int x) { return x + Table.sum; }
    }
    class Boot {
        static int start(int n) {
            Service.export("lookup", new Lookup());
            return Table.sum;
        }
    }
"#;

/// One checkpoint/restore measurement set (best-of-runs latencies).
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Size of the warmed unit's image in bytes.
    pub image_bytes: usize,
    /// Cold path: boot + add classes + load + `<clinit>` + warmup, ns.
    pub cold_boot_ns: f64,
    /// Capture latency of the warmed unit, ns.
    pub checkpoint_ns: f64,
    /// Restore latency from the image (validate + replay + install), ns.
    pub restore_ns: f64,
    /// Width of the measured snapshot fork.
    pub forks: u32,
    /// Per-clone cost of `Cluster::submit_image_n` across `forks`, ns.
    pub fork_per_unit_ns: f64,
}

impl CheckpointReport {
    /// `cold_boot_ns / restore_ns` — the gated elasticity payoff.
    pub fn restore_speedup(&self) -> f64 {
        self.cold_boot_ns / self.restore_ns.max(f64::MIN_POSITIVE)
    }

    /// `cold_boot_ns / fork_per_unit_ns` — the payoff per clone when
    /// one image fans out N ways.
    pub fn fork_amortization(&self) -> f64 {
        self.cold_boot_ns / self.fork_per_unit_ns.max(f64::MIN_POSITIVE)
    }
}

/// Cold-boots the warmed template to idle from pre-compiled classes
/// (compilation is deliberately outside the measurement: restore
/// replaces boot and init, not the compiler).
fn cold_boot(classes: &[(String, Vec<u8>)]) -> Vm {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in classes {
        vm.add_class_bytes(loader, name, bytes.clone());
    }
    let class = vm.load_class(loader, "Boot").unwrap();
    let index = vm.class(class).find_method("start", "(I)I").unwrap();
    vm.spawn_thread("boot", MethodRef { class, index }, vec![Value::Int(1)], iso)
        .unwrap();
    assert_eq!(vm.run(None), RunOutcome::Idle, "warmup must finish");
    vm
}

/// Measures the full checkpoint cost model, keeping the fastest of
/// `runs` rounds for every latency (minimum is robust against noise).
pub fn measure_checkpoint(forks: u32, runs: u32) -> CheckpointReport {
    let classes =
        ijvm_minijava::compile_to_bytes(WARM_SRC, &ijvm_minijava::CompileEnv::new()).unwrap();

    let mut cold_ns = f64::MAX;
    let mut ckpt_ns = f64::MAX;
    let mut restore_ns = f64::MAX;
    let mut fork_unit_ns = f64::MAX;
    let mut image_bytes = 0usize;

    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let vm = cold_boot(&classes);
        cold_ns = cold_ns.min(start.elapsed().as_nanos() as f64);

        let start = Instant::now();
        let image = vm.checkpoint().expect("warmed unit is quiescent");
        ckpt_ns = ckpt_ns.min(start.elapsed().as_nanos() as f64);
        image_bytes = image.len();

        let start = Instant::now();
        let restored = restore(&image, VmOptions::isolated(), ijvm_jsl::install_natives)
            .expect("image restores");
        restore_ns = restore_ns.min(start.elapsed().as_nanos() as f64);
        drop(restored);

        let mut cluster = Cluster::builder()
            .scheduler(SchedulerKind::Parallel(1))
            .vm_options(VmOptions::isolated())
            .build();
        let start = Instant::now();
        cluster
            .submit_image_n(&image, forks as usize, ijvm_jsl::install_natives)
            .expect("image forks");
        fork_unit_ns =
            fork_unit_ns.min(start.elapsed().as_nanos() as f64 / f64::from(forks.max(1)));
    }

    CheckpointReport {
        image_bytes,
        cold_boot_ns: cold_ns,
        checkpoint_ns: ckpt_ns,
        restore_ns,
        forks,
        fork_per_unit_ns: fork_unit_ns,
    }
}

/// Pretty-prints the report.
pub fn print_checkpoint(report: &CheckpointReport) {
    println!("\n== Checkpoint/restore vs cold boot (warmed service unit) ==");
    println!(
        "{:<28} {:>14}\n{:<28} {:>14}\n{:<28} {:>14}\n{:<28} {:>14}\n{:<28} {:>13.2}x (gated floor {:.1}x)\n{:<28} {:>13.2}x ({}-way fork)",
        "image size",
        format!("{} bytes", report.image_bytes),
        "cold boot + <clinit>",
        format!("{:.0} ns", report.cold_boot_ns),
        "checkpoint (capture)",
        format!("{:.0} ns", report.checkpoint_ns),
        "restore (resume-ready)",
        format!("{:.0} ns", report.restore_ns),
        "restore speedup",
        report.restore_speedup(),
        RESTORE_MIN_SPEEDUP,
        "fork amortization",
        report.fork_amortization(),
        report.forks,
    );
}

/// Serializes the report as the `"checkpoint"` section of
/// `BENCH_engine.json` (hand-rolled, like the rest — no serde offline).
pub fn checkpoint_to_json(report: &CheckpointReport) -> String {
    let mut out = String::from("  \"checkpoint\": {\n");
    out.push_str(&format!(
        "    \"ckpt_image_bytes\": {},\n",
        report.image_bytes
    ));
    out.push_str(&format!(
        "    \"ckpt_cold_boot_ns\": {:.0},\n",
        report.cold_boot_ns
    ));
    out.push_str(&format!(
        "    \"ckpt_capture_ns\": {:.0},\n",
        report.checkpoint_ns
    ));
    out.push_str(&format!(
        "    \"ckpt_restore_ns\": {:.0},\n",
        report.restore_ns
    ));
    out.push_str(&format!("    \"ckpt_forks\": {},\n", report.forks));
    out.push_str(&format!(
        "    \"ckpt_fork_per_unit_ns\": {:.0},\n",
        report.fork_per_unit_ns
    ));
    out.push_str(&format!(
        "    \"ckpt_fork_amortization\": {:.4},\n",
        report.fork_amortization()
    ));
    out.push_str(&format!(
        "    \"restore_speedup\": {:.4},\n",
        report.restore_speedup()
    ));
    out.push_str(&format!(
        "    \"restore_min_speedup\": {RESTORE_MIN_SPEEDUP}\n"
    ));
    out.push_str("  }");
    out
}

/// An [`UnitImage`] re-export so the drivers don't need `ijvm_core::
/// checkpoint` in scope for type annotations.
pub type Image = UnitImage;
