//! # ijvm-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's §4:
//!
//! | artifact | binary | criterion bench |
//! |---|---|---|
//! | Table 1 (inter-bundle call cost) | `table1` | `table1_calls` |
//! | Figure 1 (micro-benchmark overhead) | `fig1` | `fig1_micro` |
//! | Figure 2 (SPEC analogue overhead) | `fig2` | `fig2_spec` |
//! | Figure 3 (memory on Felix/Equinox profiles) | `fig3` | — |
//! | §4.3 robustness matrix | `robustness` | — |
//! | §4.4 accounting limits | `accounting_limits` | — |
//!
//! The [`micro`] module implements the Figure 1 micro-benchmarks: each
//! runs identical bytecode under both VM configurations, so the reported
//! overhead isolates exactly the cost the paper attributes to I-JVM.

// A timing harness exists to read the wall clock; the workspace-wide
// clippy ban (clippy.toml, mirroring lint rule R2) is lifted for the
// whole crate.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

pub mod checkpoint;
pub mod engine;
pub mod micro;
pub mod parallel;
pub mod saturation;
pub mod trace;
pub mod xunit;

use ijvm_core::vm::IsolationMode;
use std::time::Duration;

/// The bench-regression gate's tolerance: a fresh speedup ratio passes
/// when it is at least `baseline * (1 - GATE_TOLERANCE)`, i.e. −10%.
///
/// This is the **single** source of truth — the `bench_gate` binary
/// defaults to it and the CI workflow passes no override, so the
/// committed docs (ROADMAP.md, ARCHITECTURE.md) and the enforced gate
/// can never drift again. Gating on the speedup *ratio* (not wall time)
/// already cancels most runner-speed variance, because all engines run
/// back to back on the same box.
pub const GATE_TOLERANCE: f64 = 0.10;

/// A baseline/I-JVM measurement pair.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Wall time in `Shared` (LadyVM-baseline) mode.
    pub shared: Duration,
    /// Wall time in `Isolated` (I-JVM) mode.
    pub isolated: Duration,
    /// Guest instructions in `Shared` mode.
    pub shared_insns: u64,
    /// Guest instructions in `Isolated` mode.
    pub isolated_insns: u64,
}

impl OverheadRow {
    /// Wall-clock overhead of I-JVM relative to the baseline, in percent.
    pub fn overhead_pct(&self) -> f64 {
        let base = self.shared.as_secs_f64();
        if base == 0.0 {
            return 0.0;
        }
        (self.isolated.as_secs_f64() / base - 1.0) * 100.0
    }

    /// Relative performance (baseline = 1.0), the y-axis of Figures 1–2.
    pub fn relative(&self) -> f64 {
        let base = self.shared.as_secs_f64();
        if base == 0.0 {
            return 1.0;
        }
        self.isolated.as_secs_f64() / base
    }
}

/// Pretty-prints a list of overhead rows as an aligned table.
pub fn print_overhead_table(title: &str, rows: &[OverheadRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>14} {:>14} {:>10} {:>12}",
        "benchmark", "baseline", "I-JVM", "overhead", "rel. perf"
    );
    for r in rows {
        println!(
            "{:<22} {:>14} {:>14} {:>9.1}% {:>12.3}",
            r.name,
            format!("{:.3?}", r.shared),
            format!("{:.3?}", r.isolated),
            r.overhead_pct(),
            r.relative(),
        );
    }
}

/// Helper: the `VmOptions` for a mode.
pub fn options_for(mode: IsolationMode) -> ijvm_core::vm::VmOptions {
    match mode {
        IsolationMode::Shared => ijvm_core::vm::VmOptions::shared(),
        IsolationMode::Isolated => ijvm_core::vm::VmOptions::isolated(),
    }
}
