//! Figure 1 micro-benchmarks: intra-isolate calls, inter-isolate calls,
//! object allocation, and static-variable access — each interpreted under
//! both VM configurations (paper §4.2 runs each operation a million
//! times; the iteration count here is a parameter).

use crate::OverheadRow;
use ijvm_core::ids::{ClassId, IsolateId};
use ijvm_core::value::Value;
use ijvm_core::vm::{IsolationMode, Vm};
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use std::time::{Duration, Instant};

/// Which micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Micro {
    /// A method call within one bundle (I-JVM adds the isolate test).
    IntraIsolateCall,
    /// A method call across bundles (adds the isolate-reference update).
    InterIsolateCall,
    /// `new Object()`-style allocation (adds resource accounting and the
    /// memory-limit test).
    Allocation,
    /// Static variable access (adds the task-class-mirror indirection and
    /// initialization check — the paper's worst case without the JIT's
    /// hoisting, which an interpreter never has).
    StaticAccess,
}

impl Micro {
    /// All four, in Figure 1 order.
    pub const ALL: [Micro; 4] = [
        Micro::IntraIsolateCall,
        Micro::InterIsolateCall,
        Micro::Allocation,
        Micro::StaticAccess,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Micro::IntraIsolateCall => "intra-isolate call",
            Micro::InterIsolateCall => "inter-isolate call",
            Micro::Allocation => "object allocation",
            Micro::StaticAccess => "static access",
        }
    }
}

const INTRA_SRC: &str = r#"
    class Worker {
        static int step(int x) { return x + 1; }
        static int spin(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                acc += step(i);
                acc += step(i);
                acc += step(i);
                acc += step(i);
            }
            return acc;
        }
    }
"#;

const CALLEE_SRC: &str = r#"
    class Remote {
        int step(int x) { return x + 1; }
    }
    class RemoteFactory {
        static Remote make() { return new Remote(); }
    }
"#;

const CALLER_SRC: &str = r#"
    class Driver {
        static int spin(Remote r, int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                acc += r.step(i);
                acc += r.step(i);
                acc += r.step(i);
                acc += r.step(i);
            }
            return acc;
        }
    }
"#;

const ALLOC_SRC: &str = r#"
    class Cell { }
    class AllocBench {
        static int spin(int n) {
            int live = 0;
            for (int i = 0; i < n; i++) {
                Cell c = new Cell();
                if (c != null) live++;
            }
            return live;
        }
    }
"#;

const STATIC_SRC: &str = r#"
    class Counter {
        static int value;
        static int spin(int n) {
            // Unrolled x4 to raise the static-access density per loop
            // iteration (the measured op is the access, not the loop).
            for (int i = 0; i < n; i++) {
                value = value + 1;
                value = value + 1;
                value = value + 1;
                value = value + 1;
            }
            return value;
        }
    }
"#;

struct Prepared {
    vm: Vm,
    entry: ClassId,
    iso: IsolateId,
    args: Vec<Value>,
}

#[cfg(test)]
fn prepare(micro: Micro, mode: IsolationMode, iterations: i32) -> Prepared {
    prepare_with(micro, crate::options_for(mode), iterations)
}

fn prepare_with(micro: Micro, options: ijvm_core::vm::VmOptions, iterations: i32) -> Prepared {
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("bench");
    let loader = vm.loader_of(iso).unwrap();
    match micro {
        Micro::IntraIsolateCall | Micro::Allocation | Micro::StaticAccess => {
            let src = match micro {
                Micro::IntraIsolateCall => INTRA_SRC,
                Micro::Allocation => ALLOC_SRC,
                _ => STATIC_SRC,
            };
            for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
                vm.add_class_bytes(loader, &name, bytes);
            }
            let entry_name = match micro {
                Micro::IntraIsolateCall => "Worker",
                Micro::Allocation => "AllocBench",
                _ => "Counter",
            };
            let entry = vm.load_class(loader, entry_name).unwrap();
            Prepared {
                vm,
                entry,
                iso,
                args: vec![Value::Int(iterations)],
            }
        }
        Micro::InterIsolateCall => {
            // Callee bundle.
            let callee_iso = vm.create_isolate("remote-bundle");
            let callee_loader = vm.loader_of(callee_iso).unwrap();
            let callee_classes = compile_to_bytes(CALLEE_SRC, &CompileEnv::new()).unwrap();
            for (name, bytes) in &callee_classes {
                vm.add_class_bytes(callee_loader, name, bytes.clone());
            }
            vm.add_loader_delegate(loader, callee_loader);
            // Caller bundle.
            let mut cenv = CompileEnv::new();
            for (_, bytes) in &callee_classes {
                let cf = ijvm_classfile::reader::read_class(bytes).unwrap();
                cenv.import_class_file(&cf).unwrap();
            }
            for (name, bytes) in compile_to_bytes(CALLER_SRC, &cenv).unwrap() {
                vm.add_class_bytes(loader, &name, bytes);
            }
            let factory = vm.load_class(callee_loader, "RemoteFactory").unwrap();
            let remote = vm
                .call_static_as(factory, "make", "()LRemote;", vec![], callee_iso)
                .unwrap()
                .unwrap();
            let Value::Ref(remote_ref) = remote else {
                panic!("factory returned {remote}")
            };
            vm.pin(remote_ref);
            let entry = vm.load_class(loader, "Driver").unwrap();
            Prepared {
                vm,
                entry,
                iso,
                args: vec![Value::Ref(remote_ref), Value::Int(iterations)],
            }
        }
    }
}

fn descriptor(micro: Micro) -> &'static str {
    match micro {
        Micro::InterIsolateCall => "(LRemote;I)I",
        _ => "(I)I",
    }
}

/// Runs one micro-benchmark once under `mode`, returning the wall time
/// and guest instruction count of the measured loop (after a warm-up run
/// that pays class loading and lazy resolution).
pub fn run_once(micro: Micro, mode: IsolationMode, iterations: i32) -> (Duration, u64) {
    run_once_with(micro, crate::options_for(mode), iterations)
}

/// Like [`run_once`] with explicit `VmOptions` (used by the ablation
/// harness to separate isolation cost from accounting cost).
pub fn run_once_with(
    micro: Micro,
    options: ijvm_core::vm::VmOptions,
    iterations: i32,
) -> (Duration, u64) {
    let mode = options.isolation;
    let mut p = prepare_with(micro, options, iterations);
    let _ = mode;
    // Warm-up.
    p.vm.call_static_as(
        p.entry,
        "spin",
        descriptor(micro),
        warmup_args(&p.args),
        p.iso,
    )
    .expect("warmup run");
    let insns_before = p.vm.vclock();
    let start = Instant::now();
    p.vm.call_static_as(p.entry, "spin", descriptor(micro), p.args.clone(), p.iso)
        .expect("measured run");
    (start.elapsed(), p.vm.vclock() - insns_before)
}

fn warmup_args(args: &[Value]) -> Vec<Value> {
    let mut out = args.to_vec();
    if let Some(Value::Int(n)) = out.last().copied() {
        let idx = out.len() - 1;
        out[idx] = Value::Int((n / 10).max(8));
    }
    out
}

/// Measures one micro-benchmark in both modes, alternating several runs
/// and keeping the fastest of each (minimum is robust against scheduler
/// and frequency noise — what matters is the best-case instruction path).
pub fn compare(micro: Micro, iterations: i32) -> OverheadRow {
    compare_runs(micro, iterations, 5)
}

/// Like [`compare`] with an explicit run count. Each round measures the
/// two modes back to back and contributes one overhead ratio; the median
/// ratio is reported (paired ratios cancel slow machine phases that hit
/// both runs of a round equally).
pub fn compare_runs(micro: Micro, iterations: i32, runs: u32) -> OverheadRow {
    let mut ratios: Vec<f64> = Vec::new();
    let mut best_shared = Duration::MAX;
    let mut shared_insns = 0;
    let mut isolated_insns = 0;
    for _ in 0..runs.max(1) {
        let (s, si) = run_once(micro, IsolationMode::Shared, iterations);
        let (i, ii) = run_once(micro, IsolationMode::Isolated, iterations);
        ratios.push(i.as_secs_f64() / s.as_secs_f64().max(f64::MIN_POSITIVE));
        best_shared = best_shared.min(s);
        shared_insns = si;
        isolated_insns = ii;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let median = ratios[ratios.len() / 2];
    let isolated = Duration::from_secs_f64(best_shared.as_secs_f64() * median);
    OverheadRow {
        name: micro.name(),
        shared: best_shared,
        isolated,
        shared_insns,
        isolated_insns,
    }
}

/// The complete Figure 1 dataset.
pub fn figure1(iterations: i32) -> Vec<OverheadRow> {
    Micro::ALL.iter().map(|&m| compare(m, iterations)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_micros_run_in_both_modes() {
        for m in Micro::ALL {
            let row = compare(m, 20_000);
            // The same bytecode runs in both modes, so instruction counts
            // differ only by I-JVM's checks — never by more than 2x.
            assert!(row.isolated_insns >= row.shared_insns, "{}", m.name());
            assert!(
                row.isolated_insns < row.shared_insns * 2,
                "{}: isolated {} vs shared {}",
                m.name(),
                row.isolated_insns,
                row.shared_insns
            );
        }
    }

    #[test]
    fn inter_isolate_calls_migrate_only_in_isolated_mode() {
        let mut p = prepare(Micro::InterIsolateCall, IsolationMode::Isolated, 100);
        p.vm.call_static_as(p.entry, "spin", "(LRemote;I)I", p.args.clone(), p.iso)
            .unwrap();
        assert!(p.vm.migrations() >= 200);

        let mut p = prepare(Micro::InterIsolateCall, IsolationMode::Shared, 100);
        p.vm.call_static_as(p.entry, "spin", "(LRemote;I)I", p.args.clone(), p.iso)
            .unwrap();
        assert_eq!(p.vm.migrations(), 0);
    }
}
