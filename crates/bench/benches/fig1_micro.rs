//! Criterion bench for **Figure 1**: each micro-benchmark under both VM
//! configurations; the ratio between the paired entries is the figure's
//! y-axis. A second group compares the raw, quickened and threaded
//! execution engines on identical bytecode (the dispatch ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use ijvm_bench::engine::{run_arith_field, run_deep_call};
use ijvm_bench::micro::{run_once, run_once_with, Micro};
use ijvm_core::engine::EngineKind;
use ijvm_core::vm::{IsolationMode, VmOptions};

fn bench_micros(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_micro");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let iterations = 50_000;
    for micro in Micro::ALL {
        for (label, mode) in [
            ("baseline", IsolationMode::Shared),
            ("ijvm", IsolationMode::Isolated),
        ] {
            group.bench_function(format!("{}/{label}", micro.name()), |b| {
                b.iter(|| std::hint::black_box(run_once(micro, mode, iterations)))
            });
        }
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_engine");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let iterations = 50_000;
    for (label, engine) in [
        ("raw", EngineKind::Raw),
        ("quickened", EngineKind::Quickened),
        ("threaded", EngineKind::Threaded),
    ] {
        group.bench_function(format!("arith+field loop/{label}"), |b| {
            b.iter(|| std::hint::black_box(run_arith_field(engine, iterations)))
        });
        // The call micros lead the engine group: the call fast path
        // (frame pool + fused invokes) is what the A/B comparison is
        // judged on, so they need first-class visibility here.
        for micro in [
            Micro::IntraIsolateCall,
            Micro::InterIsolateCall,
            Micro::Allocation,
            Micro::StaticAccess,
        ] {
            group.bench_function(format!("{}/{label}", micro.name()), |b| {
                b.iter(|| {
                    std::hint::black_box(run_once_with(
                        micro,
                        VmOptions::isolated().with_engine(engine),
                        iterations,
                    ))
                })
            });
        }
        group.bench_function(format!("deep call chain/{label}"), |b| {
            b.iter(|| std::hint::black_box(run_deep_call(engine, iterations)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_micros, bench_engines);
criterion_main!(benches);
