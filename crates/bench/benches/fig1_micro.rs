//! Criterion bench for **Figure 1**: each micro-benchmark under both VM
//! configurations; the ratio between the paired entries is the figure's
//! y-axis.

use criterion::{criterion_group, criterion_main, Criterion};
use ijvm_bench::micro::{run_once, Micro};
use ijvm_core::vm::IsolationMode;

fn bench_micros(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_micro");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let iterations = 50_000;
    for micro in Micro::ALL {
        for (label, mode) in
            [("baseline", IsolationMode::Shared), ("ijvm", IsolationMode::Isolated)]
        {
            group.bench_function(format!("{}/{label}", micro.name()), |b| {
                b.iter(|| std::hint::black_box(run_once(micro, mode, iterations)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_micros);
criterion_main!(benches);
