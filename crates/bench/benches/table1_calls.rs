//! Criterion bench for **Table 1**: per-model cost of a batch of
//! inter-bundle calls.

use criterion::{criterion_group, criterion_main, Criterion};
use ijvm_comm::models::{measure, Model};

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_inter_bundle_calls");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for model in Model::ALL {
        group.bench_function(model.name(), |b| {
            b.iter(|| std::hint::black_box(measure(model, 200).checksum))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
