//! Criterion bench for **Figure 2**: the SPEC JVM98 analogues under both
//! VM configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use ijvm_core::vm::IsolationMode;
use ijvm_workloads::{run_workload, spec};

fn bench_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_spec");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in spec::all() {
        // Bench at reduced scale so a full `cargo bench` stays minutes,
        // not hours (the fig2 binary runs the full-scale versions).
        let mut small = w;
        small.scale = 1;
        for (label, mode) in [
            ("baseline", IsolationMode::Shared),
            ("ijvm", IsolationMode::Isolated),
        ] {
            group.bench_function(format!("{}/{label}", small.name), |b| {
                b.iter(|| std::hint::black_box(run_workload(&small, mode).result))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spec);
criterion_main!(benches);
