//! The §3.2 GC accounting algorithm in detail: first-referencer charging,
//! deterministic order, shared-object single charge, frame charging.

use ijvm_core::heap::ObjBody;
use ijvm_core::prelude::*;
use ijvm_core::vm::Vm;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

fn boot_two() -> (Vm, IsolateId, IsolateId) {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let a = vm.create_isolate("iso-a");
    let b = vm.create_isolate("iso-b");
    (vm, a, b)
}

#[test]
fn shared_objects_are_charged_exactly_once() {
    let (mut vm, a, b) = boot_two();
    // One object pinned from host roots (charged to Isolate0 == a here,
    // since host roots charge the first isolate).
    let obj = vm.alloc_ref_array(a, "Ljava/lang/Object;", 1000).unwrap();
    let _pin = vm.pin(obj);
    vm.collect_garbage(None);
    let la = vm.isolate_stats(a).unwrap().live_bytes;
    let lb = vm.isolate_stats(b).unwrap().live_bytes;
    let size = vm.heap().get(obj).size_bytes() as u64;
    assert!(la >= size, "charged to the first isolate: {la} >= {size}");
    // Not double charged.
    assert!(lb < size, "not charged to b too (b has {lb})");
}

#[test]
fn accounting_is_deterministic_across_collections() {
    let (mut vm, a, b) = boot_two();
    // Interleave allocations.
    for i in 0..50 {
        let iso = if i % 2 == 0 { a } else { b };
        let arr = vm
            .alloc_ref_array(iso, "Ljava/lang/Object;", 10 + i)
            .unwrap();
        vm.pin(arr);
    }
    vm.collect_garbage(None);
    let a1 = vm.isolate_stats(a).unwrap().live_bytes;
    let b1 = vm.isolate_stats(b).unwrap().live_bytes;
    vm.collect_garbage(None);
    vm.collect_garbage(None);
    assert_eq!(a1, vm.isolate_stats(a).unwrap().live_bytes);
    assert_eq!(b1, vm.isolate_stats(b).unwrap().live_bytes);
}

#[test]
fn object_owner_field_is_reassigned_by_the_collector() {
    // Paper §3.2 step 4: the charge moves when reachability changes.
    let (mut vm, a, b) = boot_two();
    let obj = vm.alloc_ref_array(a, "Ljava/lang/Object;", 500).unwrap();
    assert_eq!(
        vm.heap().get(obj).owner,
        a,
        "allocation charges the allocator"
    );

    // Make it reachable only from b: store it inside a b-pinned container.
    let container = vm.alloc_ref_array(b, "Ljava/lang/Object;", 1).unwrap();
    if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(container).body {
        data[0] = Value::Ref(obj);
    }
    let _pin = vm.pin(container);
    vm.collect_garbage(None);
    // Host pins charge Isolate0 (= a); the *container* belongs to that
    // root set, so this asserts the charge followed the reference chain
    // and both objects get the same owner.
    let container_owner = vm.heap().get(container).owner;
    assert_eq!(vm.heap().get(obj).owner, container_owner);
}

#[test]
fn stack_frames_charge_their_executing_isolate() {
    let (mut vm, a, _b) = boot_two();
    let loader = vm.loader_of(a).unwrap();
    let src = r#"
        class Holder {
            static int hold(int n) {
                int[] local = new int[20000];
                System.gc();
                return local.length;
            }
        }
    "#;
    for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, "Holder").unwrap();
    let out = vm
        .call_static_as(class, "hold", "(I)I", vec![Value::Int(0)], a)
        .unwrap();
    assert_eq!(out, Some(Value::Int(20000)));
    // During the in-call System.gc(), the frame's local array was live and
    // charged to isolate a (the executing frame's isolate).
    let live_at_gc = vm.isolate_stats(a).unwrap().live_bytes;
    assert!(
        live_at_gc >= 80_000,
        "frame-local array charged to a: {live_at_gc}"
    );
}

#[test]
fn allocation_counters_accumulate_per_isolate() {
    let (mut vm, a, b) = boot_two();
    for _ in 0..10 {
        vm.alloc_ref_array(a, "Ljava/lang/Object;", 4).unwrap();
    }
    for _ in 0..3 {
        vm.alloc_ref_array(b, "Ljava/lang/Object;", 4).unwrap();
    }
    let sa = vm.isolate_stats(a).unwrap();
    let sb = vm.isolate_stats(b).unwrap();
    assert_eq!(sa.allocated_objects, 10);
    assert_eq!(sb.allocated_objects, 3);
    assert!(sa.allocated_bytes > sb.allocated_bytes);
}

#[test]
fn gc_trigger_attribution_follows_the_requesting_isolate() {
    let (mut vm, a, b) = boot_two();
    vm.collect_garbage(Some(a));
    vm.collect_garbage(Some(a));
    vm.collect_garbage(Some(b));
    assert_eq!(vm.isolate_stats(a).unwrap().gc_triggers, 2);
    assert_eq!(vm.isolate_stats(b).unwrap().gc_triggers, 1);
    assert_eq!(vm.gc_count(), 3);
}
