//! Cross-mode scheduler tests: the same program set must behave
//! identically under the deterministic cluster scheduler (the oracle)
//! and the parallel work-stealing scheduler at any worker count — same
//! per-unit results, errors, console output, virtual clocks and
//! migration counts, and **bit-identical per-isolate exact CPU**, both
//! inside each unit's VM and in the cluster-level aggregate that worker
//! buffers drain into at migration points. Only which OS worker ran
//! which slice may differ.

use ijvm_core::prelude::*;
use ijvm_core::sched::Cluster;
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use proptest::prelude::*;

/// One prepared workload: class sources plus the entry threads to spawn.
struct Program {
    src: &'static str,
    entry: &'static str,
    method: &'static str,
    desc: &'static str,
    /// One entry thread per element, each with this `(I)…` argument.
    thread_args: Vec<i32>,
}

/// Builds a ready-to-schedule VM unit (threads spawned, nothing run).
fn build_unit(program: &Program, quantum: u32) -> (Vm, Vec<ThreadId>) {
    let mut options = VmOptions::isolated();
    options.quantum = quantum;
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(program.src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, program.entry).unwrap();
    let index = vm
        .class(class)
        .find_method(program.method, program.desc)
        .unwrap();
    let mref = MethodRef { class, index };
    let tids = program
        .thread_args
        .iter()
        .map(|&n| {
            vm.spawn_thread("entry", mref, vec![Value::Int(n)], iso)
                .unwrap()
        })
        .collect();
    (vm, tids)
}

/// Everything compared across scheduler modes for one finished unit.
#[derive(Debug, PartialEq)]
struct UnitObserved {
    results: Vec<Result<Option<String>, String>>,
    vclock: u64,
    vm_migrations: u64,
    console: Vec<String>,
    cpu_exact: Vec<u64>,
    cpu_sampled: Vec<u64>,
    allocated_objects: Vec<u64>,
    outcome: RunOutcome,
    /// Cluster-aggregate exact CPU per isolate — must equal `cpu_exact`.
    aggregate_cpu: Vec<u64>,
}

/// Runs `programs` under `kind` and observes every unit.
fn run_set(
    programs: &[Program],
    kind: SchedulerKind,
    quantum: u32,
    slice: u64,
) -> Vec<UnitObserved> {
    let mut cluster = Cluster::builder().scheduler(kind).slice(slice).build();
    let mut tids = Vec::new();
    for p in programs {
        let (vm, unit_tids) = build_unit(p, quantum);
        cluster.submit(vm);
        tids.push(unit_tids);
    }
    let mut outcome = cluster.run();
    assert_eq!(
        outcome.units.len(),
        programs.len(),
        "every unit must finish"
    );
    let accounts = &outcome.accounts;
    let mut observed = Vec::new();
    for (u, unit_outcome) in outcome.units.iter_mut().enumerate() {
        let report = unit_outcome.report;
        let vm = &mut unit_outcome.vm;
        assert_eq!(report.id.index() as usize, u, "units are indexed by UnitId");
        assert!(report.slices > 0, "unit {u} never ran");
        let snaps = vm.metrics().isolates;
        observed.push(UnitObserved {
            results: tids[u]
                .iter()
                .map(|&tid| {
                    vm.thread_outcome(tid)
                        .map(|v| v.map(|v| v.to_string()))
                        .map_err(|e| e.to_string())
                })
                .collect(),
            vclock: vm.vclock(),
            vm_migrations: vm.migrations(),
            console: vm.take_console(),
            cpu_exact: snaps.iter().map(|s| s.stats.cpu_exact).collect(),
            cpu_sampled: snaps.iter().map(|s| s.stats.cpu_sampled).collect(),
            allocated_objects: snaps.iter().map(|s| s.stats.allocated_objects).collect(),
            outcome: report.outcome,
            aggregate_cpu: (0..vm.isolate_count())
                .map(|i| accounts.cpu_exact(report.id, IsolateId(i as u16)))
                .collect(),
        });
    }
    observed
}

fn fixed_program_set() -> Vec<Program> {
    let arith = r#"
        class Arith {
            static int spin(int n) {
                int acc = 7;
                for (int i = 0; i < n; i++) {
                    acc = acc * 31 + i;
                    if (acc > 1000000) acc = acc % 99991;
                }
                return acc;
            }
        }
    "#;
    let alloc_print = r#"
        class AllocPrint {
            static int run(int n) {
                int total = 0;
                for (int i = 0; i < n; i++) {
                    int[] chunk = new int[16];
                    chunk[0] = i;
                    total += chunk[0] % 7;
                    if (i % 50 == 0) println("mark " + i);
                }
                return total;
            }
        }
    "#;
    let interleave = r#"
        class Shared {
            static int hits;
            static int spin(int n) {
                for (int i = 0; i < n; i++) { hits = hits + 1; }
                return hits;
            }
        }
    "#;
    let faulty = r#"
        class Faulty {
            static int boom(int n) { return n / (n - n); }
        }
    "#;
    vec![
        Program {
            src: arith,
            entry: "Arith",
            method: "spin",
            desc: "(I)I",
            thread_args: vec![4_000],
        },
        Program {
            src: alloc_print,
            entry: "AllocPrint",
            method: "run",
            desc: "(I)I",
            thread_args: vec![400],
        },
        // Two green threads over one static: the unit-internal scheduler
        // interleaving must be reproduced wherever the unit runs.
        Program {
            src: interleave,
            entry: "Shared",
            method: "spin",
            desc: "(I)I",
            thread_args: vec![700, 700],
        },
        Program {
            src: faulty,
            entry: "Faulty",
            method: "boom",
            desc: "(I)I",
            thread_args: vec![9],
        },
        Program {
            src: arith,
            entry: "Arith",
            method: "spin",
            desc: "(I)I",
            thread_args: vec![1_500],
        },
    ]
}

/// A whole VM is a `Send` execution unit — the property the scheduler is
/// built on, re-asserted here from outside the crate.
#[test]
fn vm_units_are_send() {
    fn is_send<T: Send>() {}
    is_send::<Vm>();
}

#[test]
fn parallel_matches_deterministic_on_fixed_set() {
    let programs = fixed_program_set();
    // Small quantum + slice: many slice boundaries, so units really do
    // bounce between workers mid-run.
    let oracle = run_set(&programs, SchedulerKind::Deterministic, 300, 600);

    // The aggregate fed through worker buffers must equal the in-VM
    // exact counters (nothing lost or double-charged at boundaries).
    for (u, o) in oracle.iter().enumerate() {
        assert_eq!(
            o.aggregate_cpu, o.cpu_exact,
            "unit {u}: cluster aggregate diverged from in-VM exact CPU"
        );
        assert_eq!(o.outcome, RunOutcome::Idle);
    }
    // The faulty unit's entry thread died with the expected exception.
    assert!(
        oracle[3].results[0]
            .as_ref()
            .unwrap_err()
            .contains("ArithmeticException"),
        "faulty unit: {:?}",
        oracle[3].results
    );

    for workers in [2usize, 4] {
        let parallel = run_set(&programs, SchedulerKind::Parallel(workers), 300, 600);
        assert_eq!(
            oracle, parallel,
            "Parallel({workers}) diverged from the deterministic oracle"
        );
    }
}

/// A unit hosting two isolates with inter-isolate calls: per-isolate
/// attribution inside the unit (thread migration, §3.1/3.2) must be
/// preserved by the cluster, and the aggregate must match per isolate.
#[test]
fn multi_isolate_unit_accounting_is_exact() {
    let callee_src = r#"
        class Svc {
            static int work(int x) {
                int acc = x;
                for (int i = 0; i < 40; i++) { acc = acc * 17 + i; }
                return acc % 65536;
            }
        }
    "#;
    let caller_src = r#"
        class Caller {
            static int drive(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) { acc += Svc.work(i) % 1024; }
                return acc;
            }
        }
    "#;
    let build = |quantum: u32| -> (Vm, ThreadId) {
        let mut options = VmOptions::isolated();
        options.quantum = quantum;
        let mut vm = ijvm_jsl::boot(options);
        let home = vm.create_isolate("home");
        let home_loader = vm.loader_of(home).unwrap();
        let callee = vm.create_isolate("callee");
        let callee_loader = vm.loader_of(callee).unwrap();
        let callee_classes = compile_to_bytes(callee_src, &CompileEnv::new()).unwrap();
        let mut cenv = CompileEnv::new();
        for (name, bytes) in &callee_classes {
            vm.add_class_bytes(callee_loader, name, bytes.clone());
            let cf = ijvm_classfile::reader::read_class(bytes).unwrap();
            cenv.import_class_file(&cf).unwrap();
        }
        vm.add_loader_delegate(home_loader, callee_loader);
        for (name, bytes) in compile_to_bytes(caller_src, &cenv).unwrap() {
            vm.add_class_bytes(home_loader, &name, bytes);
        }
        let class = vm.load_class(home_loader, "Caller").unwrap();
        let index = vm.class(class).find_method("drive", "(I)I").unwrap();
        let mref = MethodRef { class, index };
        let tid = vm
            .spawn_thread("drive", mref, vec![Value::Int(250)], home)
            .unwrap();
        (vm, tid)
    };

    // Plain in-VM oracle: no cluster at all.
    let (mut plain, plain_tid) = build(200);
    assert_eq!(plain.run(None), RunOutcome::Idle);
    let plain_result = plain.thread_outcome(plain_tid).unwrap();
    let plain_cpu: Vec<u64> = plain
        .metrics()
        .isolates
        .iter()
        .map(|s| s.stats.cpu_exact)
        .collect();
    assert!(plain.migrations() > 0, "workload must migrate isolates");

    for kind in [
        SchedulerKind::Deterministic,
        SchedulerKind::Parallel(2),
        SchedulerKind::Parallel(4),
    ] {
        let (vm, tid) = build(200);
        let mut cluster = Cluster::builder().scheduler(kind).slice(350).build();
        let unit = cluster.submit(vm);
        let outcome = cluster.run();
        let vm = &outcome.unit(&unit).vm;
        assert_eq!(vm.thread_outcome(tid).unwrap(), plain_result, "{kind:?}");
        let cpu: Vec<u64> = vm
            .metrics()
            .isolates
            .iter()
            .map(|s| s.stats.cpu_exact)
            .collect();
        assert_eq!(cpu, plain_cpu, "{kind:?}: per-isolate exact CPU diverged");
        for (i, &expect) in plain_cpu.iter().enumerate() {
            assert_eq!(
                outcome.accounts.cpu_exact(unit.id(), IsolateId(i as u16)),
                expect,
                "{kind:?}: aggregate for isolate {i} diverged"
            );
        }
        assert_eq!(
            outcome.accounts.total_cpu_exact(),
            plain_cpu.iter().sum::<u64>()
        );
    }
}

/// Termination requested *before* the run is delivered ahead of the
/// unit's first slice: the workload never executes a single instruction.
#[test]
fn pre_run_termination_is_delivered_before_first_slice() {
    let program = Program {
        src: r#"
            class Loop {
                static int spin(int n) {
                    int acc = 0;
                    while (true) { acc = acc + 1; }
                    return acc;
                }
            }
        "#,
        entry: "Loop",
        method: "spin",
        desc: "(I)I",
        thread_args: vec![1],
    };
    let (vm, tids) = build_unit(&program, 500);
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Parallel(2))
        .slice(500)
        .build();
    let unit = cluster.submit(vm);
    // A single-isolate unit's workload isolate is the first one created
    // (the system library lives on the bootstrap loader, not in an
    // isolate of its own).
    unit.terminate(IsolateId(0));
    let outcome = cluster.run();
    let vm = &outcome.unit(&unit).vm;
    assert_eq!(outcome.unit(&unit).report.outcome, RunOutcome::Idle);
    assert_ne!(
        vm.isolate_state(IsolateId(0)).unwrap(),
        IsolateState::Active,
        "the isolate must be terminated"
    );
    let err = vm.thread_outcome(tids[0]).unwrap_err().to_string();
    assert!(
        err.contains("StoppedIsolateException"),
        "expected StoppedIsolateException, got {err}"
    );
    assert_eq!(
        outcome.accounts.cpu_exact(unit.id(), IsolateId(0)),
        0,
        "a pre-run kill must land before any instruction is charged"
    );
}

/// Cross-worker termination mid-run: an infinite loop spinning on some
/// worker is stopped at its next quantum boundary when another OS thread
/// files the kill — the paper-§3.3 protocol delivered across cores.
#[test]
fn cross_worker_termination_stops_spinning_unit() {
    let spin = Program {
        src: r#"
            class Hog {
                static int spin(int n) {
                    int acc = 0;
                    while (true) { acc = acc + 1; }
                    return acc;
                }
            }
        "#,
        entry: "Hog",
        method: "spin",
        desc: "(I)I",
        thread_args: vec![1],
    };
    let (vm, tids) = build_unit(&spin, 400);
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Parallel(2))
        .slice(400)
        .build();
    let unit = cluster.submit(vm);
    let killer_handle = unit.clone();
    let killer = std::thread::spawn(move || {
        // Let the hog actually run a few quanta first. A host-side test
        // driver thread may sleep — the clippy ban targets VM code.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(std::time::Duration::from_millis(20));
        killer_handle.terminate(IsolateId(0));
    });
    let outcome = cluster.run();
    killer.join().unwrap();
    let vm = &outcome.unit(&unit).vm;
    assert_eq!(outcome.unit(&unit).report.outcome, RunOutcome::Idle);
    let err = vm.thread_outcome(tids[0]).unwrap_err().to_string();
    assert!(
        err.contains("StoppedIsolateException"),
        "expected StoppedIsolateException, got {err}"
    );
    // Everything the hog burned before the kill is charged exactly:
    // aggregate and in-VM exact CPU agree even for a killed isolate.
    assert_eq!(
        outcome.accounts.cpu_exact(unit.id(), IsolateId(0)),
        vm.isolate_stats(IsolateId(0)).unwrap().cpu_exact,
        "kill path lost exactly-counted CPU"
    );
}

/// The documented `ClusterOutcome::units` invariant: entries are indexed
/// by `UnitId` no matter in which order units *complete*. Unit sizes are
/// chosen so completion order (1, 2, 0) inverts submission order under
/// the deterministic scheduler, and parallel runs shuffle it further.
#[test]
fn outcome_units_indexed_by_unit_id_regardless_of_completion_order() {
    let spin = |n: i32| Program {
        src: r#"
            class Arith {
                static int spin(int n) {
                    int acc = 7;
                    for (int i = 0; i < n; i++) { acc = acc * 31 + i; }
                    return acc % 65536;
                }
            }
        "#,
        entry: "Arith",
        method: "spin",
        desc: "(I)I",
        thread_args: vec![n],
    };
    // Long, tiny, medium: unit 0 finishes last, unit 1 first.
    let programs = [spin(6_000), spin(10), spin(1_500)];
    for kind in [
        SchedulerKind::Deterministic,
        SchedulerKind::Parallel(2),
        SchedulerKind::Parallel(4),
    ] {
        let mut cluster = Cluster::builder().scheduler(kind).slice(200).build();
        let mut handles = Vec::new();
        let mut tids = Vec::new();
        for p in &programs {
            let (vm, unit_tids) = build_unit(p, 200);
            handles.push(cluster.submit(vm));
            tids.push(unit_tids[0]);
        }
        let outcome = cluster.run();
        // Slice counts prove completion order differed from unit order.
        assert!(
            outcome.units[1].report.slices < outcome.units[0].report.slices,
            "{kind:?}: the tiny unit should finish in fewer slices"
        );
        for (u, handle) in handles.iter().enumerate() {
            let unit = outcome.unit(handle);
            assert_eq!(unit.report.id, handle.id());
            assert_eq!(unit.report.id.index() as usize, u);
            // Each unit's VM really is the one submitted under that id:
            // its entry thread computed that unit's expected value.
            let expect = {
                let mut acc = 7i32;
                for i in 0..programs[u].thread_args[0] {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                (acc % 65536).to_string()
            };
            let got = unit.vm.thread_outcome(tids[u]).unwrap().unwrap();
            assert_eq!(got.to_string(), expect, "{kind:?}: unit {u} mismatch");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Accounting exactness under migration: for random program sets,
    /// worker counts, quanta and slice lengths, total charged CPU per
    /// isolate is identical between `Deterministic` and `Parallel(n)`
    /// runs, and results/console/poisoning match per unit.
    #[test]
    fn parallel_runs_match_deterministic(
        sizes in proptest::collection::vec(1u32..2_000, 1..6),
        workers in 1usize..5,
        quantum in 50u32..800,
        slice in 100u64..2_000,
    ) {
        let arith = r#"
            class Arith {
                static int spin(int n) {
                    int acc = 3;
                    for (int i = 0; i < n; i++) {
                        acc = acc * 31 + i;
                        if (acc > 100000) acc = acc % 9973;
                    }
                    return acc;
                }
            }
        "#;
        let programs: Vec<Program> = sizes
            .iter()
            .map(|&n| Program {
                src: arith,
                entry: "Arith",
                method: "spin",
                desc: "(I)I",
                thread_args: vec![n as i32],
            })
            .collect();
        let oracle = run_set(&programs, SchedulerKind::Deterministic, quantum, slice);
        for o in &oracle {
            prop_assert_eq!(&o.aggregate_cpu, &o.cpu_exact);
        }
        let parallel = run_set(&programs, SchedulerKind::Parallel(workers), quantum, slice);
        prop_assert_eq!(oracle, parallel);
    }
}
