//! Differential tests: every program must behave identically under the
//! raw byte interpreter and the quickened engine (fused and unfused) —
//! same results, same console output, same guest instruction counts (the
//! budget quantum is counted per logical instruction in all engines),
//! same exceptions, and the same resource-accounting totals.
//!
//! The combinations compared are env-var selectable so CI can run them
//! as a matrix whose job name alone attributes a per-mode failure:
//!
//! * `IJVM_DIFF_ISOLATION` — `shared`, `isolated`, or unset for both;
//! * `IJVM_DIFF_ENGINE` — the candidate compared against the raw oracle:
//!   `quickened`, `quickened-nofuse`, `raw` (a control lane), or unset
//!   for both quickened variants.

use ijvm_core::engine::EngineKind;
use ijvm_core::prelude::*;
use ijvm_core::vm::Vm;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

/// A candidate engine configuration compared against the raw oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    engine: EngineKind,
    superinstructions: bool,
}

/// Isolation modes selected by `IJVM_DIFF_ISOLATION`.
fn selected_modes() -> Vec<IsolationMode> {
    match std::env::var("IJVM_DIFF_ISOLATION").as_deref() {
        Ok("shared") => vec![IsolationMode::Shared],
        Ok("isolated") => vec![IsolationMode::Isolated],
        Ok(other) if !other.is_empty() => panic!("bad IJVM_DIFF_ISOLATION {other:?}"),
        _ => vec![IsolationMode::Shared, IsolationMode::Isolated],
    }
}

/// Candidate engines selected by `IJVM_DIFF_ENGINE`.
fn selected_candidates() -> Vec<Candidate> {
    let quickened = Candidate {
        engine: EngineKind::Quickened,
        superinstructions: true,
    };
    let nofuse = Candidate {
        engine: EngineKind::Quickened,
        superinstructions: false,
    };
    match std::env::var("IJVM_DIFF_ENGINE").as_deref() {
        Ok("quickened") => vec![quickened],
        Ok("quickened-nofuse") => vec![nofuse],
        // Control lane: the oracle against itself, catching harness bugs.
        Ok("raw") => vec![Candidate {
            engine: EngineKind::Raw,
            superinstructions: true,
        }],
        Ok(other) if !other.is_empty() => panic!("bad IJVM_DIFF_ENGINE {other:?}"),
        _ => vec![quickened, nofuse],
    }
}

/// Everything we compare between engines after one run.
#[derive(Debug, PartialEq)]
struct Observed {
    result: Option<String>,
    error: Option<String>,
    vclock: u64,
    migrations: u64,
    console: Vec<String>,
    cpu_exact: Vec<u64>,
    cpu_sampled_total: u64,
    allocated_objects: Vec<u64>,
}

fn run_program(
    src: &str,
    entry: &str,
    method: &str,
    desc: &str,
    args: Vec<Value>,
    mode: IsolationMode,
    candidate: Candidate,
) -> Observed {
    let options = match mode {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    }
    .with_engine(candidate.engine)
    .with_superinstructions(candidate.superinstructions);
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("diff");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, entry).unwrap();
    let outcome = vm.call_static_as(class, method, desc, args, iso);
    observe(&mut vm, outcome)
}

fn observe(vm: &mut Vm, outcome: ijvm_core::Result<Option<Value>>) -> Observed {
    let (result, error) = match outcome {
        Ok(v) => (v.map(|v| format!("{v}")), None),
        Err(e) => (None, Some(e.to_string())),
    };
    let snaps = vm.snapshots();
    Observed {
        result,
        error,
        vclock: vm.vclock(),
        migrations: vm.migrations(),
        console: vm.take_console(),
        cpu_exact: snaps.iter().map(|s| s.stats.cpu_exact).collect(),
        cpu_sampled_total: snaps.iter().map(|s| s.stats.cpu_sampled).sum(),
        allocated_objects: snaps.iter().map(|s| s.stats.allocated_objects).collect(),
    }
}

/// Runs one program under the raw oracle and every selected candidate in
/// every selected isolation mode, asserting the observations match
/// exactly.
fn assert_engines_agree(
    name: &str,
    src: &str,
    entry: &str,
    method: &str,
    desc: &str,
    args: Vec<Value>,
) {
    let oracle = Candidate {
        engine: EngineKind::Raw,
        superinstructions: true,
    };
    for mode in selected_modes() {
        let raw = run_program(src, entry, method, desc, args.clone(), mode, oracle);
        for candidate in selected_candidates() {
            let observed = run_program(src, entry, method, desc, args.clone(), mode, candidate);
            assert_eq!(
                raw, observed,
                "{name} diverged in {mode:?} mode under {candidate:?}"
            );
        }
    }
}

#[test]
fn arithmetic_and_branches_agree() {
    assert_engines_agree(
        "arith",
        r#"
        class A {
            static int mix(int n) {
                int acc = 7;
                for (int i = 1; i < n; i++) {
                    acc = acc * 31 + i;
                    if (acc > 1000000) acc = acc % 99991;
                    acc = acc ^ (acc >> 3);
                }
                return acc;
            }
        }
        "#,
        "A",
        "mix",
        "(I)I",
        vec![Value::Int(5_000)],
    );
}

#[test]
fn fields_objects_and_statics_agree() {
    assert_engines_agree(
        "fields",
        r#"
        class Node {
            int value;
            Node next;
            Node(int v) { value = v; }
        }
        class B {
            static int total;
            static int build(int n) {
                Node head = null;
                for (int i = 0; i < n; i++) {
                    Node fresh = new Node(i);
                    fresh.next = head;
                    head = fresh;
                    total = total + i;
                }
                int sum = 0;
                while (head != null) { sum += head.value; head = head.next; }
                return sum + total;
            }
        }
        "#,
        "B",
        "build",
        "(I)I",
        vec![Value::Int(2_000)],
    );
}

#[test]
fn interfaces_and_virtual_dispatch_agree() {
    assert_engines_agree(
        "dispatch",
        r#"
        interface Op { int apply(int x); }
        class Twice implements Op { public int apply(int x) { return x * 2; } }
        class Inc implements Op { public int apply(int x) { return x + 1; } }
        class C {
            static int fold(int n) {
                Op[] ops = new Op[2];
                ops[0] = new Twice();
                ops[1] = new Inc();
                int acc = 1;
                for (int i = 0; i < n; i++) {
                    acc = ops[i % 2].apply(acc) % 100003;
                }
                return acc;
            }
        }
        "#,
        "C",
        "fold",
        "(I)I",
        vec![Value::Int(3_000)],
    );
}

#[test]
fn polymorphic_virtual_calls_agree() {
    // Receivers alternate between two classes through one invokevirtual
    // site: the quickened engine's monomorphic shape cache must go
    // polymorphic (plain vtable path) without diverging from raw.
    assert_engines_agree(
        "poly-virtual",
        r#"
        class Shape { int area() { return 0; } }
        class Square extends Shape { int side; Square(int s) { side = s; } public int area() { return side * side; } }
        class Strip extends Shape { int len; Strip(int l) { len = l; } public int area() { return len * 3; } }
        class H {
            static int total(int n) {
                Shape a = new Square(3);
                Shape b = new Strip(5);
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    Shape s = a;
                    if (i % 2 == 1) { s = b; }
                    acc += s.area();
                }
                return acc;
            }
        }
        "#,
        "H",
        "total",
        "(I)I",
        vec![Value::Int(2_000)],
    );
}

#[test]
fn exceptions_and_handlers_agree() {
    assert_engines_agree(
        "exceptions",
        r#"
        class D {
            static int probe(int n) {
                int caught = 0;
                for (int i = 0; i < n; i++) {
                    try {
                        if (i % 3 == 0) throw new ArithmeticException("x");
                        int[] xs = new int[2];
                        int v = xs[i % 5]; // faults when i%5 >= 2
                        caught += v;
                    } catch (ArithmeticException e) {
                        caught += 1;
                    } catch (RuntimeException e) {
                        caught += 2;
                    }
                }
                return caught;
            }
        }
        "#,
        "D",
        "probe",
        "(I)I",
        vec![Value::Int(500)],
    );
}

#[test]
fn uncaught_exceptions_agree() {
    assert_engines_agree(
        "uncaught",
        r#"
        class E {
            static int boom(int n) { return n / (n - n); }
        }
        "#,
        "E",
        "boom",
        "(I)I",
        vec![Value::Int(7)],
    );
}

#[test]
fn strings_and_clinit_agree() {
    assert_engines_agree(
        "strings",
        r#"
        class F {
            static String tag = "seed";
            static int check(int n) {
                String acc = tag;
                for (int i = 0; i < n; i++) {
                    acc = acc + "-" + i;
                }
                return acc.length();
            }
        }
        "#,
        "F",
        "check",
        "(I)I",
        vec![Value::Int(64)],
    );
}

#[test]
fn quantum_interleaving_agrees() {
    // Two threads incrementing a shared static under a small quantum:
    // the deterministic scheduler must interleave identically under both
    // engines, because instruction counting is per logical instruction.
    let src = r#"
        class G {
            static int hits;
            static int spin(int n) {
                for (int i = 0; i < n; i++) { hits = hits + 1; }
                return hits;
            }
        }
    "#;
    let oracle = Candidate {
        engine: EngineKind::Raw,
        superinstructions: true,
    };
    for mode in selected_modes() {
        let mut seen = Vec::new();
        for candidate in std::iter::once(oracle).chain(selected_candidates()) {
            let mut options = match mode {
                IsolationMode::Shared => VmOptions::shared(),
                IsolationMode::Isolated => VmOptions::isolated(),
            }
            .with_engine(candidate.engine)
            .with_superinstructions(candidate.superinstructions);
            options.quantum = 137; // force frequent thread switches
            let mut vm = ijvm_jsl::boot(options);
            let iso = vm.create_isolate("diff");
            let loader = vm.loader_of(iso).unwrap();
            for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
                vm.add_class_bytes(loader, &name, bytes);
            }
            let class = vm.load_class(loader, "G").unwrap();
            let index = {
                let mref = vm.class(class).find_method("spin", "(I)I").unwrap();
                MethodRef { class, index: mref }
            };
            let t1 = vm
                .spawn_thread("a", index, vec![Value::Int(600)], iso)
                .unwrap();
            let t2 = vm
                .spawn_thread("b", index, vec![Value::Int(600)], iso)
                .unwrap();
            assert_eq!(vm.run(None), RunOutcome::Idle);
            let r1 = vm.thread_result(t1);
            let r2 = vm.thread_result(t2);
            seen.push((
                r1.map(|v| v.to_string()),
                r2.map(|v| v.to_string()),
                vm.vclock(),
            ));
        }
        for (i, s) in seen.iter().enumerate().skip(1) {
            assert_eq!(
                &seen[0], s,
                "interleaving diverged in {mode:?} mode (lane {i})"
            );
        }
    }
}

#[test]
fn isolate_termination_agrees() {
    // A callee isolate is terminated mid-workload; both engines must see
    // the same StoppedIsolateException surface.
    let callee_src = r#"
        class Svc {
            int poke(int x) { return x + 1; }
        }
        class SvcFactory {
            static Svc make() { return new Svc(); }
        }
    "#;
    let caller_src = r#"
        class Caller {
            static int call(Svc s) { return s.poke(5); }
        }
    "#;
    let oracle = Candidate {
        engine: EngineKind::Raw,
        superinstructions: true,
    };
    let mut seen = Vec::new();
    for candidate in std::iter::once(oracle).chain(selected_candidates()) {
        let options = VmOptions::isolated()
            .with_engine(candidate.engine)
            .with_superinstructions(candidate.superinstructions);
        let mut vm = ijvm_jsl::boot(options);
        let home = vm.create_isolate("home");
        let home_loader = vm.loader_of(home).unwrap();
        let callee = vm.create_isolate("callee");
        let callee_loader = vm.loader_of(callee).unwrap();
        let callee_classes = compile_to_bytes(callee_src, &CompileEnv::new()).unwrap();
        for (name, bytes) in &callee_classes {
            vm.add_class_bytes(callee_loader, name, bytes.clone());
        }
        vm.add_loader_delegate(home_loader, callee_loader);
        let mut cenv = CompileEnv::new();
        for (_, bytes) in &callee_classes {
            let cf = ijvm_classfile::reader::read_class(bytes).unwrap();
            cenv.import_class_file(&cf).unwrap();
        }
        for (name, bytes) in compile_to_bytes(caller_src, &cenv).unwrap() {
            vm.add_class_bytes(home_loader, &name, bytes);
        }
        let factory = vm.load_class(callee_loader, "SvcFactory").unwrap();
        let svc = vm
            .call_static_as(factory, "make", "()LSvc;", vec![], callee)
            .unwrap()
            .unwrap();
        let Value::Ref(svc_ref) = svc else {
            panic!("factory returned {svc}")
        };
        vm.pin(svc_ref);
        let caller = vm.load_class(home_loader, "Caller").unwrap();

        // Warm the inter-isolate call path (quickening the invoke site),
        // then kill the callee and call through the same site again.
        let warm = vm
            .call_static_as(caller, "call", "(LSvc;)I", vec![Value::Ref(svc_ref)], home)
            .unwrap();
        assert_eq!(warm, Some(Value::Int(6)));

        vm.terminate_isolate(callee).unwrap();
        let outcome =
            vm.call_static_as(caller, "call", "(LSvc;)I", vec![Value::Ref(svc_ref)], home);
        let uncaught = match outcome {
            Err(ijvm_core::VmError::UncaughtException { class_name, .. }) => Some(class_name),
            other => panic!("expected uncaught exception, got {other:?}"),
        };
        seen.push((uncaught, vm.migrations()));
    }
    for (i, s) in seen.iter().enumerate().skip(1) {
        assert_eq!(&seen[0], s, "termination behaviour diverged (lane {i})");
    }
    assert_eq!(
        seen[0].0.as_deref(),
        Some("org/ijvm/StoppedIsolateException"),
        "terminated callee must poison the call"
    );
}
