//! Differential tests: every program must behave identically under the
//! raw byte interpreter, the quickened match engine, and the
//! direct-threaded handler engine (each fused and unfused) — same
//! results, same console output, same guest instruction counts (the
//! budget quantum is counted per logical instruction in all engines),
//! same exceptions, and the same resource-accounting totals.
//!
//! The combinations compared are env-var selectable so CI can run them
//! as a matrix whose job name alone attributes a per-mode failure:
//!
//! * `IJVM_DIFF_ISOLATION` — `shared`, `isolated`, or unset for both;
//! * `IJVM_DIFF_ENGINE` — the candidate compared against the raw oracle:
//!   `quickened`, `quickened-nofuse`, `threaded`, `threaded-nofuse`,
//!   `raw` (a control lane), or unset for all four quickened/threaded
//!   variants;
//! * `IJVM_DIFF_TRACE` — `full` runs every *candidate* with the flight
//!   recorder on ([`TraceConfig::Full`]) while the oracle stays
//!   untraced, pinning the tracing layer's zero-perturbation guarantee:
//!   results, console, vclock, migrations and exact accounting must all
//!   stay bit-identical with tracing enabled.

use ijvm_core::engine::EngineKind;
use ijvm_core::prelude::*;
use ijvm_core::vm::Vm;
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use proptest::prelude::*;

/// A candidate engine configuration compared against the raw oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    engine: EngineKind,
    superinstructions: bool,
    /// Run through the parallel work-stealing cluster scheduler
    /// (`SchedulerKind::Parallel(2)`, sliced) instead of a plain
    /// `Vm::run` — the whole observation set must still match the raw
    /// oracle bit for bit.
    cluster: bool,
    /// Run with the flight recorder on (`TraceConfig::Full`); the
    /// observation set must still match the untraced oracle.
    trace: bool,
}

/// Whether `IJVM_DIFF_TRACE=full` asks for traced candidates.
fn trace_lane() -> bool {
    match std::env::var("IJVM_DIFF_TRACE").as_deref() {
        Ok("full") => true,
        Ok(other) if !other.is_empty() => panic!("bad IJVM_DIFF_TRACE {other:?}"),
        _ => false,
    }
}

/// Isolation modes selected by `IJVM_DIFF_ISOLATION`.
fn selected_modes() -> Vec<IsolationMode> {
    match std::env::var("IJVM_DIFF_ISOLATION").as_deref() {
        Ok("shared") => vec![IsolationMode::Shared],
        Ok("isolated") => vec![IsolationMode::Isolated],
        Ok(other) if !other.is_empty() => panic!("bad IJVM_DIFF_ISOLATION {other:?}"),
        _ => vec![IsolationMode::Shared, IsolationMode::Isolated],
    }
}

/// Candidate engines selected by `IJVM_DIFF_ENGINE`.
fn selected_candidates() -> Vec<Candidate> {
    let trace = trace_lane();
    let quickened = Candidate {
        engine: EngineKind::Quickened,
        superinstructions: true,
        cluster: false,
        trace,
    };
    let quickened_nofuse = Candidate {
        engine: EngineKind::Quickened,
        superinstructions: false,
        cluster: false,
        trace,
    };
    let threaded = Candidate {
        engine: EngineKind::Threaded,
        superinstructions: true,
        cluster: false,
        trace,
    };
    let threaded_nofuse = Candidate {
        engine: EngineKind::Threaded,
        superinstructions: false,
        cluster: false,
        trace,
    };
    match std::env::var("IJVM_DIFF_ENGINE").as_deref() {
        Ok("quickened") => vec![quickened],
        Ok("quickened-nofuse") => vec![quickened_nofuse],
        Ok("threaded") => vec![threaded],
        Ok("threaded-nofuse") => vec![threaded_nofuse],
        // Cluster lanes: the default engine driven by the parallel
        // work-stealing scheduler, fused and unfused.
        Ok("parallel") => vec![Candidate {
            cluster: true,
            ..threaded
        }],
        Ok("parallel-nofuse") => vec![Candidate {
            cluster: true,
            ..threaded_nofuse
        }],
        // Control lane: the oracle against itself, catching harness bugs
        // (and, with IJVM_DIFF_TRACE=full, traced-raw vs untraced-raw).
        Ok("raw") => vec![Candidate {
            engine: EngineKind::Raw,
            superinstructions: true,
            cluster: false,
            trace,
        }],
        Ok(other) if !other.is_empty() => panic!("bad IJVM_DIFF_ENGINE {other:?}"),
        _ => vec![quickened, quickened_nofuse, threaded, threaded_nofuse],
    }
}

/// Everything we compare between engines after one run.
#[derive(Debug, PartialEq)]
struct Observed {
    result: Option<String>,
    error: Option<String>,
    vclock: u64,
    migrations: u64,
    console: Vec<String>,
    cpu_exact: Vec<u64>,
    cpu_sampled_total: u64,
    allocated_objects: Vec<u64>,
}

fn run_program(
    src: &str,
    entry: &str,
    method: &str,
    desc: &str,
    args: Vec<Value>,
    mode: IsolationMode,
    candidate: Candidate,
) -> Observed {
    let mut options = match mode {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    }
    .with_engine(candidate.engine)
    .with_superinstructions(candidate.superinstructions);
    if candidate.trace {
        options = options.with_trace(TraceConfig::Full);
    }
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("diff");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, entry).unwrap();
    if candidate.cluster {
        return run_in_cluster(vm, class, method, desc, args, iso);
    }
    let outcome = vm.call_static_as(class, method, desc, args, iso);
    observe(&mut vm, outcome)
}

/// Runs the prepared program as one unit of a two-worker parallel
/// cluster (sliced, so the unit crosses many quantum boundaries and is
/// stealable between them), then reports the outcome exactly as
/// `Vm::call_static_as` would.
fn run_in_cluster(
    mut vm: Vm,
    class: ClassId,
    method: &str,
    desc: &str,
    args: Vec<Value>,
    iso: IsolateId,
) -> Observed {
    use ijvm_core::sched::{Cluster, SchedulerKind};
    let index = vm.class(class).find_method(method, desc).unwrap();
    let mref = MethodRef { class, index };
    let tid = vm
        .spawn_thread(&format!("call:{method}"), mref, args, iso)
        .unwrap();
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Parallel(2))
        .slice(1_000)
        .build();
    let unit = cluster.submit(vm);
    let mut out = cluster.run();
    // `units` is indexed by UnitId regardless of completion order.
    let finished = out.units.remove(unit.id().index() as usize);
    let mut vm = finished.vm;
    let outcome = match finished.report.outcome {
        RunOutcome::Deadlock | RunOutcome::Blocked => Err(ijvm_core::VmError::Deadlock),
        RunOutcome::BudgetExhausted => Err(ijvm_core::VmError::BudgetExhausted),
        // The wildcard covers Idle (and, RunOutcome being
        // #[non_exhaustive], any future outcome defaults to "ran to
        // completion, read the thread result").
        _ => vm.thread_outcome(tid),
    };
    // The cluster aggregate (fed only by worker buffers draining at
    // migration points) must agree with the in-VM exact counters.
    for i in 0..vm.isolate_count() {
        let iso = IsolateId(i as u16);
        assert_eq!(
            out.accounts.cpu_exact(unit.id(), iso),
            vm.isolate_stats(iso).unwrap().cpu_exact,
            "cluster aggregate diverged for {iso}"
        );
    }
    observe(&mut vm, outcome)
}

fn observe(vm: &mut Vm, outcome: ijvm_core::Result<Option<Value>>) -> Observed {
    let (result, error) = match outcome {
        Ok(v) => (v.map(|v| format!("{v}")), None),
        Err(e) => (None, Some(e.to_string())),
    };
    let snaps = vm.metrics().isolates;
    Observed {
        result,
        error,
        vclock: vm.vclock(),
        migrations: vm.migrations(),
        console: vm.take_console(),
        cpu_exact: snaps.iter().map(|s| s.stats.cpu_exact).collect(),
        cpu_sampled_total: snaps.iter().map(|s| s.stats.cpu_sampled).sum(),
        allocated_objects: snaps.iter().map(|s| s.stats.allocated_objects).collect(),
    }
}

/// Runs one program under the raw oracle and every selected candidate in
/// every selected isolation mode, asserting the observations match
/// exactly.
fn assert_engines_agree(
    name: &str,
    src: &str,
    entry: &str,
    method: &str,
    desc: &str,
    args: Vec<Value>,
) {
    let oracle = Candidate {
        engine: EngineKind::Raw,
        superinstructions: true,
        cluster: false,
        trace: false,
    };
    for mode in selected_modes() {
        let raw = run_program(src, entry, method, desc, args.clone(), mode, oracle);
        for candidate in selected_candidates() {
            let observed = run_program(src, entry, method, desc, args.clone(), mode, candidate);
            assert_eq!(
                raw, observed,
                "{name} diverged in {mode:?} mode under {candidate:?}"
            );
        }
    }
}

#[test]
fn arithmetic_and_branches_agree() {
    assert_engines_agree(
        "arith",
        r#"
        class A {
            static int mix(int n) {
                int acc = 7;
                for (int i = 1; i < n; i++) {
                    acc = acc * 31 + i;
                    if (acc > 1000000) acc = acc % 99991;
                    acc = acc ^ (acc >> 3);
                }
                return acc;
            }
        }
        "#,
        "A",
        "mix",
        "(I)I",
        vec![Value::Int(5_000)],
    );
}

#[test]
fn fields_objects_and_statics_agree() {
    assert_engines_agree(
        "fields",
        r#"
        class Node {
            int value;
            Node next;
            Node(int v) { value = v; }
        }
        class B {
            static int total;
            static int build(int n) {
                Node head = null;
                for (int i = 0; i < n; i++) {
                    Node fresh = new Node(i);
                    fresh.next = head;
                    head = fresh;
                    total = total + i;
                }
                int sum = 0;
                while (head != null) { sum += head.value; head = head.next; }
                return sum + total;
            }
        }
        "#,
        "B",
        "build",
        "(I)I",
        vec![Value::Int(2_000)],
    );
}

#[test]
fn interfaces_and_virtual_dispatch_agree() {
    assert_engines_agree(
        "dispatch",
        r#"
        interface Op { int apply(int x); }
        class Twice implements Op { public int apply(int x) { return x * 2; } }
        class Inc implements Op { public int apply(int x) { return x + 1; } }
        class C {
            static int fold(int n) {
                Op[] ops = new Op[2];
                ops[0] = new Twice();
                ops[1] = new Inc();
                int acc = 1;
                for (int i = 0; i < n; i++) {
                    acc = ops[i % 2].apply(acc) % 100003;
                }
                return acc;
            }
        }
        "#,
        "C",
        "fold",
        "(I)I",
        vec![Value::Int(3_000)],
    );
}

#[test]
fn polymorphic_virtual_calls_agree() {
    // Receivers alternate between two classes through one invokevirtual
    // site: the quickened engine's monomorphic shape cache must go
    // polymorphic (plain vtable path) without diverging from raw.
    assert_engines_agree(
        "poly-virtual",
        r#"
        class Shape { int area() { return 0; } }
        class Square extends Shape { int side; Square(int s) { side = s; } public int area() { return side * side; } }
        class Strip extends Shape { int len; Strip(int l) { len = l; } public int area() { return len * 3; } }
        class H {
            static int total(int n) {
                Shape a = new Square(3);
                Shape b = new Strip(5);
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    Shape s = a;
                    if (i % 2 == 1) { s = b; }
                    acc += s.area();
                }
                return acc;
            }
        }
        "#,
        "H",
        "total",
        "(I)I",
        vec![Value::Int(2_000)],
    );
}

#[test]
fn exceptions_and_handlers_agree() {
    assert_engines_agree(
        "exceptions",
        r#"
        class D {
            static int probe(int n) {
                int caught = 0;
                for (int i = 0; i < n; i++) {
                    try {
                        if (i % 3 == 0) throw new ArithmeticException("x");
                        int[] xs = new int[2];
                        int v = xs[i % 5]; // faults when i%5 >= 2
                        caught += v;
                    } catch (ArithmeticException e) {
                        caught += 1;
                    } catch (RuntimeException e) {
                        caught += 2;
                    }
                }
                return caught;
            }
        }
        "#,
        "D",
        "probe",
        "(I)I",
        vec![Value::Int(500)],
    );
}

#[test]
fn uncaught_exceptions_agree() {
    assert_engines_agree(
        "uncaught",
        r#"
        class E {
            static int boom(int n) { return n / (n - n); }
        }
        "#,
        "E",
        "boom",
        "(I)I",
        vec![Value::Int(7)],
    );
}

#[test]
fn strings_and_clinit_agree() {
    assert_engines_agree(
        "strings",
        r#"
        class F {
            static String tag = "seed";
            static int check(int n) {
                String acc = tag;
                for (int i = 0; i < n; i++) {
                    acc = acc + "-" + i;
                }
                return acc.length();
            }
        }
        "#,
        "F",
        "check",
        "(I)I",
        vec![Value::Int(64)],
    );
}

#[test]
fn quantum_interleaving_agrees() {
    // Two threads incrementing a shared static under a small quantum:
    // the deterministic scheduler must interleave identically under both
    // engines, because instruction counting is per logical instruction.
    let src = r#"
        class G {
            static int hits;
            static int spin(int n) {
                for (int i = 0; i < n; i++) { hits = hits + 1; }
                return hits;
            }
        }
    "#;
    let oracle = Candidate {
        engine: EngineKind::Raw,
        superinstructions: true,
        cluster: false,
        trace: false,
    };
    for mode in selected_modes() {
        let mut seen = Vec::new();
        for candidate in std::iter::once(oracle).chain(selected_candidates()) {
            let mut options = match mode {
                IsolationMode::Shared => VmOptions::shared(),
                IsolationMode::Isolated => VmOptions::isolated(),
            }
            .with_engine(candidate.engine)
            .with_superinstructions(candidate.superinstructions);
            if candidate.trace {
                options = options.with_trace(TraceConfig::Full);
            }
            options.quantum = 137; // force frequent thread switches
            let mut vm = ijvm_jsl::boot(options);
            let iso = vm.create_isolate("diff");
            let loader = vm.loader_of(iso).unwrap();
            for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
                vm.add_class_bytes(loader, &name, bytes);
            }
            let class = vm.load_class(loader, "G").unwrap();
            let index = {
                let mref = vm.class(class).find_method("spin", "(I)I").unwrap();
                MethodRef { class, index: mref }
            };
            let t1 = vm
                .spawn_thread("a", index, vec![Value::Int(600)], iso)
                .unwrap();
            let t2 = vm
                .spawn_thread("b", index, vec![Value::Int(600)], iso)
                .unwrap();
            assert_eq!(vm.run(None), RunOutcome::Idle);
            let r1 = vm.thread_result(t1);
            let r2 = vm.thread_result(t2);
            seen.push((
                r1.map(|v| v.to_string()),
                r2.map(|v| v.to_string()),
                vm.vclock(),
            ));
        }
        for (i, s) in seen.iter().enumerate().skip(1) {
            assert_eq!(
                &seen[0], s,
                "interleaving diverged in {mode:?} mode (lane {i})"
            );
        }
    }
}

#[test]
fn string_ldc_caching_agrees_across_gc_epochs() {
    // String literals execute through the quickened/threaded engines' per-
    // site (isolate, gc-epoch, ref) ldc cache. A tiny GC threshold forces
    // collections mid-loop, so the cache is filled, epoch-invalidated and
    // refilled many times — and every observation (results, per-isolate
    // allocation counts, interning behaviour via `==`) must still match
    // the raw interpreter, which re-resolves through the intern map every
    // time.
    let src = r#"
        class L {
            static int spin(int n) {
                int hits = 0;
                for (int i = 0; i < n; i++) {
                    String a = "alpha";
                    String b = "beta-constant";
                    int[] garbage = new int[64];
                    garbage[0] = i;
                    if (a == "alpha") hits++;
                    hits += b.length() + garbage[0] % 3;
                }
                return hits;
            }
        }
    "#;
    let oracle = Candidate {
        engine: EngineKind::Raw,
        superinstructions: true,
        cluster: false,
        trace: false,
    };
    for mode in selected_modes() {
        let mut seen = Vec::new();
        for candidate in std::iter::once(oracle).chain(selected_candidates()) {
            let mut options = match mode {
                IsolationMode::Shared => VmOptions::shared(),
                IsolationMode::Isolated => VmOptions::isolated(),
            }
            .with_engine(candidate.engine)
            .with_superinstructions(candidate.superinstructions);
            if candidate.trace {
                options = options.with_trace(TraceConfig::Full);
            }
            options.gc_threshold_bytes = 64 << 10; // force frequent epochs
            let mut vm = ijvm_jsl::boot(options);
            let iso = vm.create_isolate("ldc");
            let loader = vm.loader_of(iso).unwrap();
            for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
                vm.add_class_bytes(loader, &name, bytes);
            }
            let class = vm.load_class(loader, "L").unwrap();
            let outcome = vm.call_static_as(class, "spin", "(I)I", vec![Value::Int(800)], iso);
            let gc_runs = vm.gc_count();
            seen.push((observe(&mut vm, outcome), gc_runs));
        }
        assert!(
            seen[0].1 > 2,
            "the workload must actually cycle GC epochs (saw {})",
            seen[0].1
        );
        for (i, s) in seen.iter().enumerate().skip(1) {
            assert_eq!(&seen[0], s, "ldc caching diverged in {mode:?} (lane {i})");
        }
    }
}

#[test]
fn isolate_termination_agrees() {
    // A callee isolate is terminated mid-workload; both engines must see
    // the same StoppedIsolateException surface.
    let callee_src = r#"
        class Svc {
            int poke(int x) { return x + 1; }
        }
        class SvcFactory {
            static Svc make() { return new Svc(); }
        }
    "#;
    let caller_src = r#"
        class Caller {
            static int call(Svc s) { return s.poke(5); }
        }
    "#;
    let oracle = Candidate {
        engine: EngineKind::Raw,
        superinstructions: true,
        cluster: false,
        trace: false,
    };
    let mut seen = Vec::new();
    for candidate in std::iter::once(oracle).chain(selected_candidates()) {
        let mut options = VmOptions::isolated()
            .with_engine(candidate.engine)
            .with_superinstructions(candidate.superinstructions);
        if candidate.trace {
            options = options.with_trace(TraceConfig::Full);
        }
        let mut vm = ijvm_jsl::boot(options);
        let home = vm.create_isolate("home");
        let home_loader = vm.loader_of(home).unwrap();
        let callee = vm.create_isolate("callee");
        let callee_loader = vm.loader_of(callee).unwrap();
        let callee_classes = compile_to_bytes(callee_src, &CompileEnv::new()).unwrap();
        for (name, bytes) in &callee_classes {
            vm.add_class_bytes(callee_loader, name, bytes.clone());
        }
        vm.add_loader_delegate(home_loader, callee_loader);
        let mut cenv = CompileEnv::new();
        for (_, bytes) in &callee_classes {
            let cf = ijvm_classfile::reader::read_class(bytes).unwrap();
            cenv.import_class_file(&cf).unwrap();
        }
        for (name, bytes) in compile_to_bytes(caller_src, &cenv).unwrap() {
            vm.add_class_bytes(home_loader, &name, bytes);
        }
        let factory = vm.load_class(callee_loader, "SvcFactory").unwrap();
        let svc = vm
            .call_static_as(factory, "make", "()LSvc;", vec![], callee)
            .unwrap()
            .unwrap();
        let Value::Ref(svc_ref) = svc else {
            panic!("factory returned {svc}")
        };
        vm.pin(svc_ref);
        let caller = vm.load_class(home_loader, "Caller").unwrap();

        // Warm the inter-isolate call path (quickening the invoke site),
        // then kill the callee and call through the same site again.
        let warm = vm
            .call_static_as(caller, "call", "(LSvc;)I", vec![Value::Ref(svc_ref)], home)
            .unwrap();
        assert_eq!(warm, Some(Value::Int(6)));

        vm.terminate_isolate(callee).unwrap();
        let outcome =
            vm.call_static_as(caller, "call", "(LSvc;)I", vec![Value::Ref(svc_ref)], home);
        let uncaught = match outcome {
            Err(ijvm_core::VmError::UncaughtException { class_name, .. }) => Some(class_name),
            other => panic!("expected uncaught exception, got {other:?}"),
        };
        seen.push((uncaught, vm.migrations()));
    }
    for (i, s) in seen.iter().enumerate().skip(1) {
        assert_eq!(&seen[0], s, "termination behaviour diverged (lane {i})");
    }
    assert_eq!(
        seen[0].0.as_deref(),
        Some("org/ijvm/StoppedIsolateException"),
        "terminated callee must poison the call"
    );
}

/// Regression test: a monomorphic `VirtSite` receiver→shape cache filled
/// through a hot inter-isolate virtual site must be invalidated when the
/// target isolate is terminated — the cached `CallSite` holds an
/// `Rc<CodeBody>` that would otherwise keep the dead isolate's bytecode
/// alive forever — and re-invoking through the site must still raise
/// `StoppedIsolateException` (poisoning, paper §3.3).
#[test]
fn terminated_isolate_invalidates_hot_virtual_site_caches() {
    let callee_src = r#"
        class Svc {
            int poke(int x) { return x + 1; }
        }
        class SvcFactory {
            static Svc make() { return new Svc(); }
        }
    "#;
    let caller_src = r#"
        class Caller {
            static int call(Svc s, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) { acc += s.poke(i); }
                return acc;
            }
            static Svc remake() { return SvcFactory.make(); }
        }
    "#;
    for engine in [EngineKind::Quickened, EngineKind::Threaded] {
        let options = VmOptions::isolated().with_engine(engine);
        let mut vm = ijvm_jsl::boot(options);
        let home = vm.create_isolate("home");
        let home_loader = vm.loader_of(home).unwrap();
        let callee = vm.create_isolate("callee");
        let callee_loader = vm.loader_of(callee).unwrap();
        let callee_classes = compile_to_bytes(callee_src, &CompileEnv::new()).unwrap();
        for (name, bytes) in &callee_classes {
            vm.add_class_bytes(callee_loader, name, bytes.clone());
        }
        vm.add_loader_delegate(home_loader, callee_loader);
        let mut cenv = CompileEnv::new();
        for (_, bytes) in &callee_classes {
            let cf = ijvm_classfile::reader::read_class(bytes).unwrap();
            cenv.import_class_file(&cf).unwrap();
        }
        for (name, bytes) in compile_to_bytes(caller_src, &cenv).unwrap() {
            vm.add_class_bytes(home_loader, &name, bytes);
        }
        let factory = vm.load_class(callee_loader, "SvcFactory").unwrap();
        let svc = vm
            .call_static_as(factory, "make", "()LSvc;", vec![], callee)
            .unwrap()
            .unwrap();
        let Value::Ref(svc_ref) = svc else {
            panic!("factory returned {svc}")
        };
        vm.pin(svc_ref);
        let caller = vm.load_class(home_loader, "Caller").unwrap();

        // Heat the virtual site so its monomorphic cache is filled, and
        // the cross-isolate static site so it fuses into a `CallSite`.
        let warm = vm
            .call_static_as(
                caller,
                "call",
                "(LSvc;I)I",
                vec![Value::Ref(svc_ref), Value::Int(64)],
                home,
            )
            .unwrap();
        assert_eq!(warm, Some(Value::Int((0..64).map(|i| i + 1).sum())));
        vm.call_static_as(caller, "remake", "()LSvc;", vec![], home)
            .unwrap();
        let cached_sites = |vm: &Vm| -> usize {
            vm.class(caller)
                .methods
                .iter()
                .filter_map(|m| m.prepared.as_ref())
                .flat_map(|p| {
                    p.virt_sites
                        .borrow()
                        .iter()
                        .map(|s| s.cache.borrow().is_some() as usize)
                        .collect::<Vec<_>>()
                })
                .sum()
        };
        assert!(
            cached_sites(&vm) > 0,
            "[{engine:?}] the virtual site never went hot"
        );

        // Fused direct-call sites whose target lives in the callee
        // isolate retain that isolate's bytecode through `Rc<CodeBody>`.
        let retained_dead_code_bytes = |vm: &Vm| -> usize {
            let callee_classes: Vec<_> = ["Svc", "SvcFactory"]
                .iter()
                .map(|n| vm.find_class(callee_loader, n).unwrap())
                .collect();
            vm.class(caller)
                .methods
                .iter()
                .filter_map(|m| m.prepared.as_ref())
                .flat_map(|p| {
                    p.call_sites
                        .borrow()
                        .iter()
                        .filter(|s| callee_classes.contains(&s.target.class))
                        .map(|s| s.code.bytes.len())
                        .collect::<Vec<_>>()
                })
                .sum()
        };
        assert!(
            retained_dead_code_bytes(&vm) > 0,
            "[{engine:?}] the static site never fused"
        );

        vm.terminate_isolate(callee).unwrap();
        assert_eq!(
            cached_sites(&vm),
            0,
            "[{engine:?}] termination must drop receiver→shape caches targeting the dead isolate"
        );
        assert_eq!(
            retained_dead_code_bytes(&vm),
            0,
            "[{engine:?}] termination must swap fused call sites for empty-body stubs"
        );

        // Re-invoking through the previously-hot site must hit the
        // poisoning check, not a stale cached frame shape.
        let outcome = vm.call_static_as(
            caller,
            "call",
            "(LSvc;I)I",
            vec![Value::Ref(svc_ref), Value::Int(4)],
            home,
        );
        match outcome {
            Err(ijvm_core::VmError::UncaughtException { class_name, .. }) => {
                assert_eq!(
                    class_name, "org/ijvm/StoppedIsolateException",
                    "[{engine:?}]"
                );
            }
            other => panic!("[{engine:?}] expected StoppedIsolateException, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Random-program proptest lane
// ---------------------------------------------------------------------

const CMP_OPS: [ijvm_classfile::Opcode; 6] = [
    ijvm_classfile::Opcode::IfIcmpeq,
    ijvm_classfile::Opcode::IfIcmpne,
    ijvm_classfile::Opcode::IfIcmplt,
    ijvm_classfile::Opcode::IfIcmpge,
    ijvm_classfile::Opcode::IfIcmpgt,
    ijvm_classfile::Opcode::IfIcmple,
];

/// Assembles a random but well-formed class `P` with a static `run()I`
/// built from structured chunks that keep the operand stack empty between
/// chunks. Compared to the superinstruction generator, the menu here also
/// exercises the quickened call sites (`invokestatic` to a helper),
/// static fields, string `ldc` (the per-site cache), and allocation (GC
/// pressure + accounting), so all three engines' quickening transitions
/// fire under random interleavings. Every branch is a short forward skip,
/// so all programs terminate.
fn build_random_program(ops: &[u8]) -> Vec<u8> {
    use ijvm_classfile::{AccessFlags, ClassBuilder, Opcode};
    const STATIC: AccessFlags = AccessFlags(AccessFlags::PUBLIC.0 | AccessFlags::STATIC.0);

    let mut cb = ClassBuilder::new("P", "java/lang/Object", AccessFlags::PUBLIC);
    cb.field("acc", "I", STATIC);
    // Helper the random invokestatic chunks call.
    let mut h = cb.method("f", "(II)I", STATIC);
    h.iload(0);
    h.iload(1);
    h.op(Opcode::Ixor);
    h.const_int(3);
    h.op(Opcode::Iadd);
    h.op(Opcode::Ireturn);
    h.done().unwrap();

    let mut m = cb.method("run", "()I", STATIC);
    for slot in 0..4u16 {
        m.const_int(5 * slot as i32 + 2);
        m.istore(slot);
    }
    for &op in ops {
        let a = (op % 4) as u16;
        let b = (op / 4 % 4) as u16;
        let dst = (op / 16 % 4) as u16;
        let cmp = CMP_OPS[(op / 7 % 6) as usize];
        match op % 8 {
            // The accumulate shape (fuses to AddStore).
            0 => {
                m.iload(a);
                m.iload(b);
                m.op(Opcode::Iadd);
                m.istore(dst);
            }
            // Compare-with-constant branch (fuses to FusedCmpBr).
            1 => {
                let skip = m.new_label();
                m.iload(a);
                m.const_int(op as i32 * 3 - 128);
                m.branch(cmp, skip);
                m.iinc(b, 1);
                m.bind(skip);
            }
            // Compare-two-locals branch (fuses to FusedCmpBr).
            2 => {
                let skip = m.new_label();
                m.iload(a);
                m.iload(b);
                m.branch(cmp, skip);
                m.iinc(dst, -3);
                m.bind(skip);
            }
            // Static call through a fused call site.
            3 => {
                m.iload(a);
                m.iload(b);
                m.invokestatic("P", "f", "(II)I");
                m.istore(dst);
            }
            // Static field round trip (mirror indirection + init check).
            4 => {
                m.iload(a);
                m.putstatic("P", "acc", "I");
                m.getstatic("P", "acc", "I");
                m.istore(b);
            }
            // String ldc (per-site cache) — fold its length into a local.
            5 => {
                m.const_string(if op % 2 == 0 {
                    "alpha"
                } else {
                    "beta-constant"
                });
                m.invokevirtual("java/lang/String", "length", "()I");
                m.istore(dst);
            }
            // Allocation (GC pressure, accounting).
            6 => {
                m.const_int((op % 16) as i32 + 1);
                m.newarray(ijvm_classfile::descriptor::BaseType::Int);
                m.op(Opcode::Arraylength);
                m.istore(a);
            }
            // Plain arithmetic that must stay unfused.
            _ => {
                m.iinc(a, (op % 200) as i16 - 100);
            }
        }
    }
    m.iload(0);
    m.iload(1);
    m.op(Opcode::Iadd);
    m.iload(2);
    m.op(Opcode::Iadd);
    m.iload(3);
    m.op(Opcode::Ixor);
    m.op(Opcode::Ireturn);
    m.done().unwrap();
    ijvm_classfile::writer::write_class(&cb.build().unwrap()).unwrap()
}

/// Runs the random program under one engine configuration, returning the
/// full observation set.
fn run_random_program(
    bytes: &[u8],
    mode: IsolationMode,
    candidate: Candidate,
    quantum: u32,
) -> Observed {
    let mut options = match mode {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    }
    .with_engine(candidate.engine)
    .with_superinstructions(candidate.superinstructions);
    if candidate.trace {
        options = options.with_trace(TraceConfig::Full);
    }
    options.quantum = quantum;
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("prog");
    let loader = vm.loader_of(iso).unwrap();
    vm.add_class_bytes(loader, "P", bytes.to_vec());
    let class = vm.load_class(loader, "P").unwrap();
    let outcome = vm.call_static_as(class, "run", "()I", vec![], iso);
    observe(&mut vm, outcome)
}

proptest! {
    /// Raw vs Quickened vs Threaded (fused and unfused) over random
    /// programs, random quanta, and both isolation modes: identical
    /// results, exceptions, vclock, migrations, console, and per-isolate
    /// accounting traces.
    #[test]
    fn random_programs_agree_across_engines(
        ops in proptest::collection::vec(any::<u8>(), 0..100),
        quantum in 1u32..500,
    ) {
        let bytes = build_random_program(&ops);
        let oracle = Candidate { engine: EngineKind::Raw, superinstructions: true, cluster: false, trace: false };
        for mode in [IsolationMode::Shared, IsolationMode::Isolated] {
            let raw = run_random_program(&bytes, mode, oracle, quantum);
            for engine in [EngineKind::Quickened, EngineKind::Threaded] {
                for superinstructions in [true, false] {
                    let candidate = Candidate { engine, superinstructions, cluster: false, trace: trace_lane() };
                    let observed = run_random_program(&bytes, mode, candidate, quantum);
                    prop_assert_eq!(
                        &raw,
                        &observed,
                        "random program diverged in {:?} mode under {:?} (quantum {})",
                        mode,
                        candidate,
                        quantum
                    );
                }
            }
        }
    }
}
