//! Checkpoint/restore differential tests: a unit checkpointed at a
//! quantum boundary must produce the *same image bytes* under the
//! deterministic oracle and the parallel scheduler at any worker
//! count, the checkpoint itself must not perturb the run, and a
//! restored unit must resume to a final state bit-identical to the
//! uninterrupted run — same per-thread results, console output,
//! virtual clock and per-isolate exact CPU, both in-VM and in the
//! cluster aggregate.
//!
//! The engine under test crosses with the CI differential matrix:
//! `IJVM_DIFF_ENGINE` selects the engine/fusion lane and
//! `IJVM_DIFF_ISOLATION` the isolation mode, so every engine lane also
//! exercises checkpointing. One test additionally restores a raw-engine
//! image under the quickened and threaded engines: images carry no
//! prepared code, so restore *must* re-derive it lazily — if it ever
//! serialized quickening state, the cross-engine resume would diverge.

use ijvm_core::engine::EngineKind;
use ijvm_core::prelude::*;
use ijvm_core::sched::UnitHandle;
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Engine/fusion lane selected by `IJVM_DIFF_ENGINE`.
fn engine_lane() -> (EngineKind, bool) {
    match std::env::var("IJVM_DIFF_ENGINE").as_deref() {
        Ok("quickened") => (EngineKind::Quickened, true),
        Ok("quickened-nofuse") => (EngineKind::Quickened, false),
        Ok("threaded") | Ok("parallel") => (EngineKind::Threaded, true),
        Ok("threaded-nofuse") | Ok("parallel-nofuse") => (EngineKind::Threaded, false),
        Ok("raw") => (EngineKind::Raw, true),
        _ => (EngineKind::Threaded, true),
    }
}

/// Isolation lane selected by `IJVM_DIFF_ISOLATION`.
fn isolation_lane() -> IsolationMode {
    match std::env::var("IJVM_DIFF_ISOLATION").as_deref() {
        Ok("shared") => IsolationMode::Shared,
        _ => IsolationMode::Isolated,
    }
}

fn lane_options(quantum: u32) -> VmOptions {
    let (engine, fuse) = engine_lane();
    let mut options = match isolation_lane() {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    }
    .with_engine(engine)
    .with_superinstructions(fuse);
    options.quantum = quantum;
    options
}

/// One unit of a scenario.
struct UnitSpec {
    src: String,
    entry: &'static str,
    method: &'static str,
    /// One entry thread per element, each with this `(I)I` argument.
    thread_args: Vec<i32>,
}

fn build_vm_with(spec: &UnitSpec, options: VmOptions) -> (Vm, Vec<ThreadId>) {
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(&spec.src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, spec.entry).unwrap();
    let index = vm.class(class).find_method(spec.method, "(I)I").unwrap();
    let mref = MethodRef { class, index };
    let tids = spec
        .thread_args
        .iter()
        .map(|&n| {
            vm.spawn_thread("entry", mref, vec![Value::Int(n)], iso)
                .unwrap()
        })
        .collect();
    (vm, tids)
}

fn build_vm(spec: &UnitSpec, quantum: u32) -> (Vm, Vec<ThreadId>) {
    build_vm_with(spec, lane_options(quantum))
}

/// Everything compared across scheduler modes / restore paths for one
/// finished unit.
#[derive(Debug, PartialEq)]
struct Observed {
    results: Vec<Result<Option<String>, String>>,
    outcome: RunOutcome,
    vclock: u64,
    console: Vec<String>,
    cpu_exact: Vec<u64>,
    cpu_sampled: Vec<u64>,
    allocated_objects: Vec<u64>,
    /// Cluster-aggregate exact CPU per isolate — must equal `cpu_exact`
    /// even for restored units, whose pre-checkpoint CPU is flushed
    /// into the aggregate on their first accounting sweep.
    aggregate_cpu: Vec<u64>,
}

fn observe(outcome: &mut ClusterOutcome, tids: &[Vec<ThreadId>]) -> Vec<Observed> {
    let accounts = &outcome.accounts;
    let mut observed = Vec::new();
    for (u, unit_outcome) in outcome.units.iter_mut().enumerate() {
        let report = unit_outcome.report;
        let vm = &mut unit_outcome.vm;
        let snaps = vm.metrics().isolates;
        observed.push(Observed {
            results: tids[u]
                .iter()
                .map(|&tid| {
                    vm.thread_outcome(tid)
                        .map(|v| v.map(|v| v.to_string()))
                        .map_err(|e| e.to_string())
                })
                .collect(),
            outcome: report.outcome,
            vclock: vm.vclock(),
            console: vm.take_console(),
            cpu_exact: snaps.iter().map(|s| s.stats.cpu_exact).collect(),
            cpu_sampled: snaps.iter().map(|s| s.stats.cpu_sampled).collect(),
            allocated_objects: snaps.iter().map(|s| s.stats.allocated_objects).collect(),
            aggregate_cpu: (0..vm.isolate_count())
                .map(|i| accounts.cpu_exact(report.id, IsolateId(i as u16)))
                .collect(),
        });
    }
    observed
}

const MODES: [SchedulerKind; 4] = [
    SchedulerKind::Deterministic,
    SchedulerKind::Parallel(1),
    SchedulerKind::Parallel(2),
    SchedulerKind::Parallel(4),
];

/// A self-contained two-thread compute workload that spans many slices
/// at quantum 200 / slice 400: loops, allocation (string building in
/// `println`) and interleaved green threads.
fn compute_unit() -> UnitSpec {
    UnitSpec {
        src: r#"
            class Work {
                static int busy(int n) {
                    int acc = 7;
                    for (int i = 0; i < n; i++) {
                        acc = acc * 31 + i;
                        if (i % 64 == 0) println("tick " + i + " " + acc);
                    }
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Work",
        method: "busy",
        thread_args: vec![520, 521],
    }
}

const QUANTUM: u32 = 200;
const SLICE: u64 = 400;

/// Runs `spec` alone under `kind`; optionally checkpoints at
/// `after_slices`; returns (observed, image-if-requested).
fn run_single(
    spec: &UnitSpec,
    kind: SchedulerKind,
    checkpoint_after: Option<u64>,
) -> (Vec<Observed>, Option<UnitImage>) {
    let mut cluster = Cluster::builder()
        .scheduler(kind)
        .slice(SLICE)
        .vm_options(lane_options(QUANTUM))
        .build();
    let (vm, tids) = build_vm(spec, QUANTUM);
    let handle = cluster.submit(vm);
    let ticket = checkpoint_after.map(|n| handle.checkpoint_at(n));
    let mut outcome = cluster.run();
    let observed = observe(&mut outcome, &[tids]);
    let image = ticket.map(|t| {
        t.wait()
            .expect("compute unit is quiescent at every boundary")
    });
    (observed, image)
}

/// Resumes `image` under `kind` and observes the finished unit,
/// optionally restoring with `restore_options` instead of the lane's.
fn resume_single(
    image: &UnitImage,
    kind: SchedulerKind,
    tids: &[ThreadId],
    restore_options: Option<VmOptions>,
) -> Vec<Observed> {
    let mut cluster = Cluster::builder()
        .scheduler(kind)
        .slice(SLICE)
        .vm_options(restore_options.unwrap_or_else(|| lane_options(QUANTUM)))
        .build();
    cluster
        .submit_image(image, ijvm_jsl::install_natives)
        .expect("image restores under matching hard options");
    let mut outcome = cluster.run();
    observe(&mut outcome, &[tids.to_vec()])
}

/// The tentpole acceptance test: checkpoint → restore → resume
/// mid-run is bit-identical to the uninterrupted run — results,
/// console, vclock and exact CPU — under Deterministic and
/// Parallel(1,2,4), the image bytes are identical in every mode, and
/// taking the checkpoint does not perturb the donor run.
#[test]
fn mid_run_checkpoint_restore_is_bit_identical_across_modes() {
    let spec = compute_unit();
    let (_, tids) = build_vm(&spec, QUANTUM); // tids are positional; same every build
    let (baseline, _) = run_single(&spec, SchedulerKind::Deterministic, None);
    assert_eq!(
        baseline[0].aggregate_cpu, baseline[0].cpu_exact,
        "cluster aggregate must match in-VM exact CPU"
    );
    assert!(
        baseline[0].console.len() > 8,
        "workload should span many slices: {:?}",
        baseline[0].console
    );

    let mut oracle_image: Option<UnitImage> = None;
    for kind in MODES {
        // Uninterrupted run matches the oracle in this mode.
        let (plain, _) = run_single(&spec, kind, None);
        assert_eq!(baseline, plain, "{kind:?} diverged uninterrupted");

        // Checkpointing mid-run does not perturb the donor.
        let (with_ckpt, image) = run_single(&spec, kind, Some(3));
        assert_eq!(baseline, with_ckpt, "{kind:?} perturbed by checkpoint");

        // The image bytes are identical in every scheduler mode.
        let image = image.unwrap();
        match &oracle_image {
            None => oracle_image = Some(image.clone()),
            Some(oracle) => assert_eq!(
                oracle.as_bytes(),
                image.as_bytes(),
                "{kind:?} produced different image bytes than the oracle"
            ),
        }

        // Restoring and resuming under every mode reaches the same
        // final state as the uninterrupted run.
        for resume_kind in MODES {
            let resumed = resume_single(&image, resume_kind, &tids[..], None);
            assert_eq!(
                baseline, resumed,
                "capture under {kind:?}, resume under {resume_kind:?} diverged"
            );
        }
    }
}

/// A checkpoint filed past the unit's lifetime settles at unit
/// completion with the final image ("at slice N or completion,
/// whichever comes first"); restoring it yields an already-finished
/// unit with the full observable history intact.
#[test]
fn checkpoint_past_completion_settles_with_final_image() {
    let spec = compute_unit();
    let (_, tids) = build_vm(&spec, QUANTUM);
    let (baseline, image) = run_single(&spec, SchedulerKind::Deterministic, Some(u64::MAX));
    let image = image.unwrap();
    let resumed = resume_single(&image, SchedulerKind::Deterministic, &tids[..], None);
    assert_eq!(
        baseline, resumed,
        "final image must replay to the final state"
    );
    assert_eq!(resumed[0].outcome, RunOutcome::Idle);
}

fn echo_server() -> UnitSpec {
    UnitSpec {
        src: r#"
            class Echo {
                int handle(int x) { return x * 3 + 7; }
            }
            class Boot {
                static int start(int n) {
                    Service.export("echo", new Echo());
                    println("echo up");
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    }
}

fn pinging_client(calls: i32) -> UnitSpec {
    UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    int acc = 0;
                    for (int i = 0; i < n; i++) {
                        acc += Service.call("echo", i);
                    }
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![calls],
    }
}

/// Crash-restart with in-flight traffic: a server checkpointed while a
/// client drives it is captured only once every cross-unit call has
/// drained to a boundary (the delivery point retries non-quiescent
/// captures), the image bytes agree across scheduler modes, and
/// `submit_image` re-exports the service under its **original** name —
/// a fresh client in a fresh cluster reaches `echo` without the server
/// re-running class initialization.
#[test]
fn restored_server_re_exports_service_under_original_name() {
    let calls = 24;
    let mut oracle_image: Option<UnitImage> = None;
    for kind in MODES {
        let mut cluster = Cluster::builder()
            .scheduler(kind)
            .slice(SLICE)
            .vm_options(lane_options(QUANTUM))
            .build();
        let server = echo_server();
        let client = pinging_client(calls);
        let (server_vm, _) = build_vm(&server, QUANTUM);
        let (client_vm, _) = build_vm(&client, QUANTUM);
        let server_handle = cluster.submit(server_vm);
        cluster.submit(client_vm);
        // Huge slice bound: the ticket settles when the cluster stalls,
        // i.e. after all in-flight calls drained.
        let ticket = server_handle.checkpoint_at(u64::MAX);
        cluster.run();
        let image = ticket.wait().expect("drained server is quiescent");
        match &oracle_image {
            None => oracle_image = Some(image),
            Some(oracle) => assert_eq!(
                oracle.as_bytes(),
                image.as_bytes(),
                "{kind:?} captured different server image bytes"
            ),
        }
    }
    let image = oracle_image.unwrap();

    // Crash-restart: fresh cluster, fresh client, same service name.
    let calls2 = 48;
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Deterministic)
        .slice(SLICE)
        .vm_options(lane_options(QUANTUM))
        .build();
    let restored = cluster
        .submit_image(&image, ijvm_jsl::install_natives)
        .expect("server image restores");
    let _ = &restored;
    let (client_vm, client_tids) = build_vm(&pinging_client(calls2), QUANTUM);
    cluster.submit(client_vm);
    let mut outcome = cluster.run();
    let server_tids = vec![ThreadId(0)];
    let observed = observe(&mut outcome, &[server_tids, client_tids]);
    let expect: i64 = (0..calls2 as i64).map(|i| i * 3 + 7).sum();
    assert_eq!(
        observed[1].results[0],
        Ok(Some(expect.to_string())),
        "fresh client must reach the restored service under its original name"
    );
    // Class init did not re-run on restore: the boot marker was printed
    // exactly once, before the checkpoint.
    let markers = observed[0]
        .console
        .iter()
        .filter(|l| *l == "echo up")
        .count();
    assert_eq!(markers, 1, "restore must not re-run <clinit>/boot code");
}

/// A warmed service unit whose `<clinit>` is expensive and observable:
/// `Table.sum` is computed by a static initializer that also prints a
/// marker, so a fork that re-ran class init would both duplicate the
/// marker and recompute the table.
fn warmed_server_spec() -> UnitSpec {
    UnitSpec {
        src: r#"
            class Table {
                static int sum = fill();
                static int fill() {
                    int s = 0;
                    for (int i = 0; i < 500; i++) s += i * i;
                    println("warm-init");
                    return s;
                }
            }
            class Svc {
                int handle(int x) { return x + Table.sum; }
            }
            class Boot {
                static int start(int n) {
                    Service.export("svc", new Svc());
                    return Table.sum;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    }
}

fn table_sum() -> i64 {
    (0..500i64).map(|i| i * i).sum()
}

/// Boots and warms the server once, runs it to idle *unattached*, and
/// captures its image directly via [`Vm::checkpoint`].
fn warmed_server_image(options: VmOptions) -> UnitImage {
    let (mut vm, tids) = build_vm_with(&warmed_server_spec(), options);
    assert_eq!(vm.run(None), RunOutcome::Idle, "warmup must finish");
    assert_eq!(
        vm.thread_outcome(tids[0]).unwrap().unwrap().to_string(),
        table_sum().to_string(),
        "warmup computed the table"
    );
    vm.checkpoint().expect("idle warmed unit is quiescent")
}

/// Snapshot-fork scale-out: one warmed image forked as N units serves N
/// clients under renamed services `svc#k`, without re-running class
/// initialization in any clone (asserted via the `<clinit>` side-effect
/// marker), bit-identically across scheduler modes.
#[test]
fn fork_n_serves_renamed_services_without_reinit() {
    let image = warmed_server_image(lane_options(QUANTUM));
    let n = 4usize;
    let calls = 12;
    let sum = table_sum();
    let expect_client: i64 = (0..calls as i64).map(|i| i + sum).sum();

    let mut oracle: Option<Vec<Observed>> = None;
    for kind in MODES {
        let mut cluster = Cluster::builder()
            .scheduler(kind)
            .slice(SLICE)
            .vm_options(lane_options(QUANTUM))
            .build();
        let forks = cluster
            .submit_image_n(&image, n, ijvm_jsl::install_natives)
            .expect("warmed image forks");
        assert_eq!(forks.len(), n);
        let mut tids: Vec<Vec<ThreadId>> = (0..n).map(|_| vec![ThreadId(0)]).collect();
        let mut client_handles: Vec<UnitHandle> = Vec::new();
        for k in 0..n {
            let spec = UnitSpec {
                src: format!(
                    r#"
                    class Client {{
                        static int drive(int n) {{
                            int acc = 0;
                            for (int i = 0; i < n; i++) {{
                                acc += Service.call("svc#{k}", i);
                            }}
                            return acc;
                        }}
                    }}
                    "#
                ),
                entry: "Client",
                method: "drive",
                thread_args: vec![calls],
            };
            let (vm, client_tids) = build_vm(&spec, QUANTUM);
            client_handles.push(cluster.submit(vm));
            tids.push(client_tids);
        }
        let mut outcome = cluster.run();
        let observed = observe(&mut outcome, &tids);
        for k in 0..n {
            let fork = &observed[k];
            // The warmup result survived the fork: statics were
            // restored, not re-initialized.
            assert_eq!(
                fork.results[0],
                Ok(Some(table_sum().to_string())),
                "fork {k}: warmup thread result must survive the fork"
            );
            let markers = fork.console.iter().filter(|l| *l == "warm-init").count();
            assert_eq!(markers, 1, "fork {k} re-ran <clinit> ({kind:?})");
            let client = &observed[n + k];
            assert_eq!(
                client.results[0],
                Ok(Some(expect_client.to_string())),
                "client {k} must reach svc#{k} ({kind:?})"
            );
        }
        match &oracle {
            None => oracle = Some(observed),
            Some(oracle) => assert_eq!(
                oracle, &observed,
                "{kind:?} diverged from the deterministic oracle"
            ),
        }
    }
}

/// Satellite-2 regression: a checkpoint captured under the **raw**
/// engine restores and resumes under the quickened and threaded
/// engines (soft option — the image carries no prepared code), and the
/// resumed run is bit-identical to the uninterrupted raw run. This is
/// exactly the "restore rebuilds `PreparedCode` lazily" guarantee: the
/// restored unit re-quickens from scratch and still passes the engine
/// differential.
#[test]
fn cross_engine_restore_requickens_lazily() {
    let mut raw = match isolation_lane() {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    }
    .with_engine(EngineKind::Raw)
    .with_superinstructions(false);
    raw.quantum = QUANTUM;

    let spec = compute_unit();
    let (_, tids) = build_vm_with(&spec, raw.clone());

    // Donor run under the raw engine, checkpointed mid-run.
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Deterministic)
        .slice(SLICE)
        .vm_options(raw.clone())
        .build();
    let (vm, _) = build_vm_with(&spec, raw.clone());
    let handle = cluster.submit(vm);
    let ticket = handle.checkpoint_at(3);
    let mut outcome = cluster.run();
    let baseline = observe(&mut outcome, std::slice::from_ref(&tids));
    let image = ticket.wait().expect("compute unit quiescent at boundary");

    for engine in [EngineKind::Quickened, EngineKind::Threaded] {
        for fuse in [false, true] {
            let restore_options = raw.clone().with_engine(engine).with_superinstructions(fuse);
            let resumed = resume_single(
                &image,
                SchedulerKind::Deterministic,
                &tids[..],
                Some(restore_options),
            );
            assert_eq!(
                baseline, resumed,
                "raw-engine image resumed under {engine:?}/fuse={fuse} diverged"
            );
        }
    }
}

/// Restore-then-terminate: a restored unit is a first-class citizen of
/// isolate termination. Killing its workload isolate stops its threads
/// and reclaims its heap exactly as it would in a never-checkpointed
/// unit killed at the same execution point — the restored unit's slice
/// counter restarts at zero, so a baseline kill at slice 4 and a
/// restored-from-slice-3 kill at slice 1 land on the identical quantum
/// boundary and must observe bit-identical aftermath, live-heap stats
/// included.
#[test]
fn restore_then_terminate_reclaims_everything() {
    if isolation_lane() == IsolationMode::Shared {
        return;
    }
    let spec = compute_unit();
    let (_, tids) = build_vm(&spec, QUANTUM);

    // Baseline: plain unit, killed at its 4th slice boundary.
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Deterministic)
        .slice(SLICE)
        .vm_options(lane_options(QUANTUM))
        .build();
    let (vm, _) = build_vm(&spec, QUANTUM);
    let handle = cluster.submit(vm);
    handle.terminate_at(IsolateId(0), 4);
    let mut outcome = cluster.run();
    let baseline = observe(&mut outcome, std::slice::from_ref(&tids));
    let baseline_live = {
        let snaps = outcome.units[0].vm.metrics().isolates;
        (snaps[0].stats.live_objects, snaps[0].stats.live_bytes)
    };

    // Donor: same workload, checkpointed at slice 3, left unkilled.
    let (_, image) = run_single(&spec, SchedulerKind::Deterministic, Some(3));
    let image = image.unwrap();

    // Restored: resumed from the slice-3 image, killed one slice in —
    // the same absolute execution point as the baseline kill.
    let mut cluster = Cluster::builder()
        .scheduler(SchedulerKind::Deterministic)
        .slice(SLICE)
        .vm_options(lane_options(QUANTUM))
        .build();
    let handle = cluster
        .submit_image(&image, ijvm_jsl::install_natives)
        .expect("image restores");
    handle.terminate_at(IsolateId(0), 1);
    let mut outcome = cluster.run();
    let observed = observe(&mut outcome, std::slice::from_ref(&tids));
    assert_eq!(
        baseline, observed,
        "terminating a restored unit must match terminating a plain one"
    );
    let vm = &outcome.units[0].vm;
    assert_ne!(
        vm.isolate_state(IsolateId(0)).unwrap(),
        IsolateState::Active,
        "restored unit's workload isolate must be terminable"
    );
    for (i, result) in observed[0].results.iter().enumerate() {
        let err = result
            .as_ref()
            .expect_err("threads of a terminated isolate cannot produce results");
        assert!(
            err.contains("StoppedIsolateException"),
            "thread {i}: expected StoppedIsolateException, got {err}"
        );
    }
    // Termination ran a full collection: only the handful of
    // host-rooted objects (thread mirrors, the in-flight exceptions)
    // survive, identically to the never-checkpointed baseline.
    let snaps = vm.metrics().isolates;
    let live = (snaps[0].stats.live_objects, snaps[0].stats.live_bytes);
    assert_eq!(
        live, baseline_live,
        "restore must not leak heap past termination"
    );
    assert!(
        live.0 < snaps[0].stats.allocated_objects,
        "termination should have reclaimed workload objects: {live:?} live of {} allocated",
        snaps[0].stats.allocated_objects
    );
}

/// A small but fully populated donor image for hostile-input tests.
fn fuzz_image_bytes() -> &'static [u8] {
    static IMG: OnceLock<Vec<u8>> = OnceLock::new();
    IMG.get_or_init(|| warmed_server_image(lane_options(QUANTUM)).into_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every single-byte corruption of a valid image is rejected by
    /// validation — header, section table and per-section checksums
    /// between them cover every byte — and never panics.
    #[test]
    fn corrupted_images_are_rejected(pos in 0usize..1 << 20, mask in 1u8..=255u8) {
        let mut bytes = fuzz_image_bytes().to_vec();
        let i = pos % bytes.len();
        bytes[i] ^= mask;
        prop_assert!(
            UnitImage::from_bytes(bytes).is_err(),
            "flipping byte {i} went undetected"
        );
    }

    /// Every strict prefix of a valid image is rejected without a
    /// panic — no count field causes a blind allocation or over-read.
    #[test]
    fn truncated_images_are_rejected(len in 0usize..1 << 20) {
        let bytes = fuzz_image_bytes();
        let l = len % bytes.len();
        prop_assert!(
            UnitImage::from_bytes(bytes[..l].to_vec()).is_err(),
            "truncating to {l} bytes went undetected"
        );
    }
}
