//! Scaling differential tests for the sharded `PortHub`: downsized
//! 256-unit topologies (fan-in flood, all-to-all ping cliques, a
//! revocation storm landing on a saturated fixpoint) asserted
//! bit-identical across the deterministic oracle and the parallel
//! work-stealing scheduler at 1, 2 and 4 workers.
//!
//! The corpus is built so that every guest-visible observation is
//! *commutative* over message arrival order: handlers are pure
//! functions of their payload, counters only ever accumulate, and each
//! mailbox with more than one producer carries no order-sensitive
//! state. Arrival interleaving into an MPSC ring differs between
//! scheduler modes by design — what must not differ is any result,
//! console line, vclock or exact CPU charge, and that is exactly what
//! these tests pin down at a unit count where the sharded registry,
//! the per-unit rings and the batched wake sweeps are all exercised
//! across every shard.
//!
//! Crosses with the CI differential matrix via `IJVM_DIFF_ENGINE` /
//! `IJVM_DIFF_ISOLATION` exactly like `port_messaging.rs`, and runs
//! standalone as the CI `scaling` job under the parallel scheduler.

use std::collections::BTreeMap;

use ijvm_core::engine::EngineKind;
use ijvm_core::prelude::*;
use ijvm_core::sched::UnitHandle;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

fn engine_lane() -> (EngineKind, bool) {
    match std::env::var("IJVM_DIFF_ENGINE").as_deref() {
        Ok("quickened") => (EngineKind::Quickened, true),
        Ok("quickened-nofuse") => (EngineKind::Quickened, false),
        Ok("threaded") | Ok("parallel") => (EngineKind::Threaded, true),
        Ok("threaded-nofuse") | Ok("parallel-nofuse") => (EngineKind::Threaded, false),
        Ok("raw") => (EngineKind::Raw, true),
        _ => (EngineKind::Threaded, true),
    }
}

fn isolation_lane() -> IsolationMode {
    match std::env::var("IJVM_DIFF_ISOLATION").as_deref() {
        Ok("shared") => IsolationMode::Shared,
        _ => IsolationMode::Isolated,
    }
}

fn lane_options(quantum: u32, trace: bool) -> VmOptions {
    let (engine, fuse) = engine_lane();
    let mut options = match isolation_lane() {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    }
    .with_engine(engine)
    .with_superinstructions(fuse);
    options.quantum = quantum;
    if trace {
        options.trace = TraceConfig::Full;
    }
    options
}

/// One unit of a scenario: a minijava program with `(I)I` entry threads.
struct UnitSpec {
    src: String,
    entry: &'static str,
    method: &'static str,
    thread_args: Vec<i32>,
}

/// Classes compiled once per distinct source — at 256 units a topology
/// reuses a handful of programs, and recompiling them per unit would
/// dominate the suite's runtime.
#[derive(Default)]
struct CompileCache {
    classes: BTreeMap<String, Vec<(String, Vec<u8>)>>,
}

impl CompileCache {
    fn classes_for(&mut self, src: &str) -> &[(String, Vec<u8>)] {
        self.classes
            .entry(src.to_owned())
            .or_insert_with(|| compile_to_bytes(src, &CompileEnv::new()).unwrap())
    }
}

fn build_vm(
    cache: &mut CompileCache,
    spec: &UnitSpec,
    quantum: u32,
    trace: bool,
) -> (Vm, Vec<ThreadId>) {
    let mut vm = ijvm_jsl::boot(lane_options(quantum, trace));
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in cache.classes_for(&spec.src) {
        vm.add_class_bytes(loader, name, bytes.clone());
    }
    let class = vm.load_class(loader, spec.entry).unwrap();
    let index = vm.class(class).find_method(spec.method, "(I)I").unwrap();
    let mref = MethodRef { class, index };
    let tids = spec
        .thread_args
        .iter()
        .map(|&n| {
            vm.spawn_thread("entry", mref, vec![Value::Int(n)], iso)
                .unwrap()
        })
        .collect();
    (vm, tids)
}

/// Everything compared across scheduler modes for one finished unit.
#[derive(Debug, PartialEq)]
struct Observed {
    results: Vec<Result<Option<String>, String>>,
    outcome: RunOutcome,
    vclock: u64,
    console: Vec<String>,
    cpu_exact: Vec<u64>,
    aggregate_cpu: Vec<u64>,
}

/// Runs a scenario under `kind`, returning per-unit observations, the
/// aggregate metrics when tracing is on, and the end-of-run hub
/// snapshot.
fn run_scenario(
    specs: &[UnitSpec],
    kind: SchedulerKind,
    quantum: u32,
    slice: u64,
    quota: Option<(u32, u64)>,
    trace: bool,
    kills: &[(usize, IsolateId, u64)],
) -> (Vec<Observed>, Option<ClusterMetrics>, HubStats, Vec<u64>) {
    let mut builder = Cluster::builder().scheduler(kind).slice(slice);
    if let Some((msgs, bytes)) = quota {
        builder = builder.mailbox_quota(msgs, bytes);
    }
    let mut cluster = builder.build();
    let mut cache = CompileCache::default();
    let mut handles: Vec<UnitHandle> = Vec::new();
    let mut tids = Vec::new();
    for spec in specs {
        let (vm, unit_tids) = build_vm(&mut cache, spec, quantum, trace);
        handles.push(cluster.submit(vm));
        tids.push(unit_tids);
    }
    for &(u, iso, min_slices) in kills {
        handles[u].terminate_at(iso, min_slices);
    }
    let mut outcome = cluster.run();
    assert_eq!(outcome.units.len(), specs.len(), "every unit must finish");
    let accounts = &outcome.accounts;
    let mut observed = Vec::new();
    let mut slices = Vec::new();
    for (u, unit_outcome) in outcome.units.iter_mut().enumerate() {
        let report = unit_outcome.report;
        slices.push(report.slices);
        let vm = &mut unit_outcome.vm;
        let snaps = vm.metrics().isolates;
        observed.push(Observed {
            results: tids[u]
                .iter()
                .map(|&tid| {
                    vm.thread_outcome(tid)
                        .map(|v| v.map(|v| v.to_string()))
                        .map_err(|e| e.to_string())
                })
                .collect(),
            outcome: report.outcome,
            vclock: vm.vclock(),
            console: vm.take_console(),
            cpu_exact: snaps.iter().map(|s| s.stats.cpu_exact).collect(),
            aggregate_cpu: (0..vm.isolate_count())
                .map(|i| accounts.cpu_exact(report.id, IsolateId(i as u16)))
                .collect(),
        });
    }
    (observed, outcome.metrics, outcome.hub_stats, slices)
}

/// Runs a scenario under the oracle and every worker count, asserting
/// bit-identical observations, and returns the oracle's observations
/// plus its (traced) metrics for schedule-*independent* assertions.
fn assert_modes_agree(
    specs: &[UnitSpec],
    quantum: u32,
    slice: u64,
    quota: Option<(u32, u64)>,
    kills: &[(usize, IsolateId, u64)],
) -> (Vec<Observed>, ClusterMetrics) {
    let (oracle, metrics, _, _) = run_scenario(
        specs,
        SchedulerKind::Deterministic,
        quantum,
        slice,
        quota,
        true,
        kills,
    );
    for (u, o) in oracle.iter().enumerate() {
        assert_eq!(
            o.aggregate_cpu, o.cpu_exact,
            "unit {u}: cluster aggregate diverged from in-VM exact CPU"
        );
    }
    for workers in [1usize, 2, 4] {
        let (parallel, _, _, _) = run_scenario(
            specs,
            SchedulerKind::Parallel(workers),
            quantum,
            slice,
            quota,
            false,
            kills,
        );
        assert_eq!(
            oracle, parallel,
            "Parallel({workers}) diverged from the deterministic oracle"
        );
    }
    (oracle, metrics.expect("oracle ran with tracing on"))
}

/// A flooder for the fan-in topology: a blocking handshake (so the
/// flood hits quota admission, not the unresolved path), then `n`
/// fire-and-forget oneways.
fn fan_in_flooder(n: i32) -> UnitSpec {
    UnitSpec {
        src: r#"
            class Flooder {
                static int drive(int n) {
                    int ack = Service.call("sink", 0 - 1);
                    for (int i = 0; i < n; i++) {
                        Port.send("sink", i);
                    }
                    return n + ack;
                }
            }
        "#
        .to_owned(),
        entry: "Flooder",
        method: "drive",
        thread_args: vec![n],
    }
}

/// 255 flooders against one sink: the deepest fan-in the downsized
/// corpus exercises. The sink's state is purely accumulative (a served
/// counter and one milestone line at the exact total), so arrival
/// interleaving — which *does* differ across modes at 255 concurrent
/// producers on one MPSC ring — cannot leak into any observation.
#[test]
fn fan_in_flood_256_units_across_modes() {
    let clients = 255usize;
    let per_client = 3i32;
    let total = clients as i64 * per_client as i64;
    let sink = UnitSpec {
        src: format!(
            r#"
            class Sink {{
                static int served;
                int handle(int x) {{
                    if (x < 0) return 7;
                    Sink.served += 1;
                    if (Sink.served == {total}) println("served " + Sink.served);
                    return 0;
                }}
            }}
            class Boot {{
                static int start(int n) {{
                    Service.export("sink", new Sink());
                    return n;
                }}
            }}
            "#
        ),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    };
    let mut specs = vec![sink];
    specs.extend((0..clients).map(|_| fan_in_flooder(per_client)));
    let (oracle, metrics) = assert_modes_agree(&specs, 2_000, 4_000, Some((8, 1 << 20)), &[]);
    for c in 0..clients {
        assert_eq!(
            oracle[1 + c].results[0],
            Ok(Some((per_client as i64 + 7).to_string())),
            "flooder {c} completed its handshake and flood"
        );
    }
    assert_eq!(
        oracle[0].console,
        vec![format!("served {total}")],
        "the sink served every flooded message"
    );
    assert_eq!(metrics.totals.oneways_sent, total as u64);
    assert_eq!(
        metrics.totals.calls_served,
        total as u64 + clients as u64,
        "every oneway plus one handshake per flooder"
    );
    assert!(
        metrics.totals.mailbox_high_water <= 8 + clients as u64,
        "fan-in stayed bounded (high water {})",
        metrics.totals.mailbox_high_water
    );
}

/// 256 units in 16 all-to-all cliques of 16: every unit exports its own
/// service and calls each clique peer exactly once, with unit identity
/// flowing through the thread argument so one program serves all 256
/// units. Exercises every registry shard (the names `ping0`..`ping255`
/// hash across all of them), the unresolved-request path (calls race
/// peers' exports), and blocking round trips in both directions at
/// once.
#[test]
fn all_to_all_ping_cliques_256_units_across_modes() {
    let units = 256usize;
    let clique = 16usize;
    let spec_for = |u: usize| UnitSpec {
        src: r#"
            class Ping {
                int handle(int x) { return x + 1; }
            }
            class Node {
                static int drive(int u) {
                    Service.export("ping" + u, new Ping());
                    int base = (u / 16) * 16;
                    int acc = 0;
                    for (int v = base; v < base + 16; v++) {
                        if (v != u) acc += Service.call("ping" + v, u);
                    }
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Node",
        method: "drive",
        thread_args: vec![u as i32],
    };
    let specs: Vec<UnitSpec> = (0..units).map(spec_for).collect();
    let (oracle, metrics) = assert_modes_agree(&specs, 2_000, 4_000, None, &[]);
    for (u, o) in oracle.iter().enumerate() {
        // Each of the 15 peers echoes back u + 1.
        let expect = (clique as i64 - 1) * (u as i64 + 1);
        assert_eq!(
            o.results[0],
            Ok(Some(expect.to_string())),
            "unit {u} pinged its whole clique"
        );
    }
    let calls = (units * (clique - 1)) as u64;
    assert_eq!(metrics.totals.calls_sent, calls);
    assert_eq!(metrics.totals.calls_served, calls);
}

/// A client that saturates its partner server then blocks inside it: a
/// handshake, a quota-parked oneway flood, then a `stall` call whose
/// handler blocks the server's pump forever. Each client/server pair is
/// independent (single producer per mailbox), so the whole 128-pair
/// system converges to a deterministic fixpoint — which is what lets a
/// mid-run kill land bit-identically in every mode.
fn pair_client(pair: usize, flood: i32) -> UnitSpec {
    UnitSpec {
        src: format!(
            r#"
            class Client {{
                static int drive(int n) {{
                    int ack = Service.call("echo{pair}", 0 - 1);
                    for (int i = 0; i < n; i++) {{
                        Port.send("echo{pair}", i);
                    }}
                    return ack + Service.call("echo{pair}", 0 - 2);
                }}
            }}
            "#
        ),
        entry: "Client",
        method: "drive",
        thread_args: vec![flood],
    }
}

fn pair_server(pair: usize) -> UnitSpec {
    UnitSpec {
        src: format!(
            r#"
            class Echo {{
                int handle(int x) {{
                    if (x == 0 - 1) return 0;
                    if (x == 0 - 2) return Service.call("gone", x);
                    return x;
                }}
            }}
            class Boot {{
                static int start(int n) {{
                    Service.export("echo{pair}", new Echo());
                    return n;
                }}
            }}
            "#
        ),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    }
}

/// The revocation storm: 128 saturated client/server pairs converge to
/// their blocked fixpoint (client parked inside a `stall` call, server
/// pump parked on a service nobody exports), then 64 server isolates
/// are terminated at once. Every revocation must fail its client's
/// in-flight call back deterministically; the untouched pairs must
/// stay at their fixpoint — bit-identically in every scheduler mode.
#[test]
fn revocation_storm_during_saturation_across_modes() {
    if isolation_lane() == IsolationMode::Shared {
        return; // no isolate termination in the shared lane
    }
    let pairs = 128usize;
    let flood = 4i32;
    let mut specs: Vec<UnitSpec> = Vec::new();
    for p in 0..pairs {
        specs.push(pair_server(p));
        specs.push(pair_client(p, flood));
    }
    // A kill is only deliverable once the unit has run `min_slices`
    // slices, and a converged (forever-parked) server stops slicing —
    // so aim each kill at the server's *exact* converged slice count,
    // measured from a kill-free oracle run. Delivery then lands at the
    // pair's blocked fixpoint in every mode: the count is reached only
    // on the server's final slice, after which the pair is frozen.
    let (_, _, _, slices) = run_scenario(
        &specs,
        SchedulerKind::Deterministic,
        2_000,
        4_000,
        Some((2, 1 << 20)),
        false,
        &[],
    );
    // Kill every even pair's server (unit index 2 * p).
    let kills: Vec<(usize, IsolateId, u64)> = (0..pairs)
        .step_by(2)
        .map(|p| (2 * p, IsolateId(0), slices[2 * p]))
        .collect();
    let (oracle, metrics) = assert_modes_agree(&specs, 2_000, 4_000, Some((2, 1 << 20)), &kills);
    for p in 0..pairs {
        let client = &oracle[2 * p + 1];
        if p % 2 == 0 {
            assert!(
                client.results[0].is_err(),
                "pair {p}: the revocation failed the client's in-flight \
                 stall call back, got {:?}",
                client.results[0]
            );
        } else {
            assert_eq!(
                client.outcome,
                RunOutcome::Blocked,
                "pair {p}: untouched pair stays at its blocked fixpoint"
            );
        }
    }
    assert!(
        metrics.totals.quota_parks > 0,
        "the floods saturated the 2-message quota before the storm"
    );
}

/// Satellite fix regression: the end-of-run [`HubStats`] snapshot of a
/// flood frozen mid-flight (the pump blocks forever, the flooder stays
/// quota-parked) must reconcile with the `VmMetrics` counters — the
/// coherent cross-shard collection is what makes `admitted`, `queued`
/// and `parked_senders` mutually consistent instead of torn between
/// shard locks.
#[test]
fn hub_snapshot_reconciles_with_metrics_mid_flood() {
    let quota = 4u32;
    let specs = vec![
        fan_in_flooder(64),
        UnitSpec {
            src: r#"
                class Sink {
                    int handle(int x) {
                        if (x < 0) return 7;
                        return Service.call("gone", x);
                    }
                }
                class Boot {
                    static int start(int n) {
                        Service.export("sink", new Sink());
                        return n;
                    }
                }
            "#
            .to_owned(),
            entry: "Boot",
            method: "start",
            thread_args: vec![1],
        },
    ];
    let (oracle, metrics, stats, _) = run_scenario(
        &specs,
        SchedulerKind::Deterministic,
        2_000,
        4_000,
        Some((quota, 1 << 20)),
        true,
        &[],
    );
    let metrics = metrics.expect("traced run");
    assert_eq!(oracle[0].outcome, RunOutcome::Blocked, "flooder parked");
    assert_eq!(oracle[1].outcome, RunOutcome::Blocked, "pump blocked");
    // The sink's pump blocked on `gone` before serving any flood
    // message, so the snapshot freezes the flood at full quota: the
    // admitted window is exactly `quota` and the flooder is parked.
    let sink = stats
        .mailboxes
        .iter()
        .find(|m| m.unit == 1)
        .expect("the sink's mailbox is mid-flood, so its row is live");
    assert_eq!(
        sink.admitted_messages, quota,
        "snapshot admitted window is the full quota"
    );
    assert_eq!(sink.parked_senders, 1, "the flooder's waiter is visible");
    assert!(
        sink.queued <= sink.admitted_messages as usize,
        "queued ({}) cannot exceed the admitted window ({})",
        sink.queued,
        sink.admitted_messages
    );
    assert_eq!(
        stats.unresolved_requests, 1,
        "the pump's `gone` call parks as the only unresolved request"
    );
    // Reconcile with the VM-side counters: every park the metrics saw
    // beyond the unparks is a waiter the snapshot must still show.
    assert_eq!(
        metrics.totals.quota_parks - metrics.totals.quota_unparks,
        sink.parked_senders as u64,
        "outstanding parks (parks {} - unparks {}) match the snapshot",
        metrics.totals.quota_parks,
        metrics.totals.quota_unparks
    );
}
