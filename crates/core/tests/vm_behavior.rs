//! Behavioural tests of the VM: limits, scheduling, monitors, class
//! initialization, garbage collection, termination edge cases.

use ijvm_core::ids::MethodRef;
use ijvm_core::isolate::IsolateState;
use ijvm_core::prelude::*;
use ijvm_core::thread::ThreadState;
use ijvm_core::vm::Vm;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

fn boot(options: VmOptions) -> Vm {
    ijvm_jsl::boot(options)
}

fn load(vm: &mut Vm, iso: IsolateId, src: &str, entry: &str) -> ClassId {
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    vm.load_class(loader, entry).unwrap()
}

fn spawn(
    vm: &mut Vm,
    class: ClassId,
    name: &str,
    desc: &str,
    args: Vec<Value>,
    iso: IsolateId,
) -> ThreadId {
    let index = vm.class(class).find_method(name, desc).unwrap();
    vm.spawn_thread(name, MethodRef { class, index }, args, iso)
        .unwrap()
}

// ---------------------------------------------------------------------
// Limits
// ---------------------------------------------------------------------

#[test]
fn heap_limit_raises_out_of_memory_error() {
    let mut o = VmOptions::isolated();
    o.heap_limit_bytes = 1 << 20;
    let mut vm = boot(o);
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        r#"
        class Hog {
            static Object[] keep = new Object[64];
            static int fill() {
                for (int i = 0; i < keep.length; i++) keep[i] = new int[65536];
                return 0;
            }
        }
        "#,
        "Hog",
    );
    let err = vm
        .call_static_as(class, "fill", "()I", vec![], iso)
        .unwrap_err();
    match err {
        VmError::UncaughtException { class_name, .. } => {
            assert_eq!(class_name, "java/lang/OutOfMemoryError");
        }
        other => panic!("expected OOM, got {other}"),
    }
}

#[test]
fn deep_recursion_raises_stack_overflow_error() {
    let mut o = VmOptions::isolated();
    o.max_frames = 128;
    let mut vm = boot(o);
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        "class R { static int down(int n) { return down(n + 1); } }",
        "R",
    );
    let err = vm
        .call_static_as(class, "down", "(I)I", vec![Value::Int(0)], iso)
        .unwrap_err();
    match err {
        VmError::UncaughtException { class_name, .. } => {
            assert_eq!(class_name, "java/lang/StackOverflowError");
        }
        other => panic!("expected SOE, got {other}"),
    }
}

#[test]
fn budget_exhaustion_is_reported() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        "class L { static int forever() { int x = 0; while (true) { x = x + 1; } } }",
        "L",
    );
    let _tid = spawn(&mut vm, class, "forever", "()I", vec![], iso);
    assert_eq!(vm.run(Some(100_000)), RunOutcome::BudgetExhausted);
}

// ---------------------------------------------------------------------
// Scheduling, monitors, deadlock
// ---------------------------------------------------------------------

#[test]
fn two_monitor_deadlock_is_detected() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        r#"
        class D {
            static Object a = new Object();
            static Object b = new Object();
            static void ab() {
                synchronized (a) {
                    Thread.sleep(2);
                    synchronized (b) { }
                }
            }
            static void ba() {
                synchronized (b) {
                    Thread.sleep(2);
                    synchronized (a) { }
                }
            }
        }
        "#,
        "D",
    );
    let _t1 = spawn(&mut vm, class, "ab", "()V", vec![], iso);
    let _t2 = spawn(&mut vm, class, "ba", "()V", vec![], iso);
    assert_eq!(vm.run(Some(50_000_000)), RunOutcome::Deadlock);
}

#[test]
fn synchronized_methods_are_reentrant() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        r#"
        class R {
            static synchronized int nest(int n) {
                if (n <= 0) return 0;
                return 1 + nest(n - 1);
            }
        }
        "#,
        "R",
    );
    let out = vm
        .call_static_as(class, "nest", "(I)I", vec![Value::Int(10)], iso)
        .unwrap();
    assert_eq!(out, Some(Value::Int(10)));
}

#[test]
fn interrupt_breaks_sleep_with_interrupted_exception() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        r#"
        class S {
            static int nap() {
                try {
                    Thread.sleep(1000000);
                    return 0;
                } catch (InterruptedException e) {
                    return 77;
                }
            }
        }
        "#,
        "S",
    );
    // A busy companion keeps the scheduler from fast-forwarding the
    // virtual clock through the sleep.
    let busy_class = load(
        &mut vm,
        iso,
        "class B { static int churn(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; } }",
        "B",
    );
    let tid = spawn(&mut vm, class, "nap", "()I", vec![], iso);
    let _busy = spawn(
        &mut vm,
        busy_class,
        "churn",
        "(I)I",
        vec![Value::Int(100_000_000)],
        iso,
    );
    let _ = vm.run(Some(100_000));
    assert!(matches!(
        vm.thread_state_of(tid).unwrap(),
        ThreadState::Sleeping { .. }
    ));
    vm.interrupt(tid);
    let _ = vm.run(Some(1_000_000));
    assert_eq!(vm.thread_result(tid), Some(Value::Int(77)));
}

// ---------------------------------------------------------------------
// Class initialization
// ---------------------------------------------------------------------

#[test]
fn clinit_runs_once_per_isolate() {
    let mut vm = boot(VmOptions::isolated());
    let a = vm.create_isolate("a");
    let b = vm.create_isolate("b");
    let src = r#"
        class Once {
            static int initCount = bump();
            static int bump() { return 1; }
            static int read() { return initCount; }
        }
    "#;
    // Both isolates share the class *code* through a delegate.
    let class = load(&mut vm, a, src, "Once");
    let la = vm.loader_of(a).unwrap();
    let lb = vm.loader_of(b).unwrap();
    vm.add_loader_delegate(lb, la);
    assert_eq!(
        vm.call_static_as(class, "read", "()I", vec![], a).unwrap(),
        Some(Value::Int(1))
    );
    assert_eq!(
        vm.call_static_as(class, "read", "()I", vec![], a).unwrap(),
        Some(Value::Int(1))
    );
    // Calling the method from isolate b migrates the thread INTO the
    // class's isolate (paper §3.1): it reads a's mirror, and b never
    // materializes one. (b would only get a mirror by a getstatic in its
    // own code — covered by the workspace integration tests.)
    assert_eq!(
        vm.call_static_as(class, "read", "()I", vec![], b).unwrap(),
        Some(Value::Int(1))
    );
    assert!(vm.class(class).mirror(a).is_some());
    assert!(vm.class(class).mirror(b).is_none());
}

#[test]
fn failed_clinit_poisons_the_class_for_that_isolate() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        r#"
        class Bad {
            static int boom = explode();
            static int explode() { int[] xs = new int[1]; return xs[5]; }
            static int read() { return boom; }
        }
        "#,
        "Bad",
    );
    let first = vm
        .call_static_as(class, "read", "()I", vec![], iso)
        .unwrap_err();
    assert!(matches!(first, VmError::UncaughtException { .. }));
    let second = vm
        .call_static_as(class, "read", "()I", vec![], iso)
        .unwrap_err();
    match second {
        VmError::UncaughtException { class_name, .. } => {
            assert_eq!(class_name, "java/lang/NoClassDefFoundError");
        }
        other => panic!("expected NoClassDefFoundError, got {other}"),
    }
}

// ---------------------------------------------------------------------
// GC and pinning
// ---------------------------------------------------------------------

#[test]
fn pinned_objects_survive_collection_and_unpinned_die() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let s = vm.new_string(iso, "keep me");
    let pin = vm.pin(s);
    vm.collect_garbage(None);
    assert!(vm.heap().is_live(s));
    assert_eq!(vm.read_string(s).as_deref(), Some("keep me"));
    vm.unpin(pin);
    vm.collect_garbage(None);
    assert!(!vm.heap().is_live(s));
}

#[test]
fn interned_strings_are_identical_within_an_isolate() {
    let mut vm = boot(VmOptions::isolated());
    let a = vm.create_isolate("a");
    let b = vm.create_isolate("b");
    let s1 = vm.intern_string(a, "tok");
    let s2 = vm.intern_string(a, "tok");
    let s3 = vm.intern_string(b, "tok");
    assert_eq!(s1, s2, "same isolate interns to the same object");
    assert_ne!(s1, s3, "different isolates have private string maps");
}

#[test]
fn unicode_strings_round_trip() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    for text in [
        "",
        "ascii",
        "héllo wörld",
        "日本語テキスト",
        "mixed 漢字 and λ",
    ] {
        let s = vm.new_string(iso, text);
        assert_eq!(vm.read_string(s).as_deref(), Some(text));
    }
}

#[test]
fn gc_recomputes_live_bytes_after_release() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        r#"
        class M {
            static Object held;
            static int grab() { held = new int[10000]; return 1; }
            static int drop() { held = null; return 1; }
        }
        "#,
        "M",
    );
    vm.call_static_as(class, "grab", "()I", vec![], iso)
        .unwrap();
    vm.collect_garbage(None);
    let live_holding = vm.isolate_stats(iso).unwrap().live_bytes;
    assert!(live_holding >= 40_000, "held array charged: {live_holding}");
    vm.call_static_as(class, "drop", "()I", vec![], iso)
        .unwrap();
    vm.collect_garbage(None);
    let live_after = vm.isolate_stats(iso).unwrap().live_bytes;
    assert!(
        live_after < live_holding - 39_000,
        "released: {live_after} < {live_holding}"
    );
}

// ---------------------------------------------------------------------
// Termination edge cases
// ---------------------------------------------------------------------

#[test]
fn terminate_is_idempotent_and_shared_mode_refuses() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    vm.terminate_isolate(iso).unwrap();
    vm.terminate_isolate(iso).unwrap(); // second call is a no-op
    assert_ne!(vm.isolate_state(iso).unwrap(), IsolateState::Active);

    let mut shared = boot(VmOptions::shared());
    let iso = shared.create_isolate("t");
    assert!(
        shared.terminate_isolate(iso).is_err(),
        "baseline has no termination"
    );
}

#[test]
fn terminated_isolate_becomes_dead_once_unreferenced() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        "class T { static Object make() { return new T(); } }",
        "T",
    );
    let obj = vm
        .call_static_as(class, "make", "()Ljava/lang/Object;", vec![], iso)
        .unwrap()
        .unwrap();
    let Value::Ref(obj) = obj else { panic!() };
    let pin = vm.pin(obj);

    vm.terminate_isolate(iso).unwrap();
    // A live instance of the isolate's class pins the isolate in
    // Terminating state (paper §3.3).
    assert_eq!(vm.isolate_state(iso).unwrap(), IsolateState::Terminating);
    vm.unpin(pin);
    // The factory thread's result slot also roots the object until
    // cleared (finished threads keep their results for the host).
    for t in 0..vm.thread_count() {
        vm.clear_thread_result(ThreadId(t as u32));
    }
    vm.collect_garbage(None);
    assert_eq!(vm.isolate_state(iso).unwrap(), IsolateState::Dead);
}

#[test]
fn calls_into_terminated_isolates_throw() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        "class T { static int f() { return 1; } }",
        "T",
    );
    assert_eq!(
        vm.call_static_as(class, "f", "()I", vec![], iso).unwrap(),
        Some(Value::Int(1))
    );
    vm.terminate_isolate(iso).unwrap();
    // Even a fresh thread pointed at the dead isolate's code dies with
    // StoppedIsolateException... but spawning *as* the dead isolate is a
    // host error scenario; spawn from another isolate and call across.
    let other = vm.create_isolate("caller");
    let lo = vm.loader_of(other).unwrap();
    let lt = vm.loader_of(iso).unwrap();
    vm.add_loader_delegate(lo, lt);
    for (name, bytes) in compile_to_bytes(
        r#"
        class C {
            static int callDead() {
                try { return T.f(); } catch (StoppedIsolateException e) { return -9; }
            }
        }
        "#,
        &{
            let mut cenv = CompileEnv::new();
            // T's signature for the import.
            cenv.import_signature(ijvm_minijava::ClassInfo {
                internal: "T".into(),
                is_interface: false,
                superclass: Some("java/lang/Object".into()),
                interfaces: vec![],
                fields: vec![],
                methods: vec![ijvm_minijava::MethodSig {
                    name: "f".into(),
                    params: vec![],
                    ret: ijvm_minijava::Ty::Int,
                    is_static: true,
                }],
            });
            cenv
        },
    )
    .unwrap()
    {
        vm.add_class_bytes(lo, &name, bytes);
    }
    let caller = vm.load_class(lo, "C").unwrap();
    let out = vm
        .call_static_as(caller, "callDead", "()I", vec![], other)
        .unwrap();
    assert_eq!(out, Some(Value::Int(-9)));
}

// ---------------------------------------------------------------------
// Accounting plumbing
// ---------------------------------------------------------------------

#[test]
fn io_and_connection_accounting() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        r#"
        class Io {
            static int chat() {
                VConnection c = VConnection.connect();
                int got = c.read(100);
                c.write(40);
                c.close();
                return got;
            }
        }
        "#,
        "Io",
    );
    let out = vm
        .call_static_as(class, "chat", "()I", vec![], iso)
        .unwrap();
    assert_eq!(out, Some(Value::Int(100)));
    let stats = vm.isolate_stats(iso).unwrap();
    assert_eq!(stats.io_read_bytes, 100);
    assert_eq!(stats.io_written_bytes, 40);
    assert_eq!(stats.connections_opened, 1);
}

#[test]
fn cpu_exact_and_sampled_both_accumulate() {
    let mut vm = boot(VmOptions::isolated());
    let iso = vm.create_isolate("t");
    let class = load(
        &mut vm,
        iso,
        "class W { static int work(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; } }",
        "W",
    );
    vm.call_static_as(class, "work", "(I)I", vec![Value::Int(200_000)], iso)
        .unwrap();
    let stats = vm.isolate_stats(iso).unwrap();
    assert!(
        stats.cpu_sampled > 500_000,
        "sampled: {}",
        stats.cpu_sampled
    );
    assert!(stats.cpu_exact > 500_000, "exact: {}", stats.cpu_exact);
    // Sampling is quantum-grained; both counters describe the same work.
    let ratio = stats.cpu_sampled as f64 / stats.cpu_exact as f64;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn metadata_footprint_grows_with_isolates() {
    let mut vm = boot(VmOptions::isolated());
    let a = vm.create_isolate("a");
    let src = "class K { static int x = 5; static int r() { return x; } }";
    let class = load(&mut vm, a, src, "K");
    vm.call_static_as(class, "r", "()I", vec![], a).unwrap();
    let one = vm.metadata_bytes();
    // A second isolate using the same class doubles its mirror storage.
    let b = vm.create_isolate("b");
    let lb = vm.loader_of(b).unwrap();
    let la = vm.loader_of(a).unwrap();
    vm.add_loader_delegate(lb, la);
    vm.call_static_as(class, "r", "()I", vec![], b).unwrap();
    let two = vm.metadata_bytes();
    assert!(
        two > one,
        "mirrors for a second isolate cost memory ({one} -> {two})"
    );
}
