//! Interpreter edge cases exercised through hand-assembled bytecode —
//! opcodes and corner semantics the mini-Java compiler never emits.

use ijvm_classfile::{AccessFlags, BaseType, ClassBuilder, Opcode};
use ijvm_core::prelude::*;
use ijvm_core::vm::Vm;

const STATIC: AccessFlags = AccessFlags(AccessFlags::PUBLIC.0 | AccessFlags::STATIC.0);

/// Builds a VM with one isolate and installs `build`'s class.
fn vm_with(build: impl FnOnce(&mut ClassBuilder)) -> (Vm, ClassId, IsolateId) {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let iso = vm.create_isolate("edge");
    let loader = vm.loader_of(iso).unwrap();
    let mut cb = ClassBuilder::new("Edge", "java/lang/Object", AccessFlags::PUBLIC);
    build(&mut cb);
    let bytes = ijvm_classfile::writer::write_class(&cb.build().unwrap()).unwrap();
    vm.add_class_bytes(loader, "Edge", bytes);
    let class = vm.load_class(loader, "Edge").unwrap();
    (vm, class, iso)
}

fn run_i(vm: &mut Vm, class: ClassId, iso: IsolateId, name: &str, args: Vec<Value>) -> Value {
    let desc = format!("({})I", "I".repeat(args.len()));
    vm.call_static_as(class, name, &desc, args, iso)
        .unwrap()
        .unwrap()
}

#[test]
fn tableswitch_dispatch_and_default() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("sel", "(I)I", STATIC);
        let l0 = m.new_label();
        let l1 = m.new_label();
        let l2 = m.new_label();
        let def = m.new_label();
        m.iload(0);
        m.tableswitch(def, 10, &[l0, l1, l2]);
        m.bind(l0);
        m.const_int(100);
        m.op(Opcode::Ireturn);
        m.bind(l1);
        m.const_int(200);
        m.op(Opcode::Ireturn);
        m.bind(l2);
        m.const_int(300);
        m.op(Opcode::Ireturn);
        m.bind(def);
        m.const_int(-1);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    for (input, expect) in [(10, 100), (11, 200), (12, 300), (9, -1), (13, -1), (-5, -1)] {
        assert_eq!(
            run_i(&mut vm, class, iso, "sel", vec![Value::Int(input)]),
            Value::Int(expect),
            "tableswitch({input})"
        );
    }
}

#[test]
fn lookupswitch_sparse_keys() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("sel", "(I)I", STATIC);
        let a = m.new_label();
        let b = m.new_label();
        let def = m.new_label();
        m.iload(0);
        m.lookupswitch(def, &[(-100, a), (7777, b)]);
        m.bind(a);
        m.const_int(1);
        m.op(Opcode::Ireturn);
        m.bind(b);
        m.const_int(2);
        m.op(Opcode::Ireturn);
        m.bind(def);
        m.const_int(0);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(
        run_i(&mut vm, class, iso, "sel", vec![Value::Int(-100)]),
        Value::Int(1)
    );
    assert_eq!(
        run_i(&mut vm, class, iso, "sel", vec![Value::Int(7777)]),
        Value::Int(2)
    );
    assert_eq!(
        run_i(&mut vm, class, iso, "sel", vec![Value::Int(0)]),
        Value::Int(0)
    );
}

#[test]
fn dup_x_and_swap_family() {
    // Computes: given a=1 b=2 c=3 on the stack, dup_x2 then folds with
    // iadd three times: 3 + (1 + (2 + 3)) = 9 — exercises slot rotation.
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("rot", "()I", STATIC);
        m.const_int(1);
        m.const_int(2);
        m.const_int(3); // stack: 1 2 3
        m.op(Opcode::DupX2); // 3 1 2 3
        m.op(Opcode::Iadd); // 3 1 5
        m.op(Opcode::Iadd); // 3 6
        m.op(Opcode::Iadd); // 9
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        let mut m = cb.method("swp", "()I", STATIC);
        m.const_int(10);
        m.const_int(3);
        m.op(Opcode::Swap);
        m.op(Opcode::Isub); // 3 - 10
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        let mut m = cb.method("d2x1", "()I", STATIC);
        m.const_int(5);
        m.const_int(1);
        m.const_int(2); // 5 1 2
        m.op(Opcode::Dup2X1); // 1 2 5 1 2
        m.op(Opcode::Iadd); // 1 2 5 3
        m.op(Opcode::Iadd); // 1 2 8
        m.op(Opcode::Iadd); // 1 10
        m.op(Opcode::Iadd); // 11
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(run_i(&mut vm, class, iso, "rot", vec![]), Value::Int(9));
    assert_eq!(run_i(&mut vm, class, iso, "swp", vec![]), Value::Int(-7));
    assert_eq!(run_i(&mut vm, class, iso, "d2x1", vec![]), Value::Int(11));
}

#[test]
fn float_nan_comparison_directions() {
    // fcmpl pushes -1 on NaN; fcmpg pushes +1 on NaN (JVM spec).
    let (mut vm, class, iso) = vm_with(|cb| {
        for (name, op) in [("cl", Opcode::Fcmpl), ("cg", Opcode::Fcmpg)] {
            let mut m = cb.method(name, "()I", STATIC);
            m.const_float(f32::NAN);
            m.const_float(1.0);
            m.op(op);
            m.op(Opcode::Ireturn);
            m.done().unwrap();
        }
    });
    assert_eq!(run_i(&mut vm, class, iso, "cl", vec![]), Value::Int(-1));
    assert_eq!(run_i(&mut vm, class, iso, "cg", vec![]), Value::Int(1));
}

#[test]
fn float_to_int_conversions_saturate() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("nan", "()I", STATIC);
        m.const_float(f32::NAN);
        m.op(Opcode::F2i);
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        let mut m = cb.method("posinf", "()I", STATIC);
        m.const_double(f64::INFINITY);
        m.op(Opcode::D2i);
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        let mut m = cb.method("neginf", "()I", STATIC);
        m.const_double(f64::NEG_INFINITY);
        m.op(Opcode::D2i);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(run_i(&mut vm, class, iso, "nan", vec![]), Value::Int(0));
    assert_eq!(
        run_i(&mut vm, class, iso, "posinf", vec![]),
        Value::Int(i32::MAX)
    );
    assert_eq!(
        run_i(&mut vm, class, iso, "neginf", vec![]),
        Value::Int(i32::MIN)
    );
}

#[test]
fn integer_overflow_wraps_and_min_div_minus_one() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("ovf", "()I", STATIC);
        m.const_int(i32::MAX);
        m.const_int(1);
        m.op(Opcode::Iadd);
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        // Integer.MIN_VALUE / -1 wraps to MIN_VALUE in Java (no trap).
        let mut m = cb.method("mindiv", "()I", STATIC);
        m.const_int(i32::MIN);
        m.const_int(-1);
        m.op(Opcode::Idiv);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(
        run_i(&mut vm, class, iso, "ovf", vec![]),
        Value::Int(i32::MIN)
    );
    assert_eq!(
        run_i(&mut vm, class, iso, "mindiv", vec![]),
        Value::Int(i32::MIN)
    );
}

#[test]
fn shift_counts_are_masked() {
    let (mut vm, class, iso) = vm_with(|cb| {
        // 1 << 33 == 1 << 1 for ints (count masked to 5 bits).
        let mut m = cb.method("shl33", "()I", STATIC);
        m.const_int(1);
        m.const_int(33);
        m.op(Opcode::Ishl);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(run_i(&mut vm, class, iso, "shl33", vec![]), Value::Int(2));
}

#[test]
fn athrow_null_becomes_npe() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("boom", "()I", STATIC);
        m.const_null();
        m.op(Opcode::Athrow);
        m.done().unwrap();
    });
    let err = vm
        .call_static_as(class, "boom", "()I", vec![], iso)
        .unwrap_err();
    match err {
        VmError::UncaughtException { class_name, .. } => {
            assert_eq!(class_name, "java/lang/NullPointerException");
        }
        other => panic!("expected NPE, got {other}"),
    }
}

#[test]
fn checkcast_passes_null_and_instanceof_rejects_it() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("castnull", "()I", STATIC);
        m.const_null();
        m.checkcast("java/lang/String");
        m.op(Opcode::Pop);
        m.const_int(1);
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        let mut m = cb.method("instnull", "()I", STATIC);
        m.const_null();
        m.instanceof("java/lang/String");
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(
        run_i(&mut vm, class, iso, "castnull", vec![]),
        Value::Int(1)
    );
    assert_eq!(
        run_i(&mut vm, class, iso, "instnull", vec![]),
        Value::Int(0)
    );
}

#[test]
fn arrays_are_instances_of_object_only() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("arrobj", "()I", STATIC);
        m.const_int(3);
        m.newarray(BaseType::Int);
        m.instanceof("java/lang/Object");
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        let mut m = cb.method("arrstr", "()I", STATIC);
        m.const_int(3);
        m.newarray(BaseType::Int);
        m.instanceof("java/lang/String");
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(run_i(&mut vm, class, iso, "arrobj", vec![]), Value::Int(1));
    assert_eq!(run_i(&mut vm, class, iso, "arrstr", vec![]), Value::Int(0));
}

#[test]
fn negative_array_size_throws() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("neg", "(I)I", STATIC);
        m.iload(0);
        m.newarray(BaseType::Long);
        m.op(Opcode::Arraylength);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(
        run_i(&mut vm, class, iso, "neg", vec![Value::Int(4)]),
        Value::Int(4)
    );
    let err = vm
        .call_static_as(class, "neg", "(I)I", vec![Value::Int(-1)], iso)
        .unwrap_err();
    match err {
        VmError::UncaughtException { class_name, .. } => {
            assert_eq!(class_name, "java/lang/NegativeArraySizeException");
        }
        other => panic!("expected NegativeArraySizeException, got {other}"),
    }
}

#[test]
fn long_constants_via_ldc2w_and_lcmp() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("big", "()I", STATIC);
        m.const_long(0x1234_5678_9ABC_DEF0u64 as i64);
        m.const_long(0x1234_5678_9ABC_DEF0u64 as i64);
        m.op(Opcode::Lcmp);
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        let mut m = cb.method("ucmp", "()I", STATIC);
        m.const_long(-1);
        m.const_long(1);
        m.op(Opcode::Lcmp);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(run_i(&mut vm, class, iso, "big", vec![]), Value::Int(0));
    assert_eq!(run_i(&mut vm, class, iso, "ucmp", vec![]), Value::Int(-1));
}

#[test]
fn remainder_semantics_for_floats_and_negatives() {
    let (mut vm, class, iso) = vm_with(|cb| {
        let mut m = cb.method("iremneg", "()I", STATIC);
        m.const_int(-7);
        m.const_int(3);
        m.op(Opcode::Irem);
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        // drem keeps the dividend's sign: -7.5 % 2.0 == -1.5 -> (int)-1
        let mut m = cb.method("dremneg", "()I", STATIC);
        m.const_double(-7.5);
        m.const_double(2.0);
        m.op(Opcode::Drem);
        m.op(Opcode::D2i);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    assert_eq!(
        run_i(&mut vm, class, iso, "iremneg", vec![]),
        Value::Int(-1)
    );
    assert_eq!(
        run_i(&mut vm, class, iso, "dremneg", vec![]),
        Value::Int(-1)
    );
}

#[test]
fn i2b_i2c_i2s_truncate() {
    let (mut vm, class, iso) = vm_with(|cb| {
        for (name, op) in [("b", Opcode::I2b), ("c", Opcode::I2c), ("s", Opcode::I2s)] {
            let mut m = cb.method(name, "(I)I", STATIC);
            m.iload(0);
            m.op(op);
            m.op(Opcode::Ireturn);
            m.done().unwrap();
        }
    });
    assert_eq!(
        run_i(&mut vm, class, iso, "b", vec![Value::Int(0x181)]),
        Value::Int(-127)
    );
    assert_eq!(
        run_i(&mut vm, class, iso, "c", vec![Value::Int(-1)]),
        Value::Int(0xFFFF)
    );
    assert_eq!(
        run_i(&mut vm, class, iso, "s", vec![Value::Int(0x18000)]),
        Value::Int(-32768)
    );
}
