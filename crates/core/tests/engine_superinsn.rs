//! Superinstruction differential tests: a stream with the peephole fused
//! must execute *identically* to the unfused stream (and to the raw byte
//! interpreter) — same results, same guest instruction counts (fused
//! forms charge their full logical width), and the same deterministic
//! thread interleaving, because fused forms de-fuse at quantum
//! boundaries instead of overrunning the budget.

use ijvm_classfile::writer::write_class;
use ijvm_classfile::{AccessFlags, ClassBuilder, Opcode};
use ijvm_core::engine::EngineKind;
use ijvm_core::prelude::*;
use proptest::prelude::*;

const STATIC: AccessFlags = AccessFlags(AccessFlags::PUBLIC.0 | AccessFlags::STATIC.0);

const CMP_OPS: [Opcode; 6] = [
    Opcode::IfIcmpeq,
    Opcode::IfIcmpne,
    Opcode::IfIcmplt,
    Opcode::IfIcmpge,
    Opcode::IfIcmpgt,
    Opcode::IfIcmple,
];

/// Assembles a random but well-formed static method `run()I` from
/// structured chunks that keep the operand stack empty between chunks.
/// The menu is biased toward the fuseable shapes (`Load+Load+Iadd+Store`,
/// `Load+{IConst,Load}+IfICmp`) so fused cells actually appear, and every
/// branch is a short forward skip, so all programs terminate.
fn build_program(ops: &[u8]) -> Vec<u8> {
    let mut cb = ClassBuilder::new("P", "java/lang/Object", AccessFlags::PUBLIC);
    let mut m = cb.method("run", "()I", STATIC);
    // Seed the four locals with distinct values.
    for slot in 0..4u16 {
        m.const_int(7 * slot as i32 + 1);
        m.istore(slot);
    }
    for &op in ops {
        let a = (op % 4) as u16;
        let b = (op / 4 % 4) as u16;
        let c = (op / 16 % 4) as u16;
        let cmp = CMP_OPS[(op / 7 % 6) as usize];
        match op % 5 {
            // The accumulate shape (fuses to AddStore).
            0 => {
                m.iload(a);
                m.iload(b);
                m.op(Opcode::Iadd);
                m.istore(c);
            }
            // Compare-with-constant branch (fuses to FusedCmpBr).
            1 => {
                let skip = m.new_label();
                m.iload(a);
                m.const_int(op as i32 * 3 - 128);
                m.branch(cmp, skip);
                m.iinc(b, 1);
                m.bind(skip);
            }
            // Compare-two-locals branch (fuses to FusedCmpBr).
            2 => {
                let skip = m.new_label();
                m.iload(a);
                m.iload(b);
                m.branch(cmp, skip);
                m.iinc(c, -3);
                m.bind(skip);
            }
            // Plain arithmetic that must stay unfused.
            3 => {
                m.iload(a);
                m.const_int(op as i32);
                m.op(Opcode::Ixor);
                m.istore(b);
            }
            _ => {
                m.iinc(a, (op % 200) as i16 - 100);
            }
        }
    }
    // Mix all four locals into the result.
    m.iload(0);
    m.iload(1);
    m.op(Opcode::Iadd);
    m.iload(2);
    m.op(Opcode::Iadd);
    m.iload(3);
    m.op(Opcode::Ixor);
    m.op(Opcode::Ireturn);
    m.done().unwrap();
    write_class(&cb.build().unwrap()).unwrap()
}

/// Runs the program under the given engine/fusion/quantum configuration,
/// returning `(result, vclock)`.
fn run_program(bytes: &[u8], engine: EngineKind, fuse: bool, quantum: u32) -> (String, u64) {
    let mut options = VmOptions::isolated()
        .with_engine(engine)
        .with_superinstructions(fuse);
    options.quantum = quantum;
    let mut vm = ijvm_jsl::boot(options);
    let iso = vm.create_isolate("prog");
    let loader = vm.loader_of(iso).unwrap();
    vm.add_class_bytes(loader, "P", bytes.to_vec());
    let class = vm.load_class(loader, "P").unwrap();
    let outcome = vm.call_static_as(class, "run", "()I", vec![], iso);
    let result = match outcome {
        Ok(v) => format!("{v:?}"),
        Err(e) => format!("err: {e}"),
    };
    (result, vm.vclock())
}

proptest! {
    #[test]
    fn fused_and_unfused_streams_execute_identically(
        ops in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let bytes = build_program(&ops);
        let raw = run_program(&bytes, EngineKind::Raw, true, 10_000);
        for engine in [EngineKind::Quickened, EngineKind::Threaded] {
            let unfused = run_program(&bytes, engine, false, 10_000);
            let fused = run_program(&bytes, engine, true, 10_000);
            prop_assert_eq!(&raw, &unfused, "raw vs {:?}-unfused diverged", engine);
            prop_assert_eq!(&unfused, &fused, "{:?} unfused vs fused diverged", engine);
        }
    }

    #[test]
    fn fusion_is_quantum_invariant(
        ops in proptest::collection::vec(any::<u8>(), 0..80),
        quantum in 1u32..40,
    ) {
        // Tiny quanta force suspension inside fused patterns: the fused
        // stream must de-fuse at the boundary and resume through the
        // intact tail cells, bit-identical to the unfused stream.
        let bytes = build_program(&ops);
        for engine in [EngineKind::Quickened, EngineKind::Threaded] {
            let unfused = run_program(&bytes, engine, false, quantum);
            let fused = run_program(&bytes, engine, true, quantum);
            prop_assert_eq!(&unfused, &fused, "{:?} quantum {} diverged", engine, quantum);
            let wide = run_program(&bytes, engine, true, 1_000_000);
            prop_assert_eq!(fused.1, wide.1, "{:?} vclock must not depend on the quantum", engine);
        }
    }
}

/// The frame pool actually recycles: mid-workload, a call-heavy thread
/// must hold recycled buffers (returned frames feed the pool, fused
/// invokes drain it) — and a *terminated* thread must hold none, because
/// its pool could never be drained again.
#[test]
fn frame_pool_recycles_call_frames() {
    use ijvm_core::ids::MethodRef;

    let src = r#"
        class W {
            static int step(int x) { return x + 1; }
            static int spin(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) { acc += step(i); }
                return acc;
            }
        }
    "#;
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let iso = vm.create_isolate("pool");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in
        ijvm_minijava::compile_to_bytes(src, &ijvm_minijava::CompileEnv::new()).unwrap()
    {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, "W").unwrap();
    let index = vm.class(class).find_method("spin", "(I)I").unwrap();
    let tid = vm
        .spawn_thread(
            "spinner",
            MethodRef { class, index },
            vec![Value::Int(10_000)],
            iso,
        )
        .unwrap();

    // Stop mid-loop: thousands of step() frames have been pushed and
    // popped, so the live thread's pool must hold recycled buffers.
    assert_eq!(vm.run(Some(60_000)), RunOutcome::BudgetExhausted);
    assert!(
        vm.thread(tid).unwrap().frame_pool.pooled() > 0,
        "call frames were never recycled"
    );

    // Run to completion: the result is right, and the terminated
    // thread's pool has been dropped (it can never be drained again).
    assert_eq!(vm.run(None), RunOutcome::Idle);
    assert_eq!(
        vm.thread_result(tid),
        Some(Value::Int(50_005_000)),
        "workload result"
    );
    let dead = vm.thread(tid).unwrap();
    assert!(dead.is_terminated());
    assert_eq!(dead.frame_pool.pooled(), 0, "terminated pool must drop");
}
