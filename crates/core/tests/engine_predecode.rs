//! Golden tests for the pre-decoder: classfile bytes → `XInsn` stream
//! (fused and unfused), plus property tests for the pc↔index maps.

use ijvm_classfile::{AccessFlags, ClassBuilder, ClassFile, Opcode};
use ijvm_core::class::CodeBody;
use ijvm_core::engine::{
    predecode, predecode_with, Cmp, CmpRhs, FusedCmp, PreparedCode, SwitchTable, TrapKind, XInsn,
    BAD_TARGET,
};
use proptest::prelude::*;

const STATIC: AccessFlags = AccessFlags(AccessFlags::PUBLIC.0 | AccessFlags::STATIC.0);

/// Builds a one-class file and pre-decodes `method`'s code with the
/// superinstruction peephole enabled (the production default).
fn predecode_method(cf: &ClassFile, method: &str) -> PreparedCode {
    predecode_method_with(cf, method, true)
}

fn predecode_method_with(cf: &ClassFile, method: &str, fuse: bool) -> PreparedCode {
    let m = cf
        .methods
        .iter()
        .find(|m| cf.pool.utf8_at(m.name).unwrap() == method)
        .expect("method exists");
    let code = m.code.as_ref().expect("method has code");
    let body = CodeBody {
        max_stack: code.max_stack,
        max_locals: code.max_locals,
        bytes: code.code.clone(),
        handlers: code.exception_table.clone(),
    };
    predecode_with(&body, &cf.pool, fuse)
}

fn build_class(build: impl FnOnce(&mut ClassBuilder)) -> ClassFile {
    let mut cb = ClassBuilder::new("G", "java/lang/Object", AccessFlags::PUBLIC);
    build(&mut cb);
    cb.build().expect("builds")
}

/// The decoded stream minus the fell-off-end guard every stream ends
/// with (asserted separately in `streams_end_with_guard`).
fn body_insns(p: &PreparedCode) -> Vec<XInsn> {
    let all: Vec<XInsn> = p.insns.iter().map(|c| c.get()).collect();
    assert_eq!(*all.last().unwrap(), XInsn::Trap(TrapKind::FellOffEnd));
    all[..all.len() - 1].to_vec()
}

/// The arithmetic-loop classfile shared by the fused/unfused goldens:
/// `static int sum(int n) { int acc = 0; for (i = 0; i < n; i++) acc += i; return acc; }`
fn arithmetic_loop_class() -> ClassFile {
    build_class(|cb| {
        let mut m = cb.method("sum", "(I)I", STATIC);
        let head = m.new_label();
        let exit = m.new_label();
        m.const_int(0); // acc
        m.istore(1);
        m.const_int(0); // i
        m.istore(2);
        m.bind(head);
        m.iload(2);
        m.iload(0);
        m.branch(Opcode::IfIcmpge, exit);
        m.iload(1);
        m.iload(2);
        m.op(Opcode::Iadd);
        m.istore(1);
        m.iinc(2, 1);
        m.goto(head);
        m.bind(exit);
        m.iload(1);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    })
}

#[test]
fn golden_arithmetic_loop_unfused() {
    let cf = arithmetic_loop_class();
    let p = predecode_method_with(&cf, "sum", false);
    let insns = body_insns(&p);
    // Every *load/*store family collapses to typeless Load/Store; the
    // loop-head branch targets are instruction indices.
    assert_eq!(
        insns,
        vec![
            XInsn::IConst(0),
            XInsn::Store(1),
            XInsn::IConst(0),
            XInsn::Store(2),
            XInsn::Load(2), // index 4 == loop head
            XInsn::Load(0),
            XInsn::IfICmp {
                cmp: Cmp::Ge,
                target: 13
            },
            XInsn::Load(1),
            XInsn::Load(2),
            XInsn::Iadd,
            XInsn::Store(1),
            XInsn::Iinc { slot: 2, delta: 1 },
            XInsn::Goto(4),
            XInsn::Load(1), // index 13 == loop exit
            XInsn::ReturnValue,
        ]
    );
    assert!(p.fused_cmps.is_empty());
}

#[test]
fn golden_arithmetic_loop_fused() {
    // The same loop with the peephole on: the loop-head compare fuses to
    // FusedCmpBr (Load+Load+IfICmp) and the accumulate body to AddStore
    // (Load+Load+Iadd+Store). Fusion is non-destructive: only the first
    // cell of each pattern is rewritten; the tails keep their original
    // instructions so mid-pattern branch targets and resume pcs work.
    let cf = arithmetic_loop_class();
    let p = predecode_method(&cf, "sum");
    let insns = body_insns(&p);
    assert_eq!(
        insns,
        vec![
            XInsn::IConst(0),
            XInsn::Store(1),
            XInsn::IConst(0),
            XInsn::Store(2),
            XInsn::FusedCmpBr(0), // index 4 == loop head, fused width 3
            XInsn::Load(0),       // pattern tail, intact
            XInsn::IfICmp {
                cmp: Cmp::Ge,
                target: 13
            },
            XInsn::AddStore { a: 1, b: 2, c: 1 }, // fused width 4
            XInsn::Load(2),                       // pattern tail, intact
            XInsn::Iadd,
            XInsn::Store(1),
            XInsn::Iinc { slot: 2, delta: 1 },
            XInsn::Goto(4),
            XInsn::Load(1), // index 13 == loop exit
            XInsn::ReturnValue,
        ]
    );
    assert_eq!(
        p.fused_cmps.as_ref(),
        &[FusedCmp {
            slot: 2,
            rhs: CmpRhs::Local(0),
            cmp: Cmp::Ge,
            target: 13,
        }]
    );
    // The pc↔index maps are identical to the unfused stream's.
    let unfused = predecode_method_with(&cf, "sum", false);
    assert_eq!(p.idx_to_pc, unfused.idx_to_pc);
    assert_eq!(p.pc_to_idx, unfused.pc_to_idx);
}

#[test]
fn golden_load_const_compare_fuses() {
    // while (i < 100) { i++; }  — the Load+IConst+IfICmp family.
    let cf = build_class(|cb| {
        let mut m = cb.method("spin", "()I", STATIC);
        let head = m.new_label();
        let exit = m.new_label();
        m.const_int(0);
        m.istore(0);
        m.bind(head);
        m.iload(0);
        m.const_int(100);
        m.branch(Opcode::IfIcmpge, exit);
        m.iinc(0, 1);
        m.goto(head);
        m.bind(exit);
        m.iload(0);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    let p = predecode_method(&cf, "spin");
    let insns = body_insns(&p);
    let XInsn::FusedCmpBr(si) = insns[2] else {
        panic!(
            "expected fused compare at the loop head, got {:?}",
            insns[2]
        );
    };
    assert_eq!(
        p.fused_cmps[si as usize],
        FusedCmp {
            slot: 0,
            rhs: CmpRhs::Const(100),
            cmp: Cmp::Ge,
            target: 7,
        }
    );
    // Tail cells keep the original instructions.
    assert_eq!(insns[3], XInsn::IConst(100));
    assert!(matches!(insns[4], XInsn::IfICmp { .. }));
}

#[test]
fn golden_numeric_ldc_folds_to_immediates() {
    let cf = build_class(|cb| {
        let mut m = cb.method("k", "()D", STATIC);
        m.const_int(123_456_789); // too wide for sipush: goes through ldc
        m.op(Opcode::Pop);
        m.const_long(1 << 40);
        m.op(Opcode::Pop);
        m.const_float(2.5);
        m.op(Opcode::Pop);
        m.const_double(6.25);
        m.op(Opcode::Dreturn);
        m.done().unwrap();
    });
    let p = predecode_method(&cf, "k");
    let insns = body_insns(&p);
    assert_eq!(
        insns,
        vec![
            XInsn::IConst(123_456_789),
            XInsn::Pop,
            XInsn::LConst(1 << 40),
            XInsn::Pop,
            XInsn::FConst(2.5),
            XInsn::Pop,
            XInsn::DConst(6.25),
            XInsn::ReturnValue,
        ]
    );
}

#[test]
fn golden_pool_indexed_ops_start_in_slow_form() {
    let cf = build_class(|cb| {
        cb.field("counter", "I", STATIC);
        let mut m = cb.method("touch", "(LG;)V", STATIC);
        m.getstatic("G", "counter", "I");
        m.op(Opcode::Pop);
        m.aload(0);
        m.getfield("G", "x", "I");
        m.op(Opcode::Pop);
        m.aload(0);
        m.invokestatic("G", "touch", "(LG;)V");
        m.new_object("G");
        m.op(Opcode::Pop);
        m.op(Opcode::Return);
        m.done().unwrap();
    });
    let p = predecode_method(&cf, "touch");
    let insns = body_insns(&p);
    assert!(
        matches!(insns[0], XInsn::GetStatic(cp) if cp != 0),
        "{:?}",
        insns[0]
    );
    assert!(matches!(insns[3], XInsn::GetField(_)), "{:?}", insns[3]);
    assert!(matches!(insns[6], XInsn::InvokeStatic(_)), "{:?}", insns[6]);
    assert!(matches!(insns[7], XInsn::New(_)), "{:?}", insns[7]);
}

#[test]
fn golden_interface_sites_carry_arg_slots() {
    let cf = build_class(|cb| {
        let mut m = cb.method("call", "(Ljava/lang/Object;II)I", STATIC);
        m.aload(0);
        m.iload(1);
        m.iload(2);
        m.invokeinterface("Calc", "apply", "(II)I");
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });
    let p = predecode_method(&cf, "call");
    let insns = body_insns(&p);
    let XInsn::InvokeInterface(site) = insns[3] else {
        panic!("expected pre-decoded interface site, got {:?}", insns[3]);
    };
    let site = &p.iface_sites[site as usize];
    assert_eq!(&*site.name, "apply");
    assert_eq!(&*site.descriptor, "(II)I");
    assert_eq!(site.arg_slots, 3); // receiver + two ints
    assert!(site.cache.get().is_none(), "cache starts cold");
}

#[test]
fn golden_switches_unpack_into_side_tables() {
    let cf = build_class(|cb| {
        let mut m = cb.method("sel", "(I)I", STATIC);
        let (a, b, def) = (m.new_label(), m.new_label(), m.new_label());
        m.iload(0);
        m.tableswitch(def, 5, &[a, b]);
        m.bind(a);
        m.const_int(1);
        m.op(Opcode::Ireturn);
        m.bind(b);
        m.const_int(2);
        m.op(Opcode::Ireturn);
        m.bind(def);
        m.const_int(-1);
        m.op(Opcode::Ireturn);
        m.done().unwrap();

        let mut m = cb.method("lsel", "(I)I", STATIC);
        let (a, def) = (m.new_label(), m.new_label());
        m.iload(0);
        m.lookupswitch(def, &[(-1000, a), (9999, a)]);
        m.bind(a);
        m.const_int(7);
        m.op(Opcode::Ireturn);
        m.bind(def);
        m.const_int(-1);
        m.op(Opcode::Ireturn);
        m.done().unwrap();
    });

    let p = predecode_method(&cf, "sel");
    let XInsn::TableSwitch(si) = p.insns[1].get() else {
        panic!("expected tableswitch, got {:?}", p.insns[1].get());
    };
    let SwitchTable::Table {
        default,
        low,
        targets,
    } = &p.switches[si as usize]
    else {
        panic!("expected table payload");
    };
    assert_eq!(*low, 5);
    assert_eq!(targets.len(), 2);
    assert_eq!(targets[0], 2); // index of `const_int(1)`
    assert_eq!(targets[1], 4);
    assert_eq!(*default, 6);

    let p = predecode_method(&cf, "lsel");
    let XInsn::LookupSwitch(si) = p.insns[1].get() else {
        panic!("expected lookupswitch, got {:?}", p.insns[1].get());
    };
    let SwitchTable::Lookup { default, pairs } = &p.switches[si as usize] else {
        panic!("expected lookup payload");
    };
    assert_eq!(pairs.len(), 2);
    assert_eq!(pairs[0].0, -1000);
    assert_eq!(pairs[1].0, 9999);
    assert_eq!(pairs[0].1, pairs[1].1, "both keys share one arm");
    assert_ne!(*default, pairs[0].1);
}

#[test]
fn invalid_opcode_becomes_trap_instruction() {
    // 0xba (invokedynamic) is rejected by the decoder; the raw engine
    // advances one byte and throws at execution time — the pre-decoder
    // mirrors that with a one-byte Invalid instruction.
    let body = CodeBody {
        max_stack: 1,
        max_locals: 0,
        bytes: vec![
            0x03, /* iconst_0 */
            0xba, 0x03, 0xac, /* ireturn */
        ],
        handlers: Vec::new(),
    };
    let pool = ijvm_classfile::ConstPool::new();
    let p = predecode(&body, &pool);
    let insns = body_insns(&p);
    assert_eq!(
        insns,
        vec![
            XInsn::IConst(0),
            XInsn::Invalid(0xba),
            XInsn::IConst(0),
            XInsn::ReturnValue
        ]
    );
}

#[test]
fn streams_end_with_guard() {
    // Code with no terminal return: execution must land on the guard and
    // fault instead of running off the stream.
    let body = CodeBody {
        max_stack: 1,
        max_locals: 0,
        bytes: vec![Opcode::Iconst0 as u8, Opcode::Pop as u8],
        handlers: Vec::new(),
    };
    let pool = ijvm_classfile::ConstPool::new();
    let p = predecode(&body, &pool);
    assert_eq!(
        p.insns.last().unwrap().get(),
        XInsn::Trap(TrapKind::FellOffEnd)
    );
    // The one-past-the-end pc resolves to the guard, so a frame suspended
    // exactly there resumes into the clean fault.
    assert_eq!(p.index_of_pc(2), Some(2));
    assert_eq!(p.pc_of_index(2), Some(2));
}

// ---------------------------------------------------------------------
// pc↔index properties
// ---------------------------------------------------------------------

/// Assembles a random but well-formed code array from a pool-free opcode
/// menu, returning the bytes (always terminated by `return`).
fn assemble(ops: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for &op in ops {
        match op % 11 {
            0 => bytes.push(Opcode::Iconst0 as u8),
            1 => bytes.extend_from_slice(&[Opcode::Bipush as u8, op]),
            2 => bytes.extend_from_slice(&[Opcode::Sipush as u8, op, op.wrapping_add(1)]),
            3 => bytes.extend_from_slice(&[Opcode::Iload as u8, op % 4]),
            4 => bytes.push(Opcode::Dup as u8),
            5 => bytes.extend_from_slice(&[Opcode::Iinc as u8, op % 4, 1]),
            6 => bytes.push(Opcode::Iadd as u8),
            7 => bytes.extend_from_slice(&[Opcode::Istore as u8, op % 4]),
            // A short forward branch; the offset may or may not land on
            // an instruction boundary, exercising both the fused and the
            // BAD_TARGET (left unfused) compare-and-branch paths.
            8 => bytes.extend_from_slice(&[Opcode::IfIcmplt as u8, 0, 3 + op % 8]),
            9 => bytes.extend_from_slice(&[Opcode::IfIcmpge as u8, 0, 3 + op % 8]),
            _ => bytes.push(Opcode::Nop as u8),
        }
    }
    bytes.push(Opcode::Return as u8);
    bytes
}

proptest! {
    #[test]
    fn pc_index_round_trips_over_arbitrary_code(ops in proptest::collection::vec(any::<u8>(), 0..200)) {
        let bytes = assemble(&ops);
        let body = CodeBody { max_stack: 8, max_locals: 4, bytes: bytes.clone(), handlers: Vec::new() };
        let pool = ijvm_classfile::ConstPool::new();
        let p = predecode(&body, &pool);

        // Boundary pcs round-trip through both maps.
        let mut boundaries = 0usize;
        for pc in 0..bytes.len() as u32 {
            if let Some(idx) = p.index_of_pc(pc) {
                boundaries += 1;
                prop_assert_eq!(p.pc_of_index(idx), Some(pc));
            }
        }
        // +1: the fell-off-end guard appended after the last real insn.
        prop_assert_eq!(boundaries + 1, p.insns.len());

        // idx_to_pc is strictly increasing and ends with the code length.
        for w in p.idx_to_pc.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert_eq!(p.idx_to_pc.last().copied(), Some(bytes.len() as u32));

        // Non-boundary pcs never map.
        let bound_set: std::collections::HashSet<u32> =
            (0..bytes.len() as u32).filter(|&pc| p.index_of_pc(pc).is_some()).collect();
        for pc in 0..bytes.len() as u32 {
            if !bound_set.contains(&pc) {
                prop_assert_eq!(p.index_of_pc(pc), None);
            }
        }
        let _ = BAD_TARGET; // referenced to keep the API surface exercised
    }

    #[test]
    fn fusion_preserves_maps_and_targets(ops in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Fusion only rewrites cells: stream length, pc↔index maps and
        // side tables other than `fused_cmps` are byte-identical, every
        // fused target is a real instruction boundary, and the pattern
        // tails keep their original (de-fuseable) instructions.
        let bytes = assemble(&ops);
        let body = CodeBody { max_stack: 8, max_locals: 4, bytes, handlers: Vec::new() };
        let pool = ijvm_classfile::ConstPool::new();
        let fused = predecode_with(&body, &pool, true);
        let plain = predecode_with(&body, &pool, false);

        prop_assert_eq!(fused.insns.len(), plain.insns.len());
        prop_assert_eq!(&fused.idx_to_pc, &plain.idx_to_pc);
        prop_assert_eq!(&fused.pc_to_idx, &plain.pc_to_idx);

        for (i, cell) in fused.insns.iter().enumerate() {
            match cell.get() {
                XInsn::AddStore { a, b, c } => {
                    // The fused head must shadow exactly the plain pattern,
                    // and the tail cells must be untouched.
                    prop_assert_eq!(plain.insns[i].get(), XInsn::Load(a));
                    prop_assert_eq!(fused.insns[i + 1].get(), XInsn::Load(b));
                    prop_assert_eq!(fused.insns[i + 2].get(), XInsn::Iadd);
                    prop_assert_eq!(fused.insns[i + 3].get(), XInsn::Store(c));
                }
                XInsn::FusedCmpBr(si) => {
                    let fc = fused.fused_cmps[si as usize];
                    prop_assert_eq!(plain.insns[i].get(), XInsn::Load(fc.slot));
                    match fc.rhs {
                        CmpRhs::Const(k) => {
                            prop_assert_eq!(fused.insns[i + 1].get(), XInsn::IConst(k))
                        }
                        CmpRhs::Local(s) => {
                            prop_assert_eq!(fused.insns[i + 1].get(), XInsn::Load(s))
                        }
                    }
                    let XInsn::IfICmp { cmp, target } = fused.insns[i + 2].get() else {
                        prop_assert!(false, "fused tail lost its IfICmp");
                        unreachable!();
                    };
                    prop_assert_eq!(fc.cmp, cmp);
                    prop_assert_eq!(fc.target, target);
                    // Fused branch targets are valid instruction indices.
                    prop_assert!(fc.target != BAD_TARGET);
                    prop_assert!(fused.pc_of_index(fc.target).is_some());
                }
                other => prop_assert_eq!(other, plain.insns[i].get()),
            }
        }
    }
}
