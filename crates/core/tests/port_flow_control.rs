//! Flow-control and future-pipelining differential tests: guest programs
//! using `Service.post` futures and quota-bounded mailboxes must behave
//! bit-identically under the deterministic cluster scheduler (the
//! oracle) and the parallel work-stealing scheduler at any worker count.
//!
//! The determinism argument for the flood scenarios is subtler than the
//! ping-pong corpus in `port_messaging.rs`: the *number of park/retry
//! cycles* a quota-parked sender goes through is schedule-dependent, but
//! none of those cycles execute guest code or charge CPU — the payload
//! is serialized and charged exactly once, at the first send attempt —
//! so every guest-visible observation (results, console, vclock,
//! per-isolate exact CPU) converges to the same fixpoint in every mode.
//! Trace counters like `quota_parks` ARE schedule-dependent and are only
//! asserted against the deterministic oracle.
//!
//! Crosses with the CI differential matrix via `IJVM_DIFF_ENGINE` /
//! `IJVM_DIFF_ISOLATION` exactly like `port_messaging.rs`.

use ijvm_core::engine::EngineKind;
use ijvm_core::prelude::*;
use ijvm_core::sched::UnitHandle;
use ijvm_minijava::{compile_to_bytes, CompileEnv};

fn engine_lane() -> (EngineKind, bool) {
    match std::env::var("IJVM_DIFF_ENGINE").as_deref() {
        Ok("quickened") => (EngineKind::Quickened, true),
        Ok("quickened-nofuse") => (EngineKind::Quickened, false),
        Ok("threaded") | Ok("parallel") => (EngineKind::Threaded, true),
        Ok("threaded-nofuse") | Ok("parallel-nofuse") => (EngineKind::Threaded, false),
        Ok("raw") => (EngineKind::Raw, true),
        _ => (EngineKind::Threaded, true),
    }
}

fn isolation_lane() -> IsolationMode {
    match std::env::var("IJVM_DIFF_ISOLATION").as_deref() {
        Ok("shared") => IsolationMode::Shared,
        _ => IsolationMode::Isolated,
    }
}

fn lane_options(quantum: u32, trace: bool) -> VmOptions {
    let (engine, fuse) = engine_lane();
    let mut options = match isolation_lane() {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    }
    .with_engine(engine)
    .with_superinstructions(fuse);
    options.quantum = quantum;
    if trace {
        options.trace = TraceConfig::Full;
    }
    options
}

/// One unit of a scenario: a minijava program with `(I)I` entry threads.
struct UnitSpec {
    src: String,
    entry: &'static str,
    method: &'static str,
    thread_args: Vec<i32>,
}

fn build_vm(spec: &UnitSpec, quantum: u32, trace: bool) -> (Vm, Vec<ThreadId>) {
    let mut vm = ijvm_jsl::boot(lane_options(quantum, trace));
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(&spec.src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, spec.entry).unwrap();
    let index = vm.class(class).find_method(spec.method, "(I)I").unwrap();
    let mref = MethodRef { class, index };
    let tids = spec
        .thread_args
        .iter()
        .map(|&n| {
            vm.spawn_thread("entry", mref, vec![Value::Int(n)], iso)
                .unwrap()
        })
        .collect();
    (vm, tids)
}

/// Everything compared across scheduler modes for one finished unit.
#[derive(Debug, PartialEq)]
struct Observed {
    results: Vec<Result<Option<String>, String>>,
    outcome: RunOutcome,
    vclock: u64,
    console: Vec<String>,
    cpu_exact: Vec<u64>,
    aggregate_cpu: Vec<u64>,
}

/// Runs a scenario under `kind` with a per-unit mailbox quota, returning
/// per-unit observations plus the aggregate metrics when tracing is on.
fn run_scenario(
    specs: &[UnitSpec],
    kind: SchedulerKind,
    quantum: u32,
    slice: u64,
    quota: Option<(u32, u64)>,
    trace: bool,
    kills: &[(usize, IsolateId, u64)],
) -> (Vec<Observed>, Option<ClusterMetrics>) {
    let mut builder = Cluster::builder().scheduler(kind).slice(slice);
    if let Some((msgs, bytes)) = quota {
        builder = builder.mailbox_quota(msgs, bytes);
    }
    let mut cluster = builder.build();
    let mut handles: Vec<UnitHandle> = Vec::new();
    let mut tids = Vec::new();
    for spec in specs {
        let (vm, unit_tids) = build_vm(spec, quantum, trace);
        handles.push(cluster.submit(vm));
        tids.push(unit_tids);
    }
    for &(u, iso, min_slices) in kills {
        handles[u].terminate_at(iso, min_slices);
    }
    let mut outcome = cluster.run();
    assert_eq!(outcome.units.len(), specs.len(), "every unit must finish");
    let accounts = &outcome.accounts;
    let mut observed = Vec::new();
    for (u, unit_outcome) in outcome.units.iter_mut().enumerate() {
        let report = unit_outcome.report;
        let vm = &mut unit_outcome.vm;
        let snaps = vm.metrics().isolates;
        observed.push(Observed {
            results: tids[u]
                .iter()
                .map(|&tid| {
                    vm.thread_outcome(tid)
                        .map(|v| v.map(|v| v.to_string()))
                        .map_err(|e| e.to_string())
                })
                .collect(),
            outcome: report.outcome,
            vclock: vm.vclock(),
            console: vm.take_console(),
            cpu_exact: snaps.iter().map(|s| s.stats.cpu_exact).collect(),
            aggregate_cpu: (0..vm.isolate_count())
                .map(|i| accounts.cpu_exact(report.id, IsolateId(i as u16)))
                .collect(),
        });
    }
    (observed, outcome.metrics)
}

/// Runs a scenario under the oracle and every worker count, asserting
/// bit-identical observations, and returns the oracle's observations
/// plus its (traced) metrics for schedule-*independent* assertions.
fn assert_modes_agree(
    specs: &[UnitSpec],
    quantum: u32,
    slice: u64,
    quota: Option<(u32, u64)>,
    kills: &[(usize, IsolateId, u64)],
) -> (Vec<Observed>, ClusterMetrics) {
    let (oracle, metrics) = run_scenario(
        specs,
        SchedulerKind::Deterministic,
        quantum,
        slice,
        quota,
        true,
        kills,
    );
    for (u, o) in oracle.iter().enumerate() {
        assert_eq!(
            o.aggregate_cpu, o.cpu_exact,
            "unit {u}: cluster aggregate diverged from in-VM exact CPU"
        );
    }
    for workers in [1usize, 2, 4] {
        let (parallel, _) = run_scenario(
            specs,
            SchedulerKind::Parallel(workers),
            quantum,
            slice,
            quota,
            false,
            kills,
        );
        assert_eq!(
            oracle, parallel,
            "Parallel({workers}) diverged from the deterministic oracle"
        );
    }
    (oracle, metrics.expect("oracle ran with tracing on"))
}

fn echo_server() -> UnitSpec {
    UnitSpec {
        src: r#"
            class Echo {
                int handle(int x) { return x * 3 + 7; }
            }
            class Boot {
                static int start(int n) {
                    Service.export("echo", new Echo());
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    }
}

/// The headline acceptance scenario: one green thread pipelines 64
/// in-flight `Service.post` calls before touching a single result, then
/// harvests them all — bit-identical across modes, with the oracle's
/// trace showing all 64 requests in flight at once (the victim's
/// single mailbox drain observed all 64 at one quantum boundary).
#[test]
fn pipelines_64_posts_from_one_thread_across_modes() {
    let n = 64;
    let client = UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    Future[] fs = new Future[n];
                    for (int i = 0; i < n; i++) {
                        fs[i] = Service.post("echo", i);
                    }
                    int acc = 0;
                    for (int i = 0; i < n; i++) {
                        acc += fs[i].get();
                    }
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![n],
    };
    let specs = vec![client, echo_server()];
    // A slice generous enough that the client issues all 64 posts in
    // its first quantum, so they are simultaneously in flight.
    let (oracle, metrics) = assert_modes_agree(&specs, 20_000, 40_000, None, &[]);
    let expect: i64 = (0..n as i64).map(|i| i * 3 + 7).sum();
    assert_eq!(
        oracle[0].results[0],
        Ok(Some(expect.to_string())),
        "client harvested every pipelined reply"
    );
    assert_eq!(metrics.totals.posts_sent, n as u64);
    assert_eq!(metrics.totals.futures_resolved, n as u64);
    assert_eq!(metrics.totals.calls_served, n as u64);
    assert!(
        metrics.totals.mailbox_high_water >= n as u64,
        "the server observed all {n} posts queued at one boundary \
         (high water {})",
        metrics.totals.mailbox_high_water
    );
}

/// A future cancelled while its request is in flight: the cancel wins
/// (the reply cannot arrive mid-slice), the late reply is dropped on
/// the floor, `get` on the cancelled future throws, and a later
/// uncancelled post still resolves normally.
#[test]
fn future_cancelled_in_flight_across_modes() {
    let client = UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    int acc = 0;
                    Future a = Service.post("echo", 100);
                    if (a.cancel()) acc += 1;      // wins: reply in flight
                    if (a.isDone()) acc += 2;      // cancelled counts as done
                    if (a.cancel()) acc += 4;      // second cancel loses
                    try {
                        acc += a.get();
                    } catch (IllegalStateException e) {
                        acc += 8;                  // get on cancelled throws
                    }
                    Future b = Service.post("echo", n);
                    acc += b.get() * 1000;
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![5],
    };
    let specs = vec![client, echo_server()];
    let (oracle, metrics) = assert_modes_agree(&specs, 2_000, 4_000, None, &[]);
    let expect = 1 + 2 + 8 + (5 * 3 + 7) * 1000;
    assert_eq!(oracle[0].results[0], Ok(Some(expect.to_string())));
    assert_eq!(metrics.totals.futures_cancelled, 1);
    // The cancelled request was still served — its reply just found no
    // pending future to resolve.
    assert_eq!(metrics.totals.calls_served, 2);
    assert_eq!(metrics.totals.futures_resolved, 1);
}

/// Floods `messages` oneways at "sink" — after a blocking handshake
/// call that forces the export to exist (and the pump to have cycled
/// once) before the flood begins, so the flood hits quota admission in
/// every mode rather than racing the export as quota-exempt unresolved
/// requests.
fn oneway_flooder(messages: i32) -> UnitSpec {
    UnitSpec {
        src: r#"
            class Flooder {
                static int drive(int n) {
                    int ack = Service.call("sink", 0 - 1);
                    for (int i = 0; i < n; i++) {
                        Port.send("sink", i);
                    }
                    return n + ack;
                }
            }
        "#
        .to_owned(),
        entry: "Flooder",
        method: "drive",
        thread_args: vec![messages],
    }
}

/// Oneway flood against a slow pump with a 4-message quota: the victim's
/// mailbox stays bounded (no drain ever observes more than the quota),
/// the flooder is parked (and charged for every payload exactly once),
/// yet every message is eventually delivered — all guest-visible state
/// bit-identical across modes even though the park/retry cycle count is
/// schedule-dependent.
#[test]
fn oneway_flood_bounded_by_quota_across_modes() {
    let n = 96;
    let quota = 4u32;
    let sink = UnitSpec {
        src: r#"
            class Sink {
                static int served;
                int handle(int x) {
                    if (x < 0) return 0;                    // handshake
                    int w = 0;
                    for (int i = 0; i < 200; i++) w += i;   // slow pump
                    Sink.served += 1;
                    if (Sink.served % 32 == 0) println("served " + Sink.served);
                    return w;
                }
            }
            class Boot {
                static int start(int n) {
                    Service.export("sink", new Sink());
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    };
    let specs = vec![oneway_flooder(n), sink];
    let (oracle, metrics) = assert_modes_agree(&specs, 2_000, 4_000, Some((quota, 1 << 20)), &[]);
    assert_eq!(oracle[0].results[0], Ok(Some(n.to_string())));
    assert_eq!(
        oracle[1].console,
        vec!["served 32", "served 64", "served 96"],
        "every flooded message was eventually served, in order"
    );
    assert_eq!(metrics.totals.oneways_sent, n as u64);
    assert!(
        metrics.totals.quota_parks > 0,
        "the flooder must have been parked by flow control"
    );
    assert_eq!(
        metrics.totals.quota_parks, metrics.totals.quota_unparks,
        "every park was eventually released by the drain path"
    );
    assert!(
        metrics.totals.mailbox_high_water <= quota as u64,
        "the victim's mailbox stayed bounded by its quota \
         (high water {}, quota {quota})",
        metrics.totals.mailbox_high_water
    );
    // Sender-pays held while parked: the flooder's exact CPU includes
    // one serialize charge per message (an int payload is 5 wire bytes).
    if isolation_lane() == IsolationMode::Isolated {
        let per_msg = ijvm_core::port::MSG_BASE_COST + 5;
        let flooder = &oracle[0];
        assert!(
            flooder.cpu_exact[0] >= n as u64 * per_msg,
            "flooder paid for every payload copy"
        );
    }
}

/// A sink whose pump blocks forever (its handler calls a service nobody
/// exports), so the flooder quota-parks permanently: the cluster must
/// still wrap up — quota-parked senders do not hang quiescence.
fn blocked_sink() -> UnitSpec {
    UnitSpec {
        src: r#"
            class Sink {
                int handle(int x) {
                    if (x < 0) return 0;   // handshake
                    return Service.call("never-exported", x);
                }
            }
            class Boot {
                static int start(int n) {
                    Service.export("sink", new Sink());
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    }
}

#[test]
fn quiescence_with_quota_parked_sender_across_modes() {
    let specs = vec![oneway_flooder(64), blocked_sink()];
    let (oracle, metrics) = assert_modes_agree(&specs, 2_000, 4_000, Some((4, 1 << 20)), &[]);
    // The flooder is still mid-flood, parked on quota; the sink's pump
    // is blocked on an export that never happens. Wrap-up finishes both
    // with their blocked outcomes instead of hanging.
    assert_eq!(oracle[0].outcome, RunOutcome::Blocked);
    assert_eq!(oracle[1].outcome, RunOutcome::Blocked);
    assert!(metrics.totals.quota_parks > 0);
}

/// Quota exhaustion with a parked sender that is then terminated: the
/// kill lands at a quantum boundary after the system reached its parked
/// fixpoint, revocation drops the pending send deterministically, and
/// the flooder's unit finishes while the victim stays blocked.
#[test]
fn quota_parked_sender_terminated_across_modes() {
    if isolation_lane() == IsolationMode::Shared {
        return; // no isolate termination in the shared lane
    }
    let specs = vec![oneway_flooder(64), blocked_sink()];
    // Deliver the kill to the flooder's isolate once it has run 2
    // slices — by then it is quota-parked at the deterministic fixpoint
    // in every mode.
    let kills = [(0usize, IsolateId(0), 2u64)];
    let (oracle, _) = assert_modes_agree(&specs, 2_000, 4_000, Some((4, 1 << 20)), &kills);
    assert!(
        oracle[0].results[0].is_err(),
        "the flooder thread died with its isolate: {:?}",
        oracle[0].results[0]
    );
    assert_eq!(
        oracle[1].outcome,
        RunOutcome::Blocked,
        "victim still blocked"
    );
}

/// A sharded pipelining client for the downsized saturation lane:
/// handshakes with its echo shard (so the export exists before the
/// windows start and quota parking deterministically engages), then
/// drives `n` windows of 16 pipelined posts each.
fn sat_client(shard: usize, windows: i32) -> UnitSpec {
    UnitSpec {
        src: format!(
            r#"
            class Client {{
                static int drive(int n) {{
                    int ack = Service.call("echo{shard}", 0 - 1);
                    int acc = 0;
                    Future[] fs = new Future[16];
                    for (int w = 0; w < n; w++) {{
                        for (int i = 0; i < 16; i++) {{
                            fs[i] = Service.post("echo{shard}", i);
                        }}
                        for (int i = 0; i < 16; i++) {{
                            acc += fs[i].get();
                        }}
                    }}
                    return acc + ack;
                }}
            }}
            "#
        ),
        entry: "Client",
        method: "drive",
        thread_args: vec![windows],
    }
}

/// A sharded echo server; `x < 0` is the handshake arm.
fn sat_server(shard: usize) -> UnitSpec {
    UnitSpec {
        src: format!(
            r#"
            class Echo {{
                int handle(int x) {{ if (x < 0) return 0; return x + 1; }}
            }}
            class Boot {{
                static int start(int n) {{
                    Service.export("echo{shard}", new Echo());
                    return n;
                }}
            }}
            "#
        ),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    }
}

/// The downsized copy of the bench saturation topology (the full one —
/// 200 units, ~10⁶ posts — lives in `ijvm-bench::saturation` and is
/// latency-gated by `bench_gate`): six pipelining clients striped over
/// two echo shards, windows of 16 futures, a quota far below the
/// offered load. Every scheduler mode must converge to the same
/// fixpoint: same sums, same vclocks, same exact sender-pays CPU.
#[test]
fn downsized_saturation_lane_across_modes() {
    let servers = 2usize;
    let clients = 6usize;
    let windows = 3;
    let mut specs: Vec<UnitSpec> = (0..servers).map(sat_server).collect();
    specs.extend((0..clients).map(|c| sat_client(c % servers, windows)));
    let (oracle, metrics) = assert_modes_agree(&specs, 5_000, 10_000, Some((4, 1 << 20)), &[]);
    // Each window echoes back 1..=16: per client, windows × 136.
    let expect = (windows as i64) * (1..=16).sum::<i64>();
    for c in 0..clients {
        assert_eq!(
            oracle[servers + c].results[0],
            Ok(Some(expect.to_string())),
            "client {c} harvested every windowed reply"
        );
    }
    let messages = (clients as u64) * (windows as u64) * 16;
    assert_eq!(metrics.totals.posts_sent, messages);
    assert_eq!(metrics.totals.futures_resolved, messages);
    assert_eq!(
        metrics.totals.calls_served,
        messages + clients as u64,
        "every post plus one handshake call per client was served"
    );
    assert!(
        metrics.totals.quota_parks > 0,
        "the offered load exceeded the quota, so senders parked"
    );
    assert!(
        metrics.totals.call_latency.count() >= messages,
        "the flight recorder timed every round trip"
    );
}
