//! The Miri lane's workload: undefined-behavior checks over the
//! pointer- and buffer-heavy corners — the wire codec, frame-pool
//! recycling, and trace-ring wraparound. (The fourth corner, `VmRc`,
//! is crate-private and covered by the unit tests in `vmrc.rs`; the CI
//! lane runs `--lib` alongside this file so Miri sees those too.)
//!
//! Everything here also runs under plain `cargo test` — Miri adds the
//! UB checking, not the assertions. Sizes are downsized under
//! `cfg(miri)` (interpretation is ~100x slower); the point is coverage
//! of each code path, not volume.

use ijvm_core::prelude::*;
use ijvm_core::thread::FramePool;
use ijvm_core::trace::{EventKind, TraceEvent, TraceRing};
use ijvm_core::wire::{deserialize_value, serialize_value};

const SIZE: usize = if cfg!(miri) { 16 } else { 1024 };

#[test]
fn wire_codec_roundtrips_primitives_and_strings() {
    let mut vm = ijvm_jsl::boot(VmOptions::isolated());
    let src = vm.create_isolate("sender");
    let dst = vm.create_isolate("receiver");
    let dst_loader = vm.loader_of(dst).unwrap();

    for v in [
        Value::Null,
        Value::Int(-7),
        Value::Int(i32::MAX),
        Value::Long(1 << 40),
        Value::Float(1.5),
        Value::Double(-2.25),
    ] {
        let mut bytes = Vec::new();
        serialize_value(&vm, v, &mut bytes);
        let back = deserialize_value(&mut vm, &bytes, dst, dst_loader).unwrap();
        assert_eq!(back, v);
    }

    // A heap value: the copy must land in the receiver as a distinct
    // object with equal contents.
    let text: String = "wire ".repeat(if cfg!(miri) { 2 } else { 64 });
    let s = vm.new_string(src, &text);
    let mut bytes = Vec::new();
    serialize_value(&vm, Value::Ref(s), &mut bytes);
    let back = deserialize_value(&mut vm, &bytes, dst, dst_loader).unwrap();
    let Value::Ref(copy) = back else {
        panic!("string deserialized as {back:?}");
    };
    assert_ne!(copy, s, "cross-isolate copy, not a shared reference");
    assert_eq!(vm.read_string(copy).as_deref(), Some(text.as_str()));

    // Truncated input must error, never read past the buffer (the UB
    // this lane exists to rule out).
    for cut in 0..bytes.len().min(8) {
        assert!(deserialize_value(&mut vm, &bytes[..cut], dst, dst_loader).is_err() || cut == 0);
    }
}

#[test]
fn frame_pool_recycle_reuses_buffers() {
    let pool_cap = if cfg!(miri) { 16 } else { 128 };
    let mut pool = FramePool::default();
    // take → use as a frame would → recycle → take again: the second
    // take must reuse the pooled storage, and recycling must have
    // cleared it (a pooled buffer never holds stale refs).
    let mut first = pool.take(pool_cap);
    assert!(first.capacity() >= pool_cap);
    for i in 0..pool_cap {
        first.push(Value::Int(i as i32));
    }
    pool.recycle(first);
    assert_eq!(pool.pooled(), 1);
    assert!(pool.retained_bytes() > 0);

    let second = pool.take(pool_cap);
    assert_eq!(pool.pooled(), 0, "the pooled buffer was reused");
    assert!(second.is_empty(), "recycle cleared the buffer");
    assert!(second.capacity() >= pool_cap);
    pool.recycle(second);

    // A take may grow a pooled buffer past the retention bound; the
    // grown buffer is then dropped at recycle, not pooled, so retention
    // stays under the documented cap no matter what frames ran.
    let mut huge = pool.take(SIZE.max(300));
    huge.push(Value::Null);
    pool.recycle(huge);
    assert_eq!(pool.pooled(), 0, "oversized buffers are not pooled");
    assert!(pool.retained_bytes() <= FramePool::max_retained_bytes());
}

#[test]
fn trace_ring_wraps_without_losing_accounting() {
    let cap = if cfg!(miri) { 8 } else { 256 };
    let mut ring = TraceRing::with_capacity(cap);
    let total = (cap * 3 + 1) as u64;
    for i in 0..total {
        ring.push(TraceEvent {
            vclock: i,
            payload: i,
            wall_us: 0,
            kind: EventKind::QuantumEnd,
            unit: 0,
            isolate: 0,
            thread: 0,
        });
    }
    assert_eq!(ring.len(), cap);
    assert_eq!(ring.dropped_events(), total - cap as u64);
    let drained = ring.drain_ordered();
    assert_eq!(drained.len(), cap);
    for (i, e) in drained.iter().enumerate() {
        assert_eq!(
            e.payload,
            total - cap as u64 + i as u64,
            "newest `cap` events, oldest-first"
        );
    }
    assert!(ring.is_empty());
    assert_eq!(ring.capacity(), cap);
}

/// The checkpoint image codec: a fourth buffer-heavy corner. The valid
/// path round-trips (parse → restore → re-capture bit-identical), and
/// hostile inputs — truncations and bit flips, which exercise every
/// header, section-table and checksum branch — are rejected by
/// validation without ever reading past the buffer or allocating from
/// an untrusted count (the UB this lane exists to rule out).
#[test]
fn checkpoint_image_decode_rejects_hostile_bytes_without_ub() {
    let vm = ijvm_jsl::boot(VmOptions::isolated());
    let image = vm.checkpoint().expect("a fresh VM is quiescent");
    let bytes = image.as_bytes().to_vec();

    // Valid path: the public decode, a full restore, and a re-capture
    // that must reproduce the image byte for byte (capture is a pure
    // function of VM state).
    let reparsed = UnitImage::from_bytes(bytes.clone()).expect("valid image parses");
    let restored =
        ijvm_core::checkpoint::restore(&reparsed, VmOptions::isolated(), ijvm_jsl::install_natives)
            .expect("valid image restores");
    assert_eq!(
        restored.checkpoint().expect("restored VM is quiescent"),
        image,
        "restore → capture must be the identity on images"
    );

    // Hostile path, downsized under Miri: sample positions instead of
    // sweeping all ~15k bytes.
    let step = if cfg!(miri) { bytes.len() / 8 + 1 } else { 1 };
    for cut in (0..bytes.len()).step_by(step) {
        assert!(
            UnitImage::from_bytes(bytes[..cut].to_vec()).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }
    for pos in (0..bytes.len()).step_by(step) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x41;
        assert!(
            UnitImage::from_bytes(bad).is_err(),
            "bit flip at {pos} must be rejected"
        );
    }
}
