//! Cross-unit messaging differential tests: two-unit (and three-unit)
//! service-call programs must behave bit-identically under the
//! deterministic cluster scheduler (the oracle) and the parallel
//! work-stealing scheduler at any worker count — same per-thread
//! results, console output, virtual clocks, and per-isolate exact CPU
//! **including the sender-pays copy charges**, both in each unit's VM
//! and in the cluster aggregate. The corpus is ping-pong shaped: each
//! mailbox has a single in-flight source at a time, so the message
//! schedule is forced by data dependence and the cross-mode comparison
//! is exact.
//!
//! The engine under test crosses with the CI differential matrix:
//! `IJVM_DIFF_ENGINE` selects the engine/fusion lane (same values as
//! `engine_differential.rs`) and `IJVM_DIFF_ISOLATION` the isolation
//! mode, so every engine lane also exercises messaging.

use ijvm_core::engine::EngineKind;
use ijvm_core::port::MSG_BASE_COST;
use ijvm_core::prelude::*;
use ijvm_core::sched::UnitHandle;
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use proptest::prelude::*;

/// Engine/fusion lane selected by `IJVM_DIFF_ENGINE` (the cluster is
/// always involved here, so the `parallel*` lanes map to their engines).
fn engine_lane() -> (EngineKind, bool) {
    match std::env::var("IJVM_DIFF_ENGINE").as_deref() {
        Ok("quickened") => (EngineKind::Quickened, true),
        Ok("quickened-nofuse") => (EngineKind::Quickened, false),
        Ok("threaded") | Ok("parallel") => (EngineKind::Threaded, true),
        Ok("threaded-nofuse") | Ok("parallel-nofuse") => (EngineKind::Threaded, false),
        Ok("raw") => (EngineKind::Raw, true),
        _ => (EngineKind::Threaded, true),
    }
}

/// Isolation lane selected by `IJVM_DIFF_ISOLATION` (default isolated;
/// messaging works in both modes, accounting only exists in isolated).
fn isolation_lane() -> IsolationMode {
    match std::env::var("IJVM_DIFF_ISOLATION").as_deref() {
        Ok("shared") => IsolationMode::Shared,
        _ => IsolationMode::Isolated,
    }
}

fn lane_options(quantum: u32) -> VmOptions {
    let (engine, fuse) = engine_lane();
    let mut options = match isolation_lane() {
        IsolationMode::Shared => VmOptions::shared(),
        IsolationMode::Isolated => VmOptions::isolated(),
    }
    .with_engine(engine)
    .with_superinstructions(fuse);
    options.quantum = quantum;
    options
}

/// One unit of a messaging scenario.
struct UnitSpec {
    src: String,
    entry: &'static str,
    method: &'static str,
    /// One entry thread per element, each with this `(I)I` argument.
    thread_args: Vec<i32>,
}

fn build_vm(spec: &UnitSpec, quantum: u32) -> (Vm, Vec<ThreadId>) {
    let mut vm = ijvm_jsl::boot(lane_options(quantum));
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(&spec.src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, spec.entry).unwrap();
    let index = vm.class(class).find_method(spec.method, "(I)I").unwrap();
    let mref = MethodRef { class, index };
    let tids = spec
        .thread_args
        .iter()
        .map(|&n| {
            vm.spawn_thread("entry", mref, vec![Value::Int(n)], iso)
                .unwrap()
        })
        .collect();
    (vm, tids)
}

/// Everything compared across scheduler modes for one finished unit.
#[derive(Debug, PartialEq)]
struct Observed {
    results: Vec<Result<Option<String>, String>>,
    outcome: RunOutcome,
    vclock: u64,
    console: Vec<String>,
    cpu_exact: Vec<u64>,
    cpu_sampled: Vec<u64>,
    allocated_objects: Vec<u64>,
    /// Cluster-aggregate exact CPU per isolate — must equal `cpu_exact`.
    aggregate_cpu: Vec<u64>,
}

/// Runs a scenario under `kind`, optionally filing deterministic
/// mid-run kills (`(unit index, isolate, min slices)`), and observes
/// every unit.
fn run_scenario(
    specs: &[UnitSpec],
    kind: SchedulerKind,
    quantum: u32,
    slice: u64,
    kills: &[(usize, IsolateId, u64)],
) -> Vec<Observed> {
    let mut cluster = Cluster::builder().scheduler(kind).slice(slice).build();
    let mut handles: Vec<UnitHandle> = Vec::new();
    let mut tids = Vec::new();
    for spec in specs {
        let (vm, unit_tids) = build_vm(spec, quantum);
        handles.push(cluster.submit(vm));
        tids.push(unit_tids);
    }
    for &(u, iso, min_slices) in kills {
        handles[u].terminate_at(iso, min_slices);
    }
    let mut outcome = cluster.run();
    assert_eq!(outcome.units.len(), specs.len(), "every unit must finish");
    let accounts = &outcome.accounts;
    let mut observed = Vec::new();
    for (u, unit_outcome) in outcome.units.iter_mut().enumerate() {
        let report = unit_outcome.report;
        let vm = &mut unit_outcome.vm;
        assert_eq!(report.id.index() as usize, u, "units indexed by UnitId");
        let snaps = vm.metrics().isolates;
        observed.push(Observed {
            results: tids[u]
                .iter()
                .map(|&tid| {
                    vm.thread_outcome(tid)
                        .map(|v| v.map(|v| v.to_string()))
                        .map_err(|e| e.to_string())
                })
                .collect(),
            outcome: report.outcome,
            vclock: vm.vclock(),
            console: vm.take_console(),
            cpu_exact: snaps.iter().map(|s| s.stats.cpu_exact).collect(),
            cpu_sampled: snaps.iter().map(|s| s.stats.cpu_sampled).collect(),
            allocated_objects: snaps.iter().map(|s| s.stats.allocated_objects).collect(),
            aggregate_cpu: (0..vm.isolate_count())
                .map(|i| accounts.cpu_exact(report.id, IsolateId(i as u16)))
                .collect(),
        });
    }
    observed
}

/// Runs a scenario under the deterministic oracle and every worker
/// count, asserting bit-identical observations (and aggregate == in-VM
/// exact CPU in the oracle).
fn assert_modes_agree(
    specs: &[UnitSpec],
    quantum: u32,
    slice: u64,
    kills: &[(usize, IsolateId, u64)],
) -> Vec<Observed> {
    let oracle = run_scenario(specs, SchedulerKind::Deterministic, quantum, slice, kills);
    for (u, o) in oracle.iter().enumerate() {
        assert_eq!(
            o.aggregate_cpu, o.cpu_exact,
            "unit {u}: cluster aggregate diverged from in-VM exact CPU"
        );
    }
    for workers in [1usize, 2, 4] {
        let parallel = run_scenario(
            specs,
            SchedulerKind::Parallel(workers),
            quantum,
            slice,
            kills,
        );
        assert_eq!(
            oracle, parallel,
            "Parallel({workers}) diverged from the deterministic oracle"
        );
    }
    oracle
}

fn echo_server(n_marker: &str) -> UnitSpec {
    UnitSpec {
        src: format!(
            r#"
            class Echo {{
                int handle(int x) {{ return x * 3 + 7; }}
            }}
            class Boot {{
                static int start(int n) {{
                    Service.export("echo", new Echo());
                    println("{n_marker}");
                    return n;
                }}
            }}
            "#
        ),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    }
}

fn pinging_client(calls: i32) -> UnitSpec {
    UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    int acc = 0;
                    for (int i = 0; i < n; i++) {
                        acc += Service.call("echo", i);
                        if (i % 16 == 0) println("ping " + i);
                    }
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![calls],
    }
}

/// Two-unit int ping-pong: the client (submitted *first*, so its opening
/// call exercises the waiting-for-export path) drives the server's
/// `echo` service; results, console, vclock and per-isolate exact CPU —
/// with the sender-pays copy charges — are bit-identical across modes.
#[test]
fn int_ping_pong_matches_across_modes() {
    let calls = 48;
    let specs = vec![pinging_client(calls), echo_server("echo up")];
    let oracle = assert_modes_agree(&specs, 300, 600, &[]);
    let expect: i64 = (0..calls as i64).map(|i| i * 3 + 7).sum();
    assert_eq!(
        oracle[0].results[0],
        Ok(Some(expect.to_string())),
        "client computed through the service"
    );
    assert_eq!(oracle[1].outcome, RunOutcome::Idle);
    assert!(oracle[1].console.contains(&"echo up".to_owned()));

    // Sender-pays: in isolated mode the client's exact CPU exceeds its
    // sampled (purely interpreted) CPU by exactly one request charge per
    // call, and the server's by exactly one reply charge per call
    // (an int payload is 5 wire bytes).
    if isolation_lane() == IsolationMode::Isolated {
        let per_msg = MSG_BASE_COST + 5;
        let client = &oracle[0];
        assert_eq!(
            client.cpu_exact[0] - client.cpu_sampled[0],
            calls as u64 * per_msg,
            "client pays for its request copies"
        );
        let server = &oracle[1];
        assert_eq!(
            server.cpu_exact[0] - server.cpu_sampled[0],
            calls as u64 * per_msg,
            "server pays for its reply copies"
        );
    }
}

/// Object-graph calls: a cyclic two-node graph crosses the unit
/// boundary in both directions, preserving cycles, with classes
/// resolved by name at the receiver.
#[test]
fn object_graph_round_trip_matches_across_modes() {
    let server = UnitSpec {
        src: r#"
            class Pair { Pair other; int v; }
            class Reverse {
                Object handle(Object o) {
                    Pair p = (Pair) o;
                    Pair q = new Pair();
                    q.v = p.v + p.other.v * 10;
                    q.other = q;
                    return q;
                }
            }
            class Boot {
                static int start(int n) {
                    Service.export("rev", new Reverse());
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    };
    let client = UnitSpec {
        src: r#"
            class Pair { Pair other; int v; }
            class Client {
                static int drive(int n) {
                    int acc = 0;
                    for (int i = 0; i < n; i++) {
                        Pair a = new Pair();
                        Pair b = new Pair();
                        a.v = i;
                        b.v = i + 1;
                        a.other = b;
                        b.other = a;
                        Pair r = (Pair) Service.call("rev", a);
                        acc += r.v;
                        if (r.other == r) acc += 1;
                    }
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![12],
    };
    let oracle = assert_modes_agree(&[server, client], 250, 500, &[]);
    // Each call returns v = i + (i+1)*10, cycle check adds 1.
    let expect: i64 = (0..12i64).map(|i| i + (i + 1) * 10 + 1).sum();
    assert_eq!(oracle[1].results[0], Ok(Some(expect.to_string())));
}

/// One-way `Port.send` messages are delivered in order ahead of a
/// closing `Service.call` on the same service (one mailbox, one pump,
/// FIFO end to end).
#[test]
fn oneway_sends_are_ordered_before_calls() {
    let server = UnitSpec {
        src: r#"
            class Counter {
                static int ticks;
                int handle(int x) { ticks = ticks + x; return ticks; }
            }
            class Boot {
                static int start(int n) {
                    Service.export("tick", new Counter());
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    };
    let client = UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    for (int i = 0; i < n; i++) {
                        Port.send("tick", 10);
                    }
                    return Service.call("tick", 1);
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![7],
    };
    let oracle = assert_modes_agree(&[server, client], 300, 700, &[]);
    // All 7 sends land before the call: 7*10 + 1.
    assert_eq!(oracle[1].results[0], Ok(Some("71".to_owned())));
}

/// Three units: one client alternating between two servers — each
/// mailbox still has a single in-flight source, so the schedule stays
/// forced while units genuinely interleave.
#[test]
fn three_unit_pipeline_matches_across_modes() {
    let double = UnitSpec {
        src: r#"
            class D { int handle(int x) { return x * 2; } }
            class Boot {
                static int start(int n) {
                    Service.export("double", new D());
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    };
    let inc = UnitSpec {
        src: r#"
            class I { int handle(int x) { return x + 1; } }
            class Boot {
                static int start(int n) {
                    Service.export("inc", new I());
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    };
    let client = UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    int acc = 1;
                    for (int i = 0; i < n; i++) {
                        acc = Service.call("double", acc) % 65536;
                        acc = Service.call("inc", acc);
                    }
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![20],
    };
    let oracle = assert_modes_agree(&[client, double, inc], 200, 450, &[]);
    let mut acc = 1i64;
    for _ in 0..20 {
        acc = (acc * 2) % 65536;
        acc += 1;
    }
    assert_eq!(oracle[0].results[0], Ok(Some(acc.to_string())));
}

/// Deterministic mid-call termination: the serving isolate is killed —
/// via the slice-count-addressed `terminate_at`, the *same* execution
/// point in every scheduler mode — while its handler spins. The caller
/// fails with `ServiceRevokedException`, both sides' exact CPU matches
/// the aggregate, and the whole observation set is bit-identical across
/// modes. Skipped in the shared-isolation lane (no termination there).
#[test]
fn mid_call_termination_revokes_with_exact_cpu() {
    if isolation_lane() == IsolationMode::Shared {
        return;
    }
    let server = UnitSpec {
        src: r#"
            class Hog {
                int handle(int x) {
                    int acc = x;
                    while (true) { acc = acc + 1; }
                    return acc;
                }
            }
            class Boot {
                static int start(int n) {
                    Service.export("hog", new Hog());
                    return n;
                }
            }
        "#
        .to_owned(),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    };
    let client = UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    return Service.call("hog", n);
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![5],
    };
    // The server's workload isolate is its first one; kill it once the
    // handler has spun for at least two full slices.
    let kills = [(0usize, IsolateId(0), 3u64)];
    let oracle = assert_modes_agree(&[server, client], 300, 600, &kills);

    let server_obs = &oracle[0];
    let client_obs = &oracle[1];
    let err = client_obs.results[0].as_ref().unwrap_err();
    assert!(
        err.contains("ServiceRevokedException"),
        "expected ServiceRevokedException at the caller, got {err}"
    );
    // The hog burned real slices before the kill, all charged exactly.
    assert!(
        server_obs.cpu_exact[0] > 1000,
        "handler should have spun before the kill: {:?}",
        server_obs.cpu_exact
    );
    // Sender-pays on the failed call: the client paid for its request
    // copy; no reply payload was ever produced, so the server's exact
    // CPU carries no copy charge at all.
    assert_eq!(
        client_obs.cpu_exact[0] - client_obs.cpu_sampled[0],
        MSG_BASE_COST + 5,
        "client still pays for the request copy of the failed call"
    );
    assert_eq!(
        server_obs.cpu_exact[0], server_obs.cpu_sampled[0],
        "a revoked call produces no reply copy to charge"
    );
}

/// Revocation *before* the request is served fails the mailbox-resident
/// call, and later calls fail fast at the send site; a guest can catch
/// `ServiceRevokedException` and carry on.
#[test]
fn revoked_service_fails_pending_and_future_calls() {
    if isolation_lane() == IsolationMode::Shared {
        return;
    }
    let server = echo_server("echo up");
    let client = UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    int acc = n;
                    try {
                        acc += Service.call("echo", 1);
                    } catch (ServiceRevokedException e) {
                        acc += 1000;
                        println("revoked:pending");
                    }
                    try {
                        acc += Service.call("echo", 2);
                    } catch (ServiceRevokedException e) {
                        acc += 2000;
                        println("revoked:fresh");
                    }
                    return acc;
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![5],
    };
    // Kill the server's isolate after its first slice (the export): the
    // client's first call is already in (or on its way to) the mailbox
    // and is failed there; its second call fails fast at the hub.
    let kills = [(0usize, IsolateId(0), 1u64)];
    let oracle = assert_modes_agree(&[server, client], 300, 600, &kills);
    assert_eq!(oracle[1].results[0], Ok(Some("3005".to_owned())));
    assert_eq!(
        oracle[1].console,
        vec!["revoked:pending".to_owned(), "revoked:fresh".to_owned()]
    );
}

/// `Service.callAt` addresses a specific unit even when several units
/// export the same name (sharding), and `Service.unit()` reports the
/// unit's own address.
#[test]
fn call_at_addresses_units() {
    let shard = |bias: i32| UnitSpec {
        src: format!(
            r#"
            class Shard {{
                int handle(int x) {{ return x + {bias} + Service.unit() * 100; }}
            }}
            class Boot {{
                static int start(int n) {{
                    Service.export("shard", new Shard());
                    return n;
                }}
            }}
            "#
        ),
        entry: "Boot",
        method: "start",
        thread_args: vec![1],
    };
    // The addressed calls come first: each waits for its own unit's
    // export, so by the time the bare-name call resolves, *both* shards
    // have exported and "lowest exporting unit" is schedule-independent
    // (a bare-name call racing a still-pending export may resolve to a
    // later unit — use callAt where that matters).
    let client = UnitSpec {
        src: r#"
            class Client {
                static int drive(int n) {
                    int first = Service.callAt(0, "shard", n);
                    int second = Service.callAt(1, "shard", n);
                    int lowest = Service.call("shard", n);
                    return lowest * 1000000 + first * 1000 + second;
                }
            }
        "#
        .to_owned(),
        entry: "Client",
        method: "drive",
        thread_args: vec![3],
    };
    let oracle = assert_modes_agree(&[shard(10), shard(20), client], 300, 600, &[]);
    // unit0: 3+10+0 = 13; unit1: 3+20+100 = 123; bare name → unit0.
    assert_eq!(oracle[2].results[0], Ok(Some("13013123".to_owned())));
}

/// Local (unattached) VMs still serve same-VM `Service.call`s — the
/// pump machinery without any cluster, with the same sender-pays
/// charges across the two isolates.
#[test]
fn unattached_vm_serves_local_calls() {
    let mut vm = ijvm_jsl::boot(lane_options(500));
    let server_iso = vm.create_isolate("server");
    let server_loader = vm.loader_of(server_iso).unwrap();
    let server_src = r#"
        class Echo { int handle(int x) { return x + 41; } }
        class Boot {
            static int start(int n) {
                Service.export("echo", new Echo());
                return n;
            }
        }
    "#;
    for (name, bytes) in compile_to_bytes(server_src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(server_loader, &name, bytes);
    }
    let boot = vm.load_class(server_loader, "Boot").unwrap();
    vm.call_static_as(boot, "start", "(I)I", vec![Value::Int(0)], server_iso)
        .unwrap();

    let client_iso = vm.create_isolate("client");
    let client_loader = vm.loader_of(client_iso).unwrap();
    let client_src = r#"
        class Client {
            static int drive(int n) { return Service.call("echo", n); }
        }
    "#;
    for (name, bytes) in compile_to_bytes(client_src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(client_loader, &name, bytes);
    }
    let client = vm.load_class(client_loader, "Client").unwrap();
    let out = vm
        .call_static_as(client, "drive", "(I)I", vec![Value::Int(1)], client_iso)
        .unwrap();
    assert_eq!(out, Some(Value::Int(42)));
}

/// A `StoppedIsolateException` escaping a handler because it called
/// into some *other* terminated isolate must fail only that one call —
/// the service itself is not revoked and keeps serving.
#[test]
fn foreign_isolate_sie_fails_call_without_revoking_service() {
    if isolation_lane() == IsolationMode::Shared {
        return;
    }
    let mut vm = ijvm_jsl::boot(lane_options(500));
    let victim_iso = vm.create_isolate("victim");
    let victim_loader = vm.loader_of(victim_iso).unwrap();
    let victim_src = r#"
        class Bad { static int boom(int x) { return x + 100; } }
    "#;
    let victim_classes = compile_to_bytes(victim_src, &CompileEnv::new()).unwrap();
    let mut cenv = CompileEnv::new();
    for (name, bytes) in &victim_classes {
        vm.add_class_bytes(victim_loader, name, bytes.clone());
        let cf = ijvm_classfile::reader::read_class(bytes).unwrap();
        cenv.import_class_file(&cf).unwrap();
    }

    let server_iso = vm.create_isolate("server");
    let server_loader = vm.loader_of(server_iso).unwrap();
    vm.add_loader_delegate(server_loader, victim_loader);
    let server_src = r#"
        class Svc {
            int handle(int x) {
                if (x == 0) return Bad.boom(x);
                return x + 5;
            }
        }
        class Boot {
            static int start(int n) {
                Service.export("svc", new Svc());
                return n;
            }
        }
    "#;
    for (name, bytes) in compile_to_bytes(server_src, &cenv).unwrap() {
        vm.add_class_bytes(server_loader, &name, bytes);
    }
    let boot = vm.load_class(server_loader, "Boot").unwrap();
    vm.call_static_as(boot, "start", "(I)I", vec![Value::Int(0)], server_iso)
        .unwrap();
    // Warm the poisoned path's class, then kill the victim isolate.
    vm.terminate_isolate(victim_iso).unwrap();

    let client_iso = vm.create_isolate("client");
    let client_loader = vm.loader_of(client_iso).unwrap();
    let client_src = r#"
        class Client {
            static int drive(int n) { return Service.call("svc", n); }
        }
    "#;
    for (name, bytes) in compile_to_bytes(client_src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(client_loader, &name, bytes);
    }
    let client = vm.load_class(client_loader, "Client").unwrap();

    // The poisoned path fails that one call (handler failure, not a
    // revocation)...
    let err = vm
        .call_static_as(client, "drive", "(I)I", vec![Value::Int(0)], client_iso)
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("StoppedIsolateException") && !err.contains("ServiceRevoked"),
        "expected a handler failure mentioning the foreign SIE, got {err}"
    );
    // ...and the service keeps serving.
    let out = vm
        .call_static_as(client, "drive", "(I)I", vec![Value::Int(7)], client_iso)
        .unwrap();
    assert_eq!(out, Some(Value::Int(12)), "service must survive");
}

/// `Vm::retract_service` + re-export replaces a service in place — the
/// OSGi `registerService`-over-an-existing-name semantics.
#[test]
fn retract_and_reexport_replaces_service() {
    let mut vm = ijvm_jsl::boot(lane_options(500));
    let iso = vm.create_isolate("host");
    let loader = vm.loader_of(iso).unwrap();
    let src = r#"
        class V1 { int handle(int x) { return x + 1; } }
        class V2 { int handle(int x) { return x + 100; } }
        class Boot {
            static int mk(int which) {
                if (which == 1) { Service.export("svc", new V1()); }
                else { Service.export("svc", new V2()); }
                return which;
            }
        }
        class Client {
            static int drive(int n) { return Service.call("svc", n); }
        }
    "#;
    for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let boot = vm.load_class(loader, "Boot").unwrap();
    let client = vm.load_class(loader, "Client").unwrap();
    vm.call_static_as(boot, "mk", "(I)I", vec![Value::Int(1)], iso)
        .unwrap();
    let out = vm
        .call_static_as(client, "drive", "(I)I", vec![Value::Int(5)], iso)
        .unwrap();
    assert_eq!(out, Some(Value::Int(6)), "v1 serves");

    assert!(vm.retract_service("svc"), "service exists to retract");
    assert!(!vm.retract_service("svc"), "already retracted");
    vm.call_static_as(boot, "mk", "(I)I", vec![Value::Int(2)], iso)
        .unwrap();
    let out = vm
        .call_static_as(client, "drive", "(I)I", vec![Value::Int(5)], iso)
        .unwrap();
    assert_eq!(out, Some(Value::Int(105)), "v2 replaced v1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random ping-pong shapes: call counts, handler weight, quantum,
    /// slice and worker count — the deterministic and parallel runs must
    /// observe identical units, including exact CPU with copy charges.
    #[test]
    fn random_ping_pong_matches_across_modes(
        calls in 1i32..60,
        weight in 1i32..30,
        obj_every in 1i32..8,
        quantum in 80u32..600,
        slice in 150u64..1_500,
        workers in 1usize..5,
    ) {
        let server = UnitSpec {
            src: format!(
                r#"
                class Pair {{ Pair other; int v; }}
                class IntSvc {{
                    int handle(int x) {{
                        int acc = x;
                        for (int i = 0; i < {weight}; i++) {{ acc = acc * 31 + i; }}
                        return acc % 65536;
                    }}
                }}
                class ObjSvc {{
                    Object handle(Object o) {{
                        Pair p = (Pair) o;
                        Pair q = new Pair();
                        q.v = p.v * 2;
                        q.other = q;
                        return q;
                    }}
                }}
                class Boot {{
                    static int start(int n) {{
                        Service.export("svc", new IntSvc());
                        Service.export("svcobj", new ObjSvc());
                        return n;
                    }}
                }}
                "#
            ),
            entry: "Boot",
            method: "start",
            thread_args: vec![1],
        };
        let client = UnitSpec {
            src: format!(
                r#"
                class Pair {{ Pair other; int v; }}
                class Client {{
                    static int drive(int n) {{
                        int acc = 0;
                        for (int i = 0; i < n; i++) {{
                            if (i % {obj_every} == 0) {{
                                Pair a = new Pair();
                                a.v = i;
                                a.other = a;
                                Pair r = (Pair) Service.call("svcobj", a);
                                acc += r.v;
                            }} else {{
                                acc += Service.call("svc", i);
                            }}
                            acc = acc % 1000000;
                        }}
                        return acc;
                    }}
                }}
                "#
            ),
            entry: "Client",
            method: "drive",
            thread_args: vec![calls],
        };
        let specs = vec![server, client];
        let oracle = run_scenario(&specs, SchedulerKind::Deterministic, quantum, slice, &[]);
        for o in &oracle {
            prop_assert_eq!(&o.aggregate_cpu, &o.cpu_exact);
        }
        prop_assert!(oracle[1].results[0].is_ok(), "client failed: {:?}", oracle[1].results);
        let parallel = run_scenario(&specs, SchedulerKind::Parallel(workers), quantum, slice, &[]);
        prop_assert_eq!(oracle, parallel);
    }
}
