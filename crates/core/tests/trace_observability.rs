//! Flight-recorder integration tests: the tracing layer must observe
//! without perturbing. A traced run is bit-identical to an untraced one
//! (results, console, vclock, per-isolate exact CPU), the merged event
//! stream reconciles exactly with the cluster's exact accounting
//! (per-isolate `cpu_charge` payload sums equal
//! [`ClusterAccounts::total_cpu_exact`]), and the Chrome trace export is
//! well-formed JSON a Perfetto load would accept.

use ijvm_core::accounting::{ClusterAccounts, WorkerCpuBuffer};
use ijvm_core::prelude::*;
use ijvm_core::sched::UnitId;
use ijvm_minijava::{compile_to_bytes, CompileEnv};
use std::collections::BTreeMap;

fn options(trace: bool, quantum: u32) -> VmOptions {
    let mut options = VmOptions::isolated();
    if trace {
        options = options.with_trace(TraceConfig::Full);
    }
    options.quantum = quantum;
    options
}

fn build_unit(src: &str, entry: &str, method: &str, arg: i32, opts: VmOptions) -> (Vm, ThreadId) {
    let mut vm = ijvm_jsl::boot(opts);
    let iso = vm.create_isolate("unit");
    let loader = vm.loader_of(iso).unwrap();
    for (name, bytes) in compile_to_bytes(src, &CompileEnv::new()).unwrap() {
        vm.add_class_bytes(loader, &name, bytes);
    }
    let class = vm.load_class(loader, entry).unwrap();
    let index = vm.class(class).find_method(method, "(I)I").unwrap();
    let mref = MethodRef { class, index };
    let tid = vm
        .spawn_thread("entry", mref, vec![Value::Int(arg)], iso)
        .unwrap();
    (vm, tid)
}

fn stage_src(export: &str, call: Option<&str>, scale: i32) -> String {
    match call {
        // Interior pipeline stage: serve `export`, forward to `call`.
        Some(next) => format!(
            r#"
            class Stage {{
                int handle(int x) {{ return Service.call("{next}", x * {scale} + 1); }}
            }}
            class Boot {{
                static int start(int n) {{
                    Service.export("{export}", new Stage());
                    return n;
                }}
            }}
            "#
        ),
        // Terminal stage.
        None => format!(
            r#"
            class Stage {{
                int handle(int x) {{ return x * {scale} + 1; }}
            }}
            class Boot {{
                static int start(int n) {{
                    Service.export("{export}", new Stage());
                    return n;
                }}
            }}
            "#
        ),
    }
}

const DRIVER_SRC: &str = r#"
    class Driver {
        static int drive(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                acc = (acc + Service.call("s1", i)) % 100003;
            }
            return acc;
        }
    }
"#;

/// Submits the 4-unit pipeline (driver → s1 → s2 → s3) and runs it.
fn run_pipeline(kind: SchedulerKind, trace: bool) -> (ClusterOutcome, Vec<ThreadId>) {
    let mut cluster = Cluster::builder().scheduler(kind).slice(500).build();
    let mut tids = Vec::new();
    let stages = [
        (DRIVER_SRC.to_owned(), "Driver", "drive", 24),
        (stage_src("s1", Some("s2"), 3), "Boot", "start", 1),
        (stage_src("s2", Some("s3"), 5), "Boot", "start", 1),
        (stage_src("s3", None, 7), "Boot", "start", 1),
    ];
    for (src, entry, method, arg) in &stages {
        let (vm, tid) = build_unit(src, entry, method, *arg, options(trace, 200));
        cluster.submit(vm);
        tids.push(tid);
    }
    (cluster.run(), tids)
}

/// UnitIds are only minted by `Cluster::submit`; mint a few for the
/// accounting-surface tests below.
fn unit_ids(n: u32) -> Vec<UnitId> {
    let mut cluster = Cluster::builder().build();
    (0..n)
        .map(|_| cluster.submit(ijvm_jsl::boot(VmOptions::isolated())).id())
        .collect()
}

/// `ClusterAccounts::per_isolate_cpu` reports rows in `(unit, isolate)`
/// key order no matter the charge order — the administrator view is
/// deterministic even after a parallel run.
#[test]
fn per_isolate_cpu_rows_are_key_ordered() {
    let ids = unit_ids(3);
    let (u0, u1, u2) = (ids[0], ids[1], ids[2]);
    let mut accounts = ClusterAccounts::default();
    accounts.charge(u2, IsolateId(1), 30);
    accounts.charge(u0, IsolateId(2), 10);
    accounts.charge(u1, IsolateId(0), 20);
    accounts.charge(u0, IsolateId(1), 5);
    accounts.charge(u0, IsolateId(1), 2); // coalesces into the same row
    let rows = accounts.per_isolate_cpu();
    assert_eq!(
        rows,
        vec![
            ((u0, IsolateId(1)), 7),
            ((u0, IsolateId(2)), 10),
            ((u1, IsolateId(0)), 20),
            ((u2, IsolateId(1)), 30),
        ]
    );
    assert_eq!(accounts.total_cpu_exact(), 67);
}

/// Draining a worker buffer twice charges nothing twice: `drain_into`
/// leaves the buffer empty, so a second drain is a no-op.
#[test]
fn worker_cpu_buffer_drain_is_idempotent() {
    let ids = unit_ids(2);
    let mut buf = WorkerCpuBuffer::default();
    buf.record(ids[0], IsolateId(0), 41);
    buf.record(ids[1], IsolateId(3), 1);
    buf.record(ids[0], IsolateId(0), 9);
    assert_eq!(buf.pending_insns(), 51);

    let mut accounts = ClusterAccounts::default();
    buf.drain_into(&mut accounts);
    assert!(buf.is_empty());
    assert_eq!(accounts.total_cpu_exact(), 51);

    buf.drain_into(&mut accounts);
    buf.drain_into(&mut accounts);
    assert_eq!(
        accounts.total_cpu_exact(),
        51,
        "re-drain must charge nothing"
    );
    assert_eq!(accounts.cpu_exact(ids[0], IsolateId(0)), 50);
    assert_eq!(accounts.cpu_exact(ids[1], IsolateId(3)), 1);
}

/// The ring keeps the newest `capacity` events, drops the oldest, and
/// states the loss exactly — across drains and reuse.
#[test]
fn trace_ring_wraps_with_exact_drop_count() {
    let ev = |n: u64| TraceEvent {
        vclock: n,
        payload: n,
        wall_us: 0,
        kind: EventKind::QuantumEnd,
        unit: 0,
        isolate: 0,
        thread: 0,
    };
    let mut ring = TraceRing::with_capacity(8);
    for n in 0..20 {
        ring.push(ev(n));
    }
    assert_eq!(ring.len(), 8);
    assert_eq!(ring.dropped_events(), 12, "oldest 12 of 20 dropped");
    let drained: Vec<u64> = ring.drain_ordered().iter().map(|e| e.vclock).collect();
    assert_eq!(
        drained,
        (12..20).collect::<Vec<u64>>(),
        "newest 8, in order"
    );
    assert!(ring.is_empty());
    assert_eq!(ring.dropped_events(), 12, "drain preserves the loss count");
    ring.push(ev(99));
    assert_eq!(ring.len(), 1, "ring is reusable after a drain");
}

/// Tracing must not perturb execution: a traced standalone run matches an
/// untraced one on results, console, vclock and per-isolate exact CPU.
#[test]
fn traced_vm_run_is_bit_identical_to_untraced() {
    let src = r#"
        class W {
            static int work(int n) {
                int acc = 7;
                for (int i = 0; i < n; i++) {
                    acc = (acc * 31 + i) % 99991;
                    if (i % 50 == 0) println("mark " + i);
                }
                return acc;
            }
        }
    "#;
    let observe = |trace: bool| {
        let (mut vm, tid) = build_unit(src, "W", "work", 3_000, options(trace, 137));
        assert_eq!(vm.run(None), RunOutcome::Idle);
        let cpu: Vec<u64> = vm
            .metrics()
            .isolates
            .iter()
            .map(|s| (s.stats.cpu_exact, s.stats.cpu_sampled))
            .flat_map(|(a, b)| [a, b])
            .collect();
        (
            vm.thread_result(tid).map(|v| v.to_string()),
            vm.vclock(),
            vm.take_console(),
            cpu,
        )
    };
    assert_eq!(observe(false), observe(true));
}

/// Tracing must not perturb the cluster either: the traced 4-unit
/// pipeline matches the untraced one under both scheduler modes, and the
/// parallel run matches the deterministic oracle.
#[test]
fn traced_pipeline_matches_untraced_across_modes() {
    let observe = |kind, trace| {
        let (outcome, tids) = run_pipeline(kind, trace);
        let results: Vec<_> = outcome
            .units
            .iter()
            .zip(&tids)
            .map(|(u, &tid)| {
                (
                    u.vm.thread_result(tid).map(|v| v.to_string()),
                    u.vm.vclock(),
                )
            })
            .collect();
        (results, outcome.accounts.per_isolate_cpu())
    };
    let oracle = observe(SchedulerKind::Deterministic, false);
    assert_eq!(oracle, observe(SchedulerKind::Deterministic, true));
    assert_eq!(oracle, observe(SchedulerKind::Parallel(4), false));
    assert_eq!(oracle, observe(SchedulerKind::Parallel(4), true));
}

/// Minimal structural JSON check (no serde in the dev set): balanced
/// braces/brackets outside strings, and nothing after the root value.
fn assert_json_shape(s: &str) {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    let mut root_closed = false;
    for c in s.chars() {
        if root_closed {
            assert!(c.is_whitespace(), "trailing garbage after root value");
            continue;
        }
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close");
                if depth == 0 {
                    root_closed = true;
                }
            }
            _ => {}
        }
    }
    assert!(root_closed && !in_str, "truncated JSON");
}

/// The acceptance scenario: a parallel 4-unit pipeline run exports valid
/// Chrome trace JSON, and the per-isolate sums of the `cpu_charge` event
/// payloads reconcile exactly with the cluster's exact accounting.
#[test]
fn parallel_pipeline_chrome_trace_reconciles_with_exact_accounting() {
    let (outcome, _) = run_pipeline(SchedulerKind::Parallel(4), true);
    let metrics = outcome
        .metrics
        .as_ref()
        .expect("traced run carries metrics");
    assert_eq!(metrics.dropped_events, 0, "workload must fit the rings");
    assert!(metrics.dispatches > 0, "units were dispatched");
    assert_eq!(metrics.units_finished, 4, "all units finished");
    assert!(metrics.totals.calls_sent > 0, "the pipeline called through");
    assert_eq!(
        metrics.totals.replies_delivered, metrics.totals.calls_sent,
        "every call came back"
    );
    assert_eq!(
        metrics.totals.call_latency.count(),
        metrics.totals.calls_sent,
        "every round trip was timed"
    );

    // Events → accounting reconciliation, the flight-recorder invariant:
    // cpu_charge events are emitted at exactly the points that feed
    // ResourceStats::charge_cpu, so their payload sums *are* the exact
    // CPU ledger.
    let mut by_key: BTreeMap<(u8, u8), u64> = BTreeMap::new();
    for e in &outcome.trace_events {
        if e.kind == EventKind::CpuCharge {
            *by_key.entry((e.unit, e.isolate)).or_default() += e.payload;
        }
    }
    let summed: u64 = by_key.values().sum();
    assert_eq!(
        summed,
        outcome.accounts.total_cpu_exact(),
        "cpu_charge payload total must equal the cluster's exact CPU"
    );
    for ((unit, iso), cpu) in outcome.accounts.per_isolate_cpu() {
        if cpu == 0 {
            continue;
        }
        assert_eq!(
            by_key
                .get(&(unit.index() as u8, iso.0 as u8))
                .copied()
                .unwrap_or(0),
            cpu,
            "per-isolate cpu_charge sum diverged for ({unit}, {iso:?})"
        );
    }

    // Export is structurally valid Chrome trace JSON with every event.
    let sink = outcome.trace_sink();
    let mut json = Vec::new();
    sink.write_chrome_trace(&mut json).unwrap();
    let json = String::from_utf8(json).unwrap();
    assert!(json.starts_with("{\"traceEvents\""));
    assert_json_shape(&json);
    assert_eq!(
        json.matches("\"ph\": \"i\"").count(),
        outcome.trace_events.len(),
        "one instant event per recorded trace event"
    );
    assert!(json.contains("\"cpu_charge\""));
    assert!(json.contains("\"unit_dispatch\""));
    assert!(json.contains("\"call_send\""));
}

/// Profiling hooks: the threaded fast path bumps per-method counters
/// only while tracing is on, and `top_methods` surfaces the hot loop.
#[test]
fn top_methods_fills_under_trace_and_stays_empty_untraced() {
    let src = r#"
        class Hot {
            static int inner(int x) { return x * 3 + 1; }
            static int spin(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) { acc = (acc + Hot.inner(i)) % 65536; }
                return acc;
            }
        }
    "#;
    for trace in [false, true] {
        let (mut vm, _) = build_unit(src, "Hot", "spin", 5_000, options(trace, 1_000));
        assert_eq!(vm.run(None), RunOutcome::Idle);
        let hot = vm.top_methods(10);
        if !trace {
            assert!(hot.is_empty(), "untraced runs must not profile");
            continue;
        }
        assert!(!hot.is_empty(), "traced run must surface hot methods");
        let inner = hot
            .iter()
            .find(|m| m.method_name == "inner")
            .expect("the hot callee is profiled");
        assert!(inner.invocations >= 5_000, "called every iteration");
        let spin = hot
            .iter()
            .find(|m| m.method_name == "spin")
            .expect("the looping caller is profiled");
        assert!(spin.back_edges >= 4_999, "the loop's back edge is counted");
        assert!(spin.score() > 0);
        // Rows come back hottest-first.
        for w in hot.windows(2) {
            assert!(w[0].score() >= w[1].score(), "top_methods must be sorted");
        }
    }
}

/// `VmMetrics` counters populate under trace on a standalone VM, and the
/// quantum/charge counters reconcile with the VM's own ledger.
#[test]
fn vm_metrics_counters_reconcile() {
    let src = r#"
        class M {
            static int run(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) { acc += i; }
                return acc;
            }
        }
    "#;
    let (mut vm, _) = build_unit(src, "M", "run", 4_000, options(true, 100));
    assert_eq!(vm.run(None), RunOutcome::Idle);
    let m = vm.metrics();
    assert!(m.quanta > 0, "quantum boundaries were traced");
    assert!(m.cpu_charges > 0, "exact flushes were traced");
    assert_eq!(m.vclock, vm.vclock());
    let exact: u64 = m.isolates.iter().map(|s| s.stats.cpu_exact).sum();
    assert_eq!(
        m.cpu_charged_insns, exact,
        "traced charge total must equal the accounting ledger"
    );
    assert!(m.events_recorded > 0);
    assert_eq!(m.dropped_events, 0);
    let events = vm.take_trace_events();
    assert_eq!(events.len() as u64, m.events_recorded);
    assert!(
        events.windows(2).all(|w| w[0].vclock <= w[1].vclock),
        "a single VM's ring drains in vclock order"
    );
}
