//! Green threads and stack frames.
//!
//! The VM schedules its own threads deterministically (instruction-count
//! quanta). A thread carries the isolate it is *currently executing in* —
//! the isolate reference that inter-isolate calls update (paper §3.1) and
//! that CPU sampling reads (paper §3.2).
//!
//! Green threads never leave their VM, but the VM itself is a `Send`
//! execution unit: under the parallel cluster scheduler
//! ([`crate::sched`]) a whole VM — frames, frame pools, monitors and all
//! — migrates between OS workers at quantum-slice boundaries, so a green
//! thread's next quantum may run on a different core than its last. The
//! thread's `insns_since_switch` counter is flushed through
//! [`crate::accounting::ResourceStats::charge_cpu`] at every such
//! boundary ([`crate::vm::Vm::flush_pending_cpu`]), which keeps exact
//! per-isolate CPU attribution bit-identical no matter where slices ran.

use crate::class::CodeBody;
use crate::ids::{ClassId, IsolateId, MethodRef, ThreadId};
use crate::value::{GcRef, Value};
use crate::vmrc::VmRc;

/// Upper bound on buffers a [`FramePool`] retains. Deep recursion returns
/// many buffers at once; beyond this the excess is simply dropped.
const MAX_POOLED_BUFS: usize = 64;

/// Upper bound on the *capacity* (in [`Value`] slots) of any single
/// pooled buffer. A buffer-count cap alone is not enough: a few frames
/// with huge operand stacks (deep recursion through a method with a large
/// `max_stack`, or a stack that grew past its hint) could park megabytes
/// under the count cap forever. Buffers above this bound are dropped
/// instead of pooled when they are given back (see [`FramePool::recycle`]).
const MAX_POOLED_BUF_SLOTS: usize = 256;

/// A per-thread recycler for frame value buffers (locals and operand
/// stacks), so the invoke/return hot path stops hitting the allocator on
/// every call. Buffers are cleared before they are pooled — a pooled
/// buffer never holds stale [`Value::Ref`]s, so the pool is invisible to
/// the GC (it is not a root set).
///
/// Only the fused call path of the quickened/threaded engines draws from
/// the pool (the raw interpreter stays allocation-identical as the
/// differential oracle); every engine *feeds* it on frame teardown.
///
/// Retention is bounded in both dimensions: at most `MAX_POOLED_BUFS`
/// buffers, each capped at `MAX_POOLED_BUF_SLOTS` slots, so the worst
/// case is `64 × 256 × size_of::<Value>()` per live thread regardless of
/// how deep or wide past call chains were.
#[derive(Debug, Default)]
pub struct FramePool {
    bufs: Vec<Vec<Value>>,
}

impl FramePool {
    /// Takes a cleared buffer with at least `cap` capacity.
    pub fn take(&mut self, cap: usize) -> Vec<Value> {
        match self.bufs.pop() {
            Some(mut v) => {
                debug_assert!(v.is_empty());
                v.reserve(cap);
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Returns a buffer to the pool, clearing it first. Oversized buffers
    /// are dropped (`shrink_to` may legally keep excess capacity, so
    /// dropping is the only deterministic bound) — the next `take` simply
    /// allocates fresh, and retained bytes stay bounded by the pool caps,
    /// not by the largest frame ever run.
    pub fn recycle(&mut self, mut v: Vec<Value>) {
        if self.bufs.len() < MAX_POOLED_BUFS
            && v.capacity() > 0
            && v.capacity() <= MAX_POOLED_BUF_SLOTS
        {
            v.clear();
            self.bufs.push(v);
        }
    }

    /// Recycles both value buffers of a popped frame.
    pub fn recycle_frame(&mut self, frame: Frame) {
        self.recycle(frame.locals);
        self.recycle(frame.stack);
    }

    /// Buffers currently pooled (test/introspection hook).
    pub fn pooled(&self) -> usize {
        self.bufs.len()
    }

    /// Bytes currently retained by pooled buffer capacity
    /// (test/introspection hook).
    pub fn retained_bytes(&self) -> usize {
        self.bufs
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<Value>())
            .sum()
    }

    /// The worst-case retention the pool caps enforce.
    pub fn max_retained_bytes() -> usize {
        MAX_POOLED_BUFS * MAX_POOLED_BUF_SLOTS * std::mem::size_of::<Value>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deep recursion hands back a burst of huge buffers; the pool must
    /// bound *retained capacity*, not just buffer count.
    #[test]
    fn pool_bounds_retained_capacity() {
        let mut pool = FramePool::default();
        // A burst of huge buffers (deep recursion through wide frames)
        // interleaved with normal ones.
        for i in 0..200 {
            let slots = if i % 2 == 0 { 1 << 16 } else { 16 };
            pool.recycle(Vec::with_capacity(slots));
        }
        assert!(pool.pooled() > 0, "normal buffers must still pool");
        assert!(pool.pooled() <= MAX_POOLED_BUFS);
        assert!(
            pool.retained_bytes() <= FramePool::max_retained_bytes(),
            "retained {} bytes, cap {}",
            pool.retained_bytes(),
            FramePool::max_retained_bytes()
        );
        // Buffers taken back out still satisfy requested capacity.
        let v = pool.take(1024);
        assert!(v.capacity() >= 1024);
    }
}

/// One interpreter frame.
#[derive(Debug)]
pub struct Frame {
    /// The executing method.
    pub method: MethodRef,
    /// The method's class (copied out of `method` for fast access).
    pub class: ClassId,
    /// Isolate this frame executes in. System-library frames execute in
    /// the calling isolate (paper §3.1), so this is never a "system"
    /// placeholder — it is always a real isolate.
    pub isolate: IsolateId,
    /// Isolate of the caller, restored into the thread on return.
    pub caller_isolate: IsolateId,
    /// `true` when the method belongs to the Java System Library; the GC
    /// skips such frames during accounting (paper §3.2 step 3).
    pub is_system: bool,
    /// The bytecode body.
    pub code: VmRc<CodeBody>,
    /// Current program counter (byte offset).
    pub pc: u32,
    /// Local variable slots.
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Monitor entered on behalf of a `synchronized` method, exited on
    /// return or unwind.
    pub sync_object: Option<GcRef>,
    /// `true` when this frame's `synchronized` monitor has not been
    /// acquired yet (thread-entry frames take it lazily, on first step).
    pub needs_sync_enter: bool,
    /// Set by isolate termination (paper §3.3): when this frame returns,
    /// the return value is discarded and a `StoppedIsolateException` for
    /// the given isolate is raised instead, because the caller frame
    /// belongs to a terminated isolate.
    pub poisoned_return: Option<IsolateId>,
}

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to run.
    Runnable,
    /// Sleeping until the given virtual time (instruction clock).
    Sleeping {
        /// Wake-up deadline on the VM's virtual clock.
        until: u64,
    },
    /// Blocked entering a contended monitor.
    BlockedOnMonitor(GcRef),
    /// Parked in `Object.wait`.
    WaitingOnMonitor(GcRef),
    /// Waiting for another thread to finish.
    BlockedOnJoin(ThreadId),
    /// Waiting for another thread to finish running `<clinit>`.
    BlockedOnClassInit {
        /// The class being initialized.
        class: ClassId,
        /// The isolate whose mirror is being initialized.
        isolate: IsolateId,
    },
    /// Parked inside `ijvm/Service.call` awaiting the reply for the given
    /// call id (see [`crate::port`]). The reply (or a revocation error)
    /// is delivered at a quantum boundary and wakes the thread.
    BlockedOnPort {
        /// The in-flight call this thread is waiting on.
        call: u64,
    },
    /// Parked inside `ijvm/Future.get` awaiting resolution of the given
    /// future id (see [`crate::port`]). The reply routes by request id to
    /// the future, which pushes the decoded value (or a pending
    /// exception) and wakes the thread.
    BlockedOnFuture {
        /// The future this thread is waiting on.
        future: u32,
    },
    /// Parked inside a send (`Service.call`/`post`, `Port.send`) because
    /// the destination unit's mailbox is over its quota. The serialized
    /// payload is already charged and queued VM-side; the send is retried
    /// at quantum boundaries once the destination drains below quota.
    BlockedOnQuota,
    /// A service pump thread parked with no request to serve (see
    /// [`crate::port`]). Never runnable in this state; dispatching a
    /// request pushes a handler frame and wakes it.
    ServicePump,
    /// Finished (normally or with an uncaught exception).
    Terminated,
}

/// A green thread.
#[derive(Debug)]
pub struct VmThread {
    /// This thread's id.
    pub id: ThreadId,
    /// Debug name.
    pub name: String,
    /// The frame stack; last entry is the active frame.
    pub frames: Vec<Frame>,
    /// Scheduler state.
    pub state: ThreadState,
    /// The isolate the thread is currently executing in — the "isolate
    /// reference" of the paper, updated on inter-isolate calls.
    pub current_isolate: IsolateId,
    /// The isolate that created the thread (threads are charged to their
    /// creator, paper §3.2, but may execute code from any isolate).
    pub creator_isolate: IsolateId,
    /// Exception in flight (set before unwinding).
    pub pending_exception: Option<GcRef>,
    /// Interrupt flag; set by isolate termination on system-library leaf
    /// frames so blocking calls abort (paper §3.3).
    pub interrupted: bool,
    /// The associated `java/lang/Thread` object, if started from Java.
    pub thread_obj: Option<GcRef>,
    /// Value returned by the thread's entry method, for host callers.
    pub result: Option<Value>,
    /// Uncaught exception that terminated the thread, if any.
    pub uncaught: Option<GcRef>,
    /// Instructions executed since the thread last switched isolates;
    /// flushed into `ResourceStats::cpu_exact` at switch points.
    pub insns_since_switch: u64,
    /// Recycled locals/operand-stack buffers for this thread's frames.
    pub frame_pool: FramePool,
    /// `true` for service pump threads (see [`crate::port`]): when such a
    /// thread drains its last frame it re-parks awaiting the next request
    /// instead of terminating, and its handler failures become service
    /// replies instead of uncaught-exception thread deaths.
    pub is_service_pump: bool,
}

impl VmThread {
    /// Creates a thread with no frames yet.
    pub fn new(id: ThreadId, name: &str, isolate: IsolateId) -> VmThread {
        VmThread {
            id,
            name: name.to_owned(),
            frames: Vec::new(),
            state: ThreadState::Runnable,
            current_isolate: isolate,
            creator_isolate: isolate,
            pending_exception: None,
            interrupted: false,
            thread_obj: None,
            result: None,
            uncaught: None,
            insns_since_switch: 0,
            frame_pool: FramePool::default(),
            is_service_pump: false,
        }
    }

    /// `true` when the thread can be scheduled.
    pub fn is_runnable(&self) -> bool {
        self.state == ThreadState::Runnable
    }

    /// `true` when the thread has finished.
    pub fn is_terminated(&self) -> bool {
        self.state == ThreadState::Terminated
    }

    /// The active frame.
    pub fn top_frame(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// The active frame, mutably.
    pub fn top_frame_mut(&mut self) -> Option<&mut Frame> {
        self.frames.last_mut()
    }
}
