//! The cluster flight recorder: lock-free event tracing, metrics
//! snapshots and profiling hooks.
//!
//! Observability in a deterministic VM has one hard constraint: it must
//! *observe without perturbing*. The differential matrix runs the same
//! program with tracing off (the raw oracle) and on, and demands
//! bit-identical results, vclocks, migration counts and accounting. The
//! design here follows from that constraint:
//!
//! * **Events are timestamped on the virtual clock.** Every
//!   [`TraceEvent`] carries the emitting VM's `vclock` (total interpreted
//!   instructions — the deterministic time base) as its primary
//!   timestamp. Wall-clock time is *recorded* alongside (`wall_us`, for
//!   human correlation) but never read back by the VM — wall time flows
//!   out of the recorder, never in.
//! * **Rings are single-writer.** Each traced [`crate::vm::Vm`] owns one
//!   [`TraceRing`]; under the parallel scheduler each OS worker owns one
//!   more for scheduler events. A ring is only ever touched by the thread
//!   currently driving its owner, so pushes are plain stores — no atomics,
//!   no locks, no cross-thread contention on the hot path. Rings are
//!   merged under a lock only once, at worker exit / outcome assembly.
//! * **Overflow drops the oldest events, exactly counted.** A ring has
//!   fixed capacity; wrapping overwrites the oldest entry and increments
//!   [`TraceRing::dropped_events`], so a drained trace always states
//!   precisely how much history it lost. Eager counters (see
//!   [`VmMetrics`]) are bumped at emit time and stay exact regardless of
//!   ring overflow.
//! * **Off costs one predicted branch.** The gate is a `bool` cached on
//!   the VM (`trace_enabled`); every instrumentation point tests it and
//!   jumps over a `#[cold]` emit path. With `TraceConfig::Off` (the
//!   default) no ring exists and no event code runs.
//!
//! Draining a VM's ring ([`crate::vm::Vm::take_trace_events`]) or a
//! cluster outcome's merged stream feeds a [`TraceSink`], whose
//! [`TraceSink::write_chrome_trace`] emits Chrome `trace_event` JSON —
//! open it in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::accounting::IsolateSnapshot;
// The single sanctioned wall-clock import of the deterministic core:
// WallClock stamps `wall_us` for human trace correlation and nothing
// downstream ever reads it back. Everything else runs on vclock.
// lint: allow(determinism) — see WallClock below; clippy's
// disallowed-types ban is lifted for exactly this import and use.
#[allow(clippy::disallowed_types)]
use std::time::Instant;

/// Tracing mode, set via [`crate::vm::VmOptions::trace`] /
/// [`crate::vm::VmOptions::with_trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceConfig {
    /// No recorder: instrumentation points reduce to one predicted
    /// branch on a cached `bool`; no ring is allocated.
    #[default]
    Off,
    /// Record every event kind into a per-VM ring of
    /// [`DEFAULT_RING_CAPACITY`] events, plus per-worker scheduler rings
    /// under the cluster.
    Full,
}

impl TraceConfig {
    /// `true` when events are recorded.
    pub fn is_on(self) -> bool {
        !matches!(self, TraceConfig::Off)
    }
}

/// Events a traced VM ring holds before wrapping. 65536 × 24 bytes =
/// 1.5 MiB per traced VM — generous enough that accounting-exactness
/// checks over whole benchmark runs see every `CpuCharge` event.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Events a per-worker scheduler ring holds. Scheduler events are ~4
/// orders of magnitude rarer than VM events (one dispatch per quantum
/// slice, not per instruction).
pub const WORKER_RING_CAPACITY: usize = 1 << 13;

/// Sentinel for [`TraceEvent::isolate`] / [`TraceEvent::thread`] /
/// [`TraceEvent::unit`] when the dimension does not apply (e.g. a
/// hub-level charge with no running thread, or a standalone VM that was
/// never attached to a cluster).
pub const TRACE_NONE: u8 = u8::MAX;

/// What happened. The discriminant is the `kind` byte of the packed
/// [`TraceEvent`]; [`EventKind::name`] is the label used in Chrome trace
/// export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[non_exhaustive]
pub enum EventKind {
    /// A scheduling quantum ended; payload = instructions consumed.
    QuantumEnd = 0,
    /// A thread migrated isolates on an inter-isolate call or return;
    /// payload = destination isolate id, `isolate` = source.
    IsolateSwitch = 1,
    /// `insns_since_switch` flushed into `ResourceStats::cpu_exact`;
    /// payload = instructions charged. Emitted at every exact-accounting
    /// flush point, so per-isolate payload sums equal `cpu_exact`.
    CpuCharge = 2,
    /// A garbage collection ran; payload = the GC epoch number.
    GcEpoch = 3,
    /// A `StoppedIsolateException` was constructed for a terminated
    /// isolate (paper §3.3); `isolate` = the dead isolate.
    SieRaised = 4,
    /// A green thread terminated; payload = 1 when an uncaught exception
    /// killed it, 0 on normal completion.
    ThreadFinish = 5,
    /// An isolate was terminated (stack patching + poisoning).
    IsolateTerminate = 6,
    /// A service was exported on the cluster hub; payload = the pump
    /// thread id.
    ServiceExport = 7,
    /// A blocking `Service.call` was sent; payload = the hub call id.
    CallSend = 8,
    /// A oneway `Service.send` was posted; payload = the hub call id.
    OnewaySend = 9,
    /// A request was dispatched onto a service pump; payload = call id.
    CallDeliver = 10,
    /// A service handler completed and its reply was posted;
    /// payload = call id.
    ReplySend = 11,
    /// A reply reached the blocked caller; payload = the call's
    /// round-trip latency in vclock ticks (caller-side).
    ReplyDeliver = 12,
    /// An exported service was revoked (retraction or isolate
    /// termination); payload = pending requests failed.
    ServiceRevoke = 13,
    /// A unit's mailbox was drained; payload = envelopes taken (feeds
    /// the mailbox high-water mark).
    MailDrain = 14,
    /// A worker picked a unit from its own queue; `thread` = worker.
    UnitDispatch = 15,
    /// A worker stole a unit from a victim's queue; `thread` = thief.
    UnitSteal = 16,
    /// A unit with live-but-blocked threads was parked awaiting mail.
    UnitPark = 17,
    /// A parked unit woke (fresh mail) and was requeued.
    UnitUnpark = 18,
    /// A unit completed and left the scheduler.
    UnitFinish = 19,
    /// A pending kill was delivered to a unit; `isolate` = target.
    UnitKill = 20,
    /// An async `Service.post` was sent; payload = the hub call id.
    FuturePost = 21,
    /// A reply resolved a pending future; payload = the call's
    /// round-trip latency in vclock ticks (caller-side).
    FutureResolve = 22,
    /// A pending future was cancelled before its reply arrived;
    /// payload = the hub call id.
    FutureCancel = 23,
    /// A sender parked because the destination unit's mailbox was over
    /// quota; payload = the serialized request size in bytes.
    QuotaPark = 24,
    /// A quota-parked send was retried successfully and the sender
    /// unparked; payload = the hub call id (0 for oneways).
    QuotaUnpark = 25,
}

impl EventKind {
    /// Stable label, used as the Chrome trace event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::QuantumEnd => "quantum_end",
            EventKind::IsolateSwitch => "isolate_switch",
            EventKind::CpuCharge => "cpu_charge",
            EventKind::GcEpoch => "gc_epoch",
            EventKind::SieRaised => "sie_raised",
            EventKind::ThreadFinish => "thread_finish",
            EventKind::IsolateTerminate => "isolate_terminate",
            EventKind::ServiceExport => "service_export",
            EventKind::CallSend => "call_send",
            EventKind::OnewaySend => "oneway_send",
            EventKind::CallDeliver => "call_deliver",
            EventKind::ReplySend => "reply_send",
            EventKind::ReplyDeliver => "reply_deliver",
            EventKind::ServiceRevoke => "service_revoke",
            EventKind::MailDrain => "mail_drain",
            EventKind::UnitDispatch => "unit_dispatch",
            EventKind::UnitSteal => "unit_steal",
            EventKind::UnitPark => "unit_park",
            EventKind::UnitUnpark => "unit_unpark",
            EventKind::UnitFinish => "unit_finish",
            EventKind::UnitKill => "unit_kill",
            EventKind::FuturePost => "future_post",
            EventKind::FutureResolve => "future_resolve",
            EventKind::FutureCancel => "future_cancel",
            EventKind::QuotaPark => "quota_park",
            EventKind::QuotaUnpark => "quota_unpark",
        }
    }
}

/// One recorded event, packed to 24 bytes so the default ring stays
/// cache-friendly (1.5 MiB, 3 events per cache line).
///
/// `vclock` is the deterministic timestamp; `wall_us` is microseconds
/// since the recorder's epoch, for human correlation only. Ids wider
/// than a byte are clamped to [`TRACE_NONE`]; the payload word carries
/// the kind-specific datum (see [`EventKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The emitting VM's virtual clock (total interpreted instructions)
    /// at emit time; `0` for scheduler events about a not-yet-run unit.
    pub vclock: u64,
    /// Kind-specific payload word.
    pub payload: u64,
    /// Microseconds of wall time since the recorder's epoch. Recorded,
    /// never read back — determinism lives on `vclock`.
    pub wall_us: u32,
    /// What happened.
    pub kind: EventKind,
    /// Cluster unit index, or [`TRACE_NONE`] outside a cluster.
    pub unit: u8,
    /// Isolate concerned, or [`TRACE_NONE`].
    pub isolate: u8,
    /// Green thread concerned (worker index for scheduler events), or
    /// [`TRACE_NONE`].
    pub thread: u8,
}

const _: () = assert!(std::mem::size_of::<TraceEvent>() == 24);

/// A fixed-capacity, single-writer event ring. Wrapping overwrites the
/// oldest event and counts it in [`TraceRing::dropped_events`] — the
/// drained history is always the *newest* `capacity` events, with an
/// exact statement of what was lost.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped (and the slot
    /// the next push overwrites).
    head: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> TraceRing {
        let cap = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting (and counting) the oldest if full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded (or everything drained).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Exact count of events lost to wrapping since creation (drains do
    /// not reset it).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Takes the held events in recording order (oldest first), leaving
    /// the ring empty. The dropped-event count is preserved.
    pub fn drain_ordered(&mut self) -> Vec<TraceEvent> {
        let head = std::mem::take(&mut self.head);
        let mut buf = std::mem::take(&mut self.buf);
        buf.rotate_left(head);
        buf
    }
}

/// A power-of-two-bucketed latency histogram: bucket `i` counts samples
/// `v` with `2^(i-1) < v ≤ 2^i` (bucket 0 counts `v ≤ 1`). Used for
/// per-call hub round-trip latency in vclock ticks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - u64::leading_zeros(v.saturating_sub(1)) as usize).min(31);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts; bucket `i` spans `(2^(i-1), 2^i]`.
    pub fn buckets(&self) -> &[u64; 32] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i.min(63)
    }

    /// Smallest bucket bound at or above the `q`-quantile (0.0–1.0), or
    /// 0 with no samples — a conservative p50/p99 estimate.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank.max(1) {
                return LatencyHistogram::bucket_bound(i);
            }
        }
        LatencyHistogram::bucket_bound(31)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Counters and histograms for one VM, returned by
/// [`crate::vm::Vm::metrics`]. This is the single reporting surface:
/// the per-isolate accounting rows ([`IsolateSnapshot`]) ride along in
/// [`VmMetrics::isolates`], and the trace-derived counters are zero when
/// tracing is off (the always-on fields — `vclock`, `isolate_switches`,
/// `gc_epochs` and the snapshots — are filled either way).
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct VmMetrics {
    /// Total interpreted instructions (the virtual clock).
    pub vclock: u64,
    /// Inter-isolate thread migrations (always counted).
    pub isolate_switches: u64,
    /// Garbage collections run (always counted).
    pub gc_epochs: u64,
    /// Scheduling quanta completed.
    pub quanta: u64,
    /// Exact-accounting CPU flushes recorded.
    pub cpu_charges: u64,
    /// Instructions charged across all flushes (equals the sum of
    /// per-isolate `cpu_exact` deltas observed while tracing).
    pub cpu_charged_insns: u64,
    /// `StoppedIsolateException`s constructed.
    pub sie_raised: u64,
    /// Green threads that terminated.
    pub threads_finished: u64,
    /// Isolates terminated.
    pub isolates_terminated: u64,
    /// Blocking hub calls sent.
    pub calls_sent: u64,
    /// Oneway hub messages sent.
    pub oneways_sent: u64,
    /// Requests dispatched onto this VM's service pumps.
    pub calls_served: u64,
    /// Replies posted by this VM's service pumps.
    pub replies_sent: u64,
    /// Replies delivered to this VM's blocked callers.
    pub replies_delivered: u64,
    /// Async hub posts sent (`Service.post`).
    pub posts_sent: u64,
    /// Pending futures resolved by a reply.
    pub futures_resolved: u64,
    /// Pending futures cancelled before their reply arrived.
    pub futures_cancelled: u64,
    /// Sends parked because the destination mailbox was over quota.
    pub quota_parks: u64,
    /// Quota-parked sends that were retried successfully.
    pub quota_unparks: u64,
    /// Services exported on the hub.
    pub services_exported: u64,
    /// Services revoked.
    pub services_revoked: u64,
    /// Largest batch of envelopes drained from the mailbox at once.
    pub mailbox_high_water: u64,
    /// Caller-side call round-trip latency in vclock ticks.
    pub call_latency: LatencyHistogram,
    /// Events recorded (including any later lost to ring wrap).
    pub events_recorded: u64,
    /// Events lost to ring wrap, exactly.
    pub dropped_events: u64,
    /// Per-isolate accounting rows (name, state, [`crate::accounting::ResourceStats`]).
    pub isolates: Vec<IsolateSnapshot>,
}

impl VmMetrics {
    /// Folds another VM's counters into this one (snapshots are *not*
    /// concatenated — per-unit rows stay on each unit's VM).
    pub fn absorb(&mut self, other: &VmMetrics) {
        self.vclock += other.vclock;
        self.isolate_switches += other.isolate_switches;
        self.gc_epochs += other.gc_epochs;
        self.quanta += other.quanta;
        self.cpu_charges += other.cpu_charges;
        self.cpu_charged_insns += other.cpu_charged_insns;
        self.sie_raised += other.sie_raised;
        self.threads_finished += other.threads_finished;
        self.isolates_terminated += other.isolates_terminated;
        self.calls_sent += other.calls_sent;
        self.oneways_sent += other.oneways_sent;
        self.calls_served += other.calls_served;
        self.replies_sent += other.replies_sent;
        self.replies_delivered += other.replies_delivered;
        self.posts_sent += other.posts_sent;
        self.futures_resolved += other.futures_resolved;
        self.futures_cancelled += other.futures_cancelled;
        self.quota_parks += other.quota_parks;
        self.quota_unparks += other.quota_unparks;
        self.services_exported += other.services_exported;
        self.services_revoked += other.services_revoked;
        self.mailbox_high_water = self.mailbox_high_water.max(other.mailbox_high_water);
        self.call_latency.merge(&other.call_latency);
        self.events_recorded += other.events_recorded;
        self.dropped_events += other.dropped_events;
    }
}

/// Scheduler-level counters for one cluster run, carried on
/// [`crate::sched::ClusterOutcome::metrics`] when tracing is on.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ClusterMetrics {
    /// Units taken from a victim's queue (work stealing).
    pub steals: u64,
    /// Cross-worker unit migrations.
    pub migrations: u64,
    /// Units dispatched from a worker's own queue.
    pub dispatches: u64,
    /// Units parked awaiting mail.
    pub unit_parks: u64,
    /// Parked units woken by fresh mail.
    pub unit_unparks: u64,
    /// Kill requests delivered.
    pub kills: u64,
    /// Units that ran to completion.
    pub units_finished: u64,
    /// Scheduler events lost to worker-ring wrap.
    pub dropped_events: u64,
    /// All unit VMs' counters folded together ([`VmMetrics::absorb`]).
    pub totals: VmMetrics,
}

/// One row of [`crate::vm::Vm::top_methods`]: a method's profile
/// counters, bumped on the threaded engine's fast path only while
/// tracing is on — the profiling seed a template-JIT tier selects
/// compilation candidates from.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct MethodHotness {
    /// Internal name of the defining class.
    pub class_name: String,
    /// Method name.
    pub method_name: String,
    /// Times the method was entered at pc 0.
    pub invocations: u64,
    /// Backward branches taken inside the method (loop iterations).
    pub back_edges: u64,
}

impl MethodHotness {
    /// Profile score: back-edges dominate (a long loop in one invocation
    /// is hotter than many calls to a straight-line method).
    pub fn score(&self) -> u64 {
        self.invocations + 8 * self.back_edges
    }
}

/// Minimum vclock advance between wall-clock refreshes: events closer
/// together than this share a reading. 256 interpreted instructions is
/// well under the recorded 1 µs resolution on any host this runs on, so
/// the coarsening is invisible in the export — but it turns the
/// dominant per-event cost (a `clock_gettime` per event) into roughly
/// one per quantum of guest progress.
const WALL_REFRESH_TICKS: u64 = 256;

/// A vclock-gated wall-clock sampler for `wall_us` stamps: reads the
/// host clock only when guest time has advanced [`WALL_REFRESH_TICKS`]
/// since the last reading, returning the cached microsecond count
/// otherwise. Readings are monotone non-decreasing; staleness is
/// bounded by the wall time the guest takes to retire the refresh
/// window (sub-µs on the interpreter's hot paths).
#[derive(Debug)]
#[allow(clippy::disallowed_types)]
pub(crate) struct WallClock {
    epoch: Instant,
    cached_us: u32,
    next_refresh: u64,
}

#[allow(clippy::disallowed_types)]
impl WallClock {
    pub(crate) fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
            cached_us: 0,
            // The first sample always reads the clock.
            next_refresh: 0,
        }
    }

    /// Microseconds since the recorder's epoch, at `vclock`. Wraps
    /// after ~71 minutes — `wall_us` is for human correlation, not
    /// arithmetic.
    #[inline]
    pub(crate) fn sample(&mut self, vclock: u64) -> u32 {
        if vclock >= self.next_refresh {
            self.refresh(vclock);
        }
        self.cached_us
    }

    /// Unconditional clock read, for events that follow a host-time
    /// wait no guest progress accounts for (e.g. a unit unparking).
    pub(crate) fn refresh(&mut self, vclock: u64) -> u32 {
        let e = self.epoch.elapsed();
        // `as_secs`/`subsec_micros` sidestep `as_micros`'s u128 division.
        self.cached_us = (e.as_secs() as u32)
            .wrapping_mul(1_000_000)
            .wrapping_add(e.subsec_micros());
        self.next_refresh = vclock.saturating_add(WALL_REFRESH_TICKS);
        self.cached_us
    }
}

/// The recorder attached to a traced VM: its ring, eager counters, and
/// the in-flight call table feeding the latency histogram.
#[derive(Debug)]
pub(crate) struct TraceState {
    pub(crate) ring: TraceRing,
    /// Cluster unit index stamped into events, [`TRACE_NONE`] until
    /// [`crate::vm::Vm::attach_port`].
    pub(crate) unit: u8,
    /// Wall-clock sampler for `wall_us` (never read back by the VM).
    pub(crate) wall: WallClock,
    /// Eager per-kind event counts, indexed by `EventKind as u8`.
    pub(crate) kind_counts: [u64; 32],
    /// Total instructions charged through `CpuCharge` events.
    pub(crate) cpu_charged_insns: u64,
    /// Mailbox high-water mark (largest single drain).
    pub(crate) mailbox_high_water: u64,
    /// Caller-side round-trip latency histogram.
    pub(crate) call_latency: LatencyHistogram,
    /// `(hub call id, send vclock)` of in-flight blocking calls. A flat
    /// vector, not a map: a unit has at most a handful of calls in
    /// flight (one per blocked thread), and the linear scan beats
    /// hashing at that size on the per-call hot path.
    pub(crate) call_starts: Vec<(u64, u64)>,
    /// Total events recorded (ring pushes, pre-wrap).
    pub(crate) events_recorded: u64,
}

impl TraceState {
    pub(crate) fn new(capacity: usize) -> TraceState {
        TraceState {
            ring: TraceRing::with_capacity(capacity),
            unit: TRACE_NONE,
            wall: WallClock::new(),
            kind_counts: [0; 32],
            cpu_charged_insns: 0,
            mailbox_high_water: 0,
            call_latency: LatencyHistogram::default(),
            call_starts: Vec::new(),
            events_recorded: 0,
        }
    }

    /// Count of events of `kind` recorded so far (exact, unaffected by
    /// ring wrap).
    pub(crate) fn kind_count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind as usize]
    }
}

/// Clamps a wide id into an event byte.
pub(crate) fn clamp_id(v: u32) -> u8 {
    if v >= TRACE_NONE as u32 {
        TRACE_NONE
    } else {
        v as u8
    }
}

/// A drained, merge-sorted event stream ready for export.
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// Builds a sink from drained events, stably sorting them on the
    /// virtual clock (the deterministic time base).
    pub fn new(mut events: Vec<TraceEvent>) -> TraceSink {
        events.sort_by_key(|e| e.vclock);
        TraceSink { events }
    }

    /// The sorted events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Writes the stream as Chrome `trace_event` JSON (the
    /// "JSON object" flavor: `{"traceEvents": [...]}`). Open the file in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// Mapping: `ts` is the vclock (instructions, rendered as µs —
    /// deterministic across runs), `pid` the cluster unit, `tid` the
    /// green thread (or worker, for scheduler events), and each event is
    /// an instant (`"ph":"i"`) with the payload, isolate and wall-clock
    /// microseconds in `args`.
    pub fn write_chrome_trace<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        writeln!(out, "{{\"traceEvents\": [")?;
        let mut units: Vec<u8> = self.events.iter().map(|e| e.unit).collect();
        units.sort_unstable();
        units.dedup();
        let mut first = true;
        for unit in units {
            if !std::mem::take(&mut first) {
                writeln!(out, ",")?;
            }
            let name = if unit == TRACE_NONE {
                "vm (unclustered)".to_owned()
            } else {
                format!("unit{unit}")
            };
            write!(
                out,
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {unit}, \
                 \"args\": {{\"name\": \"{name}\"}}}}"
            )?;
        }
        for e in &self.events {
            if !std::mem::take(&mut first) {
                writeln!(out, ",")?;
            }
            write!(
                out,
                "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \
                 \"pid\": {}, \"tid\": {}, \"args\": {{\"payload\": {}, \
                 \"isolate\": {}, \"wall_us\": {}}}}}",
                e.kind.name(),
                e.vclock,
                e.unit,
                e.thread,
                e.payload,
                e.isolate,
                e.wall_us,
            )?;
        }
        writeln!(out, "\n]}}")
    }

    /// [`TraceSink::write_chrome_trace`] straight to a file.
    pub fn write_chrome_trace_file<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_chrome_trace(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(vclock: u64, payload: u64) -> TraceEvent {
        TraceEvent {
            vclock,
            payload,
            wall_us: 0,
            kind: EventKind::QuantumEnd,
            unit: 0,
            isolate: 0,
            thread: 0,
        }
    }

    #[test]
    fn event_is_packed_to_24_bytes() {
        assert_eq!(std::mem::size_of::<TraceEvent>(), 24);
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts_exactly() {
        let mut ring = TraceRing::with_capacity(4);
        for i in 0..7 {
            ring.push(ev(i, i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped_events(), 3, "7 pushes into 4 slots drop 3");
        let drained = ring.drain_ordered();
        let order: Vec<u64> = drained.iter().map(|e| e.vclock).collect();
        assert_eq!(order, vec![3, 4, 5, 6], "newest 4, oldest first");
        assert!(ring.is_empty());
        assert_eq!(ring.dropped_events(), 3, "drain preserves the count");
        // The ring keeps working after a drain.
        ring.push(ev(9, 9));
        assert_eq!(ring.drain_ordered().len(), 1);
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let mut ring = TraceRing::with_capacity(8);
        for i in 0..5 {
            ring.push(ev(i, 0));
        }
        assert_eq!(ring.dropped_events(), 0);
        let order: Vec<u64> = ring.drain_ordered().iter().map(|e| e.vclock).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = LatencyHistogram::default();
        for v in [1u64, 2, 3, 4, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1015);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.buckets()[0], 1, "1 lands in bucket 0");
        assert_eq!(h.buckets()[1], 1, "2 lands in bucket 1");
        assert_eq!(h.buckets()[2], 2, "3 and 4 land in bucket 2");
        assert_eq!(h.buckets()[3], 1, "5 lands in bucket 3");
        assert_eq!(h.buckets()[10], 1, "1000 lands in bucket 10");
        assert!(h.quantile(0.5) <= 4, "p50 of mostly-small samples");
        assert_eq!(h.quantile(1.0), 1024, "p100 covers the 1000 sample");
        let mut other = LatencyHistogram::default();
        other.record(7);
        h.merge(&other);
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let sink = TraceSink::new(vec![ev(5, 1), ev(2, 9)]);
        assert_eq!(sink.events()[0].vclock, 2, "sink sorts on vclock");
        let mut out = Vec::new();
        sink.write_chrome_trace(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("{\"traceEvents\": ["));
        assert!(s.trim_end().ends_with("]}"));
        assert!(s.contains("\"process_name\""));
        assert!(s.contains("\"quantum_end\""));
        assert_eq!(s.matches("\"ph\": \"i\"").count(), 2);
    }
}
